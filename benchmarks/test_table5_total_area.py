"""Table V: total area — base vs RVL-RAR vs G-RAR (the headline)."""

from conftest import save_table

from repro.analysis.compare import average


def test_table5_total_area(suite, results_dir, benchmark):
    table = benchmark.pedantic(suite.table5, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)

    # Paper headline: G-RAR beats base by 7.0 / 9.5 / 14.7 % total
    # area on average, growing with c, and beats the best VL variant
    # by ~5 %.  Shape checks:
    previous = -100.0
    for level in ("low", "medium", "high"):
        grar = average(table.column(f"{level}:grar%"))
        rvl = average(table.column(f"{level}:rvl%"))
        assert grar > 0, f"{level}: G-RAR must save total area on average"
        assert grar >= rvl, f"{level}: G-RAR must beat RVL on average"
        assert grar >= previous - 0.5, "G-RAR savings grow with c"
        previous = grar
    high = average(table.column("high:grar%"))
    low = average(table.column("low:grar%"))
    assert high > low, "high overhead must benefit most from G-RAR"
