"""Table III: area comparison of the virtual-library variants."""

from conftest import save_table

from repro.analysis.compare import average


def test_table3_vl_variants(suite, results_dir, benchmark):
    table = benchmark.pedantic(suite.table3, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)

    # Paper: RVL matches or beats EVL at every overhead on average,
    # with EVL degrading as c grows (its unnecessary error-detecting
    # latches survive the swap step because nothing kept their
    # arrivals out of the window).
    evl_averages = []
    rvl_averages = []
    for level in ("low", "medium", "high"):
        evl = average(table.column(f"{level}:EVL"))
        rvl = average(table.column(f"{level}:RVL"))
        evl_averages.append(evl)
        rvl_averages.append(rvl)
        assert rvl <= evl * 1.02, f"{level}: RVL {rvl:.1f} vs EVL {evl:.1f}"
    # EVL's penalty grows with the overhead.
    assert evl_averages[-1] - rvl_averages[-1] >= (
        evl_averages[0] - rvl_averages[0]
    ) - 1e-6
