"""Table IV: sequential logic area — base vs RVL-RAR vs G-RAR."""

from conftest import save_table

from repro.analysis.compare import average


def test_table4_sequential_area(suite, results_dir, benchmark):
    table = benchmark.pedantic(suite.table4, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)

    # Paper: G-RAR saves 20.4 / 23.9 / 29.6 % sequential area over the
    # base retiming, growing with the overhead; RVL sits between.
    previous = -100.0
    for level in ("low", "medium", "high"):
        grar = average(table.column(f"{level}:grar%"))
        rvl = average(table.column(f"{level}:rvl%"))
        assert grar > 0, f"{level}: G-RAR should save sequential area"
        assert grar >= rvl - 1.0, f"{level}: G-RAR must not trail RVL"
        assert grar >= previous - 1.0, "savings should grow with c"
        previous = grar
