"""Table VII: run-time comparison of the three approaches."""

from conftest import save_table


def test_table7_runtime(suite, results_dir, benchmark):
    table = benchmark.pedantic(suite.table7, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)

    # The paper's point is tractability: ISCAS89 circuits complete in
    # minutes.  Every per-circuit flow here must finish in under two
    # minutes even in pure Python.
    for row in table.rows:
        for value in row[1:]:
            assert value < 120.0, f"{row[0]} took {value:.1f}s"


def test_network_simplex_share(suite, benchmark):
    """Paper: the network-simplex step is a small share of G-RAR's
    run-time (<2% with their tool; the bound here is looser because
    our STA is much faster than report_timing round-trips)."""

    def measure():
        name = suite.circuit_names[0]
        outcome = suite.outcome(name, "grar", 1.0)
        phases = outcome.retiming.phase_runtimes
        return phases.get("solve", 0.0), sum(phases.values())

    solve_time, total = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert solve_time <= total
