"""Benchmark the flat-array arena STA against the object engine.

Per circuit, builds both engines over the same netlist, verifies the
full forward / backward DP results are bit-identical, then times
repeated full DP passes on each (with warm delay caches — the compile
cost of the arena is reported separately, it is paid once per netlist
fingerprint).  A second section measures the batched Monte-Carlo
estimator against per-seed sequential runs, again after a parity
check:

    python benchmarks/arena_bench.py
    python benchmarks/arena_bench.py --circuits s38417x10 --passes 5 \
        --min-speedup 5 --out benchmarks/results/BENCH_arena.json

The committed artifact ``benchmarks/results/BENCH_arena.json`` is the
PR's acceptance evidence for the >= 5x DP-throughput floor on a 10x
Table-I circuit.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import metrics  # noqa: E402
from repro.cells import default_library  # noqa: E402
from repro.circuits import build_benchmark  # noqa: E402
from repro.core import (  # noqa: E402
    ArenaTimingEngine,
    clear_arena_cache,
    compile_arena,
)
from repro.flows import prepare_circuit  # noqa: E402
from repro.latches import SlavePlacement  # noqa: E402
from repro.sim import (  # noqa: E402
    estimate_error_rate,
    estimate_error_rate_batched,
)
from repro.sta.engine import TimingEngine  # noqa: E402

DEFAULT_CIRCUITS = ["s38417", "s38417x10"]


def _same(a: Dict[str, float], b: Dict[str, float]) -> bool:
    if a.keys() != b.keys():
        return False
    return all(
        a[k] == b[k] or (math.isnan(a[k]) and math.isnan(b[k])) for k in a
    )


def bench_sta_cell(
    circuit_name: str, model: str, passes: int
) -> Dict[str, Any]:
    """Time full forward+backward DP passes on both engines."""
    library = default_library()
    netlist = build_benchmark(circuit_name, library)
    obj = TimingEngine(netlist.copy(), library, model=model)
    arena_nl = netlist.copy()
    arena = ArenaTimingEngine(arena_nl, library, model=model)

    clear_arena_cache()
    compile_started = time.perf_counter()
    compile_arena(arena_nl, arena.calculator)
    compile_s = time.perf_counter() - compile_started

    # Warm-up pass: fills both calculators' edge caches and pins the
    # parity claim this artifact rides on.
    fwd_obj, fwd_arena = obj._compute_forward(), arena._compute_forward()
    bwd_obj = obj._compute_backward_any()
    bwd_arena = arena._compute_backward_any()
    if not (_same(fwd_obj, fwd_arena) and _same(bwd_obj, bwd_arena)):
        raise AssertionError(
            f"{circuit_name}/{model}: arena DP is NOT bit-identical to "
            f"the object engine; do not trust its speed-up"
        )

    timings: Dict[str, float] = {}
    for label, engine in (("object", obj), ("arena", arena)):
        started = time.perf_counter()
        for _ in range(passes):
            engine._compute_forward()
            engine._compute_backward_any()
        timings[label] = time.perf_counter() - started

    return {
        "circuit": circuit_name,
        "model": model,
        "n_gates": len(netlist.gates),
        "passes": passes,
        "compile_s": round(compile_s, 4),
        "object_dp_s": round(timings["object"], 4),
        "arena_dp_s": round(timings["arena"], 4),
        "dp_speedup": round(
            timings["object"] / max(timings["arena"], 1e-9), 3
        ),
        "identical_results": True,
    }


def bench_batched_sim(
    circuit_name: str, cycles: int, n_seeds: int
) -> Dict[str, Any]:
    """Batched Monte-Carlo vs per-seed sequential runs."""
    library = default_library()
    netlist = build_benchmark(circuit_name, library)
    _, circuit = prepare_circuit(netlist, library)
    placement = SlavePlacement.initial()
    edl = {g.name for g in circuit.netlist.endpoints()}
    seeds = [2017 + k for k in range(n_seeds)]

    started = time.perf_counter()
    sequential = [
        estimate_error_rate(circuit, placement, edl, cycles=cycles, seed=s)
        for s in seeds
    ]
    sequential_s = time.perf_counter() - started

    started = time.perf_counter()
    batched = estimate_error_rate_batched(
        circuit, placement, edl, cycles=cycles, seeds=seeds
    )
    batched_s = time.perf_counter() - started

    if batched != sequential:
        raise AssertionError(
            f"{circuit_name}: batched reports differ from sequential"
        )
    return {
        "circuit": circuit_name,
        "cycles": cycles,
        "seeds": n_seeds,
        "sequential_s": round(sequential_s, 4),
        "batched_s": round(batched_s, 4),
        "batch_speedup": round(
            sequential_s / max(batched_s, 1e-9), 3
        ),
        "batched_cycles_per_sec": round(batched[0].cycles_per_sec or 0.0, 1),
        "identical_reports": True,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="*", default=DEFAULT_CIRCUITS)
    parser.add_argument("--model", default="path")
    parser.add_argument("--passes", type=int, default=5)
    parser.add_argument("--sim-circuit", default="s1196")
    parser.add_argument("--sim-cycles", type=int, default=48)
    parser.add_argument("--sim-seeds", type=int, default=8)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent
            / "results"
            / "BENCH_arena.json"
        ),
    )
    args = parser.parse_args(argv)

    collector = metrics.MetricsCollector()
    cells = []
    with metrics.collect_into(collector):
        for circuit_name in args.circuits:
            cell = bench_sta_cell(circuit_name, args.model, args.passes)
            cells.append(cell)
            print(
                f"{cell['circuit']:>10s} ({cell['n_gates']} gates) DP: "
                f"object {cell['object_dp_s']:8.3f}s   arena "
                f"{cell['arena_dp_s']:8.3f}s   x{cell['dp_speedup']:.2f}"
                f"   (compile {cell['compile_s']:.3f}s)"
            )
        sim = bench_batched_sim(
            args.sim_circuit, args.sim_cycles, args.sim_seeds
        )
        print(
            f"{sim['circuit']:>10s} batched sim: sequential "
            f"{sim['sequential_s']:.3f}s   batched {sim['batched_s']:.3f}s"
            f"   x{sim['batch_speedup']:.2f}"
        )

    speedups = [cell["dp_speedup"] for cell in cells]
    report = metrics.bench_report(
        collector,
        kind="arena",
        model=args.model,
        cells=cells,
        sim=sim,
        min_dp_speedup=min(speedups),
        max_dp_speedup=max(speedups),
    )
    metrics.write_bench(args.out, report)
    print(
        f"\nmax DP speedup x{max(speedups):.2f}; artifact: {args.out}"
    )
    return 0 if max(speedups) >= args.min_speedup else 1


if __name__ == "__main__":
    sys.exit(main())
