"""Benchmark incremental STA against the full-recompute parity oracle.

Runs the same flow twice per circuit — ``sta_mode="incremental"``
(event-driven cone-scoped timing repair) and ``sta_mode="full"``
(whole-engine invalidation on every netlist change) — verifies the
outcomes are identical (slave/EDL counts, areas, EDL sets and
per-endpoint arrivals), and writes a ``repro-bench/1`` artifact with
the per-stage wall-clock and the incremental counters:

    python benchmarks/sta_incremental_bench.py
    python benchmarks/sta_incremental_bench.py --circuits s35932 s38417 \
        --method grar --out benchmarks/results/BENCH_sta_incremental.json

The committed artifact ``benchmarks/results/BENCH_sta_incremental.json``
is the PR's acceptance evidence for the >= 2x sizing-stage floor on the
largest suite circuits.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import metrics  # noqa: E402
from repro.cells import default_library  # noqa: E402
from repro.circuits import build_benchmark  # noqa: E402
from repro.flows import run_flow  # noqa: E402

#: The two largest Table I circuits the flows exercise hardest.
DEFAULT_CIRCUITS = ["s35932", "s38417"]
DEFAULT_METHOD = "grar"

#: Counters that explain where the time went.
COUNTER_KEYS = (
    "sta.incremental.events",
    "sta.incremental.nodes_recomputed",
    "sta.full_recompute",
    "sta.invalidate",
)


def _fingerprint(outcome) -> Dict[str, Any]:
    """Everything two modes must agree on, exactly."""
    arrivals = outcome.circuit.endpoint_arrivals(
        outcome.retiming.placement
    )
    return {
        "n_slaves": outcome.n_slaves,
        "n_edl": outcome.n_edl,
        "sequential_area": outcome.sequential_area,
        "comb_area": outcome.comb_area,
        "edl_endpoints": tuple(sorted(outcome.edl_endpoints)),
        "endpoint_arrivals": tuple(sorted(arrivals.items())),
    }


def bench_cell(
    circuit_name: str, method: str, overhead: float
) -> Dict[str, Any]:
    """Time one circuit under both STA modes and check outcome parity."""
    library = default_library()
    netlist = build_benchmark(circuit_name, library)
    row: Dict[str, Any] = {
        "circuit": circuit_name,
        "method": method,
        "overhead": overhead,
    }
    fingerprints: Dict[str, Dict[str, Any]] = {}
    for mode in ("incremental", "full"):
        collector = metrics.MetricsCollector()
        started = time.perf_counter()
        with metrics.collect_into(collector):
            outcome = run_flow(
                method, netlist, library, overhead, sta_mode=mode
            )
            fingerprints[mode] = _fingerprint(outcome)
        wall = time.perf_counter() - started
        sizing = collector.stages.get("sizing")
        row[f"{mode}_wall_s"] = round(wall, 3)
        row[f"{mode}_sizing_s"] = round(
            sizing.wall_s if sizing else 0.0, 3
        )
        row[f"{mode}_counters"] = {
            key: collector.counters[key]
            for key in COUNTER_KEYS
            if key in collector.counters
        }
    if fingerprints["incremental"] != fingerprints["full"]:
        raise AssertionError(
            f"{circuit_name}/{method}: STA modes disagree — the "
            f"incremental engine is NOT bit-identical; do not trust "
            f"its speed-up"
        )
    row["identical_outcomes"] = True
    row["sizing_speedup"] = round(
        row["full_sizing_s"] / max(row["incremental_sizing_s"], 1e-9), 3
    )
    row["total_speedup"] = round(
        row["full_wall_s"] / max(row["incremental_wall_s"], 1e-9), 3
    )
    return row


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="*", default=DEFAULT_CIRCUITS)
    parser.add_argument("--method", default=DEFAULT_METHOD)
    parser.add_argument("--overhead", type=float, default=1.0)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent
            / "results"
            / "BENCH_sta_incremental.json"
        ),
    )
    args = parser.parse_args(argv)

    collector = metrics.MetricsCollector()
    cells = []
    with metrics.collect_into(collector):
        for circuit_name in args.circuits:
            cell = bench_cell(circuit_name, args.method, args.overhead)
            cells.append(cell)
            print(
                f"{cell['circuit']:>7s}/{cell['method']:<5s} sizing: "
                f"full {cell['full_sizing_s']:8.2f}s   incremental "
                f"{cell['incremental_sizing_s']:8.2f}s   "
                f"x{cell['sizing_speedup']:.2f}"
            )
    speedups = [cell["sizing_speedup"] for cell in cells]
    report = metrics.bench_report(
        collector,
        kind="sta-incremental",
        method=args.method,
        overhead=args.overhead,
        cells=cells,
        min_sizing_speedup=min(speedups),
        mean_sizing_speedup=round(sum(speedups) / len(speedups), 3),
    )
    metrics.write_bench(args.out, report)
    print(
        f"\nmin sizing-stage speedup x{min(speedups):.2f}; "
        f"artifact: {args.out}"
    )
    return 0 if min(speedups) >= args.min_speedup else 1


if __name__ == "__main__":
    sys.exit(main())
