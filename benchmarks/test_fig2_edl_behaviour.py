"""Fig. 2: behavioural equivalence of the two error-detecting latches."""

import random

from repro.cells.edl import (
    ShadowFlipFlopLatch,
    TransitionDetectingLatch,
    window_has_transition,
)
from repro.harness.tables import TableResult
from conftest import save_table


def test_fig2_edl_designs_agree(results_dir, benchmark):
    """Drive both Fig. 2 latches with the same random stimuli and
    check they flag identical cycles."""
    rng = random.Random(42)
    window = (0.7, 1.0)
    shadow = ShadowFlipFlopLatch()
    tdtb = TransitionDetectingLatch()

    def run():
        agree = 0
        errors = 0
        cycles = 2000
        for _ in range(cycles):
            events = sorted(
                (round(rng.uniform(0, 1.2), 4), rng.randint(0, 1))
                for _ in range(rng.randint(0, 5))
            )
            initial = rng.randint(0, 1)
            a = shadow.evaluate(events, *window, initial)
            b = tdtb.evaluate(events, *window, initial)
            times = []
            value = initial
            for when, new in events:
                if new != value:
                    times.append(when)
                    value = new
            predicted = window_has_transition(times, *window)
            assert a.error == b.error == predicted
            assert a.captured == b.captured
            agree += 1
            errors += int(a.error)
        return agree, errors, cycles

    agree, errors, cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TableResult(
        "Fig 2",
        "EDL designs: shadow-MSFF vs TDTB over random stimuli",
        ["cycles", "agreements", "error_cycles"],
    )
    table.add_row(cycles, agree, errors)
    print()
    print(table.render())
    save_table(results_dir, table)
    assert agree == cycles
    assert 0 < errors < cycles  # stimuli exercise both outcomes
