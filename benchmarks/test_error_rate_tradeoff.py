"""Section VI-D's closing observation: area buys error-rate.

"These results also suggest that with a modest area increase of, on
average 5%, error-rates can be further reduced, sometimes to 0."
"""

from conftest import save_table

from repro.flows.tradeoff import error_rate_tradeoff
from repro.harness.tables import TableResult


def test_error_rate_vs_area_tradeoff(suite, results_dir, benchmark):
    name = "s1423" if "s1423" in suite.circuit_names else suite.circuit_names[0]

    def run():
        return error_rate_tradeoff(
            suite.netlist(name),
            suite.library,
            overhead=0.5,
            budget_scales=(0.0, 0.5, 1.0, 2.0),
            scheme=suite.scheme(name),
            cycles=96,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TableResult(
        "VI-D tradeoff",
        f"rescue budget vs error rate ({name}, c=0.5)",
        ["budget_scale", "total_area", "comb_area", "EDL#", "error%"],
    )
    for point in points:
        table.add_row(*point.row())
    print()
    print(table.render())
    save_table(results_dir, table)

    # More budget never increases the EDL count, and the largest
    # budget's error rate is no worse than the zero-budget one.
    edl_counts = [p.n_edl for p in points]
    assert edl_counts == sorted(edl_counts, reverse=True)
    assert points[-1].error_rate <= points[0].error_rate + 1e-9
