"""Fig. 1: the two-phase resilient clocking scheme."""

from repro.clocks import scheme_from_period
from repro.harness.tables import TableResult
from conftest import save_table


def test_fig1_timing_relations(suite, results_dir, benchmark):
    """Reproduce the figure's timing identities for every circuit's
    derived clock and render the waveform samples."""

    def build():
        table = TableResult(
            "Fig 1",
            "two-phase resilient clocking (derived per circuit)",
            ["circuit", "phi1", "gamma1", "phi2", "gamma2",
             "Pi", "window_close", "P"],
        )
        for name in suite.circuit_names:
            scheme = suite.scheme(name)
            table.add_row(
                name,
                round(scheme.phi1, 4),
                round(scheme.gamma1, 4),
                round(scheme.phi2, 4),
                round(scheme.gamma2, 4),
                round(scheme.period, 4),
                round(scheme.window_close, 4),
                round(scheme.max_path_delay, 4),
            )
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)

    for name in suite.circuit_names:
        scheme = suite.scheme(name)
        # Fig. 1: P = Pi + phi1 and the window closes at P.
        assert abs(scheme.period + scheme.phi1 - scheme.max_path_delay) < 1e-9
        assert abs(scheme.window_close - scheme.max_path_delay) < 1e-9

    # The waveforms must show non-overlapping phases.
    scheme = suite.scheme(suite.circuit_names[0])
    waves = scheme.waveforms(cycles=2, resolution=64)
    assert not any(
        a and b for a, b in zip(waves["clk1"], waves["clk2"])
    )
