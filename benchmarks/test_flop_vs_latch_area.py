"""Section VI-D: latch-based resilient vs flop-based resilient area."""

from conftest import save_table

from repro.analysis.compare import average


def test_flop_vs_latch_resilient(suite, results_dir, benchmark):
    table = benchmark.pedantic(
        suite.flop_comparison, rounds=1, iterations=1
    )
    print()
    print(table.render())
    save_table(results_dir, table)

    # Paper: the latch-based design is on average 12.4 / 18.2 / 28.2 %
    # smaller than the flop-based resilient estimate, and roughly area-
    # neutral against the original (non-resilient) flop design thanks
    # to the 43% latch/flop area ratio.
    previous = -100.0
    for level in ("low", "medium", "high"):
        saving = average(table.column(f"{level}:saving%"))
        assert saving > 0, f"{level}: latch design should be smaller"
        assert saving >= previous - 0.5, "saving grows with overhead"
        previous = saving


def test_clock_tree_caveat(suite, results_dir, benchmark):
    """Section VI-D's caveat, quantified: the two-phase design needs
    two clock trees; even with their buffer cost charged, the latch
    design's advantage over the flop-resilient estimate survives."""
    from repro.analysis import compare_clock_trees, improvement
    from repro.harness.tables import TableResult
    from repro.latches.conversion import (
        flop_resilient_area,
        original_flop_report,
    )

    def build():
        table = TableResult(
            "VI-D trees",
            "clock-tree-adjusted latch vs flop-resilient (c = 1)",
            ["circuit", "tree_overhead", "flop_res", "latch_res_adj",
             "saving%"],
        )
        for name in suite.circuit_names:
            outcome = suite.outcome(name, "grar", 1.0)
            netlist = suite.netlist(name)
            report = original_flop_report(
                netlist, suite.scheme(name), suite.library
            )
            trees = compare_clock_trees(
                outcome, n_flops=report.n_flops, library=suite.library
            )
            flop_res = flop_resilient_area(report, suite.library, 1.0)
            adjusted = outcome.total_area + trees.overhead
            table.add_row(
                name,
                round(trees.overhead, 1),
                round(flop_res, 1),
                round(adjusted, 1),
                round(improvement(flop_res, adjusted), 2),
            )
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)
    from repro.analysis.compare import average

    # The advantage shrinks but must not flip sign on average.
    assert average(table.column("saving%")) > 0
