#!/usr/bin/env python3
"""Summarize benchmarks/results into the EXPERIMENTS.md headline rows.

Run after a harness pass; prints the measured averages the
paper-vs-measured table records.
"""

import re
import sys
from pathlib import Path

RESULTS = Path(__file__).parent / "results"


def notes(stem):
    path = RESULTS / f"{stem}.txt"
    if not path.exists():
        return []
    return [
        line.split("note:", 1)[1].strip()
        for line in path.read_text().splitlines()
        if "note:" in line
    ]


def main() -> int:
    for stem in sorted(p.stem for p in RESULTS.glob("*.txt")):
        lines = notes(stem)
        if lines:
            print(f"[{stem}]")
            for line in lines:
                print(f"  {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
