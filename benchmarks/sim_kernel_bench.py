"""Benchmark the compiled simulation kernel against the event backend.

Runs the Table VIII configuration — the retimed EDL placements the
paper actually measures — on a selection of suite circuits, times
``estimate_error_rate`` under both backends, verifies the reports are
bit-identical, and writes a ``repro-bench/1`` artifact with the
per-cell and aggregate speed-ups:

    python benchmarks/sim_kernel_bench.py
    python benchmarks/sim_kernel_bench.py --circuits s1196 s1488 \
        --cycles 192 --out benchmarks/results/BENCH_sim_kernel.json

The committed artifact ``benchmarks/results/BENCH_sim_kernel.json``
is the PR's acceptance evidence for the >= 3x cycles/sec floor.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import metrics  # noqa: E402
from repro.cells import default_library  # noqa: E402
from repro.circuits import build_benchmark  # noqa: E402
from repro.flows import run_flow  # noqa: E402
from repro.sim import estimate_error_rate  # noqa: E402

DEFAULT_CIRCUITS = ["s1196", "s1488"]
DEFAULT_METHODS = ["base", "grar"]


def bench_cell(circuit_name: str, method: str, cycles: int) -> Dict[str, Any]:
    """Time both backends on one (circuit, method) Table VIII cell."""
    library = default_library()
    netlist = build_benchmark(circuit_name, library)
    outcome = run_flow(method, netlist, library, overhead=1.0)
    rates: Dict[str, float] = {}
    reports = {}
    for backend in ("event", "compiled"):
        report = estimate_error_rate(
            outcome.circuit,
            outcome.retiming.placement,
            outcome.edl_endpoints,
            cycles=cycles,
            backend=backend,
        )
        # None = unmeasured (wall clock read zero) — treat as 0 so a
        # degenerate run fails the speedup assert loudly.
        rates[backend] = report.cycles_per_sec or 0.0
        reports[backend] = report
    if reports["compiled"] != reports["event"]:
        raise AssertionError(
            f"{circuit_name}/{method}: backends disagree — the compiled "
            f"kernel is NOT bit-identical; do not trust its speed-up"
        )
    return {
        "circuit": circuit_name,
        "method": method,
        "cycles": cycles,
        "error_rate_pct": round(reports["event"].error_rate, 4),
        "event_cycles_per_sec": round(rates["event"], 2),
        "compiled_cycles_per_sec": round(rates["compiled"], 2),
        "speedup": round(rates["compiled"] / rates["event"], 3),
        "identical_reports": True,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="*", default=DEFAULT_CIRCUITS)
    parser.add_argument("--methods", nargs="*", default=DEFAULT_METHODS)
    parser.add_argument("--cycles", type=int, default=192)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent
            / "results"
            / "BENCH_sim_kernel.json"
        ),
    )
    args = parser.parse_args(argv)

    collector = metrics.MetricsCollector()
    cells = []
    with metrics.collect_into(collector):
        for circuit_name in args.circuits:
            for method in args.methods:
                cell = bench_cell(circuit_name, method, args.cycles)
                cells.append(cell)
                print(
                    f"{cell['circuit']:>6s}/{cell['method']:<5s} "
                    f"event {cell['event_cycles_per_sec']:8.1f} c/s   "
                    f"compiled {cell['compiled_cycles_per_sec']:8.1f} c/s"
                    f"   x{cell['speedup']:.2f}"
                )
    speedups = [cell["speedup"] for cell in cells]
    report = metrics.bench_report(
        collector,
        kind="sim-kernel",
        cycles=args.cycles,
        cells=cells,
        min_speedup=min(speedups),
        mean_speedup=round(sum(speedups) / len(speedups), 3),
    )
    metrics.write_bench(args.out, report)
    print(f"\nmin speedup x{min(speedups):.2f}; artifact: {args.out}")
    return 0 if min(speedups) >= 3.0 else 1


if __name__ == "__main__":
    sys.exit(main())
