"""Design-choice ablations beyond the paper's own tables.

* post-retiming swap on/off (the paper quantifies this: RVL at high
  overhead went from -0.36% to +9.6% once the swap was added);
* network-simplex vs LP reference solver (exactness + speed);
* fanout-sharing mirror nodes (cost model sanity).
"""

from fractions import Fraction

import pytest
from conftest import save_table

from repro.analysis.compare import average, improvement
from repro.harness.tables import TableResult
from repro.retime import (
    build_retiming_graph,
    compute_cut_sets,
    compute_regions,
    solve_retiming_flow,
    solve_retiming_lp,
)
from repro.retime.graph import EdgeKind


def test_ablation_post_swap(suite, results_dir, benchmark):
    """RVL with and without the post-retiming swap step."""

    def build():
        table = TableResult(
            "Ablation swap",
            "RVL with vs without the post-retiming swap (high c)",
            ["circuit", "noswap_total", "swap_total", "gain%"],
        )
        for name in suite.circuit_names:
            noswap = suite.outcome(name, "rvl-noswap", 2.0).total_area
            swap = suite.outcome(name, "rvl", 2.0).total_area
            table.add_row(
                name,
                round(noswap, 1),
                round(swap, 1),
                round(improvement(noswap, swap), 2),
            )
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)
    # The swap can only remove unnecessary EDL types: never worse.
    assert all(gain >= -1e-9 for gain in table.column("gain%"))
    assert average(table.column("gain%")) >= 0.0


def test_ablation_solver_exactness(suite, results_dir, benchmark):
    """Network simplex and the LP oracle agree on every instance."""

    def build():
        table = TableResult(
            "Ablation solver",
            "network simplex vs LP (objective, iterations)",
            ["circuit", "flow_obj", "lp_obj", "equal", "iterations"],
        )
        for name in suite.circuit_names[:4]:
            netlist = suite.netlist(name)
            from repro.flows import prepare_circuit

            _, circuit = prepare_circuit(
                netlist.copy(), suite.library, scheme=suite.scheme(name)
            )
            regions = compute_regions(circuit)
            cuts = compute_cut_sets(circuit, regions)
            graph = build_retiming_graph(circuit, regions, cuts, 1.0)
            flow = solve_retiming_flow(graph)
            lp = solve_retiming_lp(graph)
            table.add_row(
                name,
                float(flow.objective),
                float(lp.objective),
                int(flow.objective == lp.objective),
                flow.iterations,
            )
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)
    assert all(equal == 1 for equal in table.column("equal"))


def test_ablation_fanout_sharing(suite, results_dir, benchmark):
    """Mirror-node sharing vs naive per-edge latch counting.

    Without sharing, every fanout edge pays a full latch; the shared
    cost (what the mirror construction optimizes) can only be lower.
    """

    def build():
        table = TableResult(
            "Ablation sharing",
            "latch cost: shared vs per-edge (G-RAR placement, c=1)",
            ["circuit", "shared", "per_edge", "saving%"],
        )
        for name in suite.circuit_names[:4]:
            outcome = suite.outcome(name, "grar", 1.0)
            netlist = outcome.circuit.netlist
            placement = outcome.retiming.placement
            shared = placement.slave_count(netlist)
            per_edge = sum(
                1 for _ in placement.latch_edges(netlist)
            )
            table.add_row(
                name, shared, per_edge,
                round(improvement(per_edge, shared), 2),
            )
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)
    for row in table.rows:
        assert row[1] <= row[2]
