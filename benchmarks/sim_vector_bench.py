"""Benchmark the lane-vectorized simulator against both oracles.

Runs the Table VIII configuration on a selection of suite circuits at
a multi-seed Monte-Carlo width, sweeps each cell once per backend
(event per-seed, batched compiled, lane-vectorized), verifies the
three report lists are comparison-identical, and writes a
``repro-bench/1`` artifact with per-cell and aggregate speed-ups of
the vector backend over the batched compiled baseline:

    python benchmarks/sim_vector_bench.py
    python benchmarks/sim_vector_bench.py --circuits s1196 s1488 \
        --cycles 96 --seeds 32 --out benchmarks/results/BENCH_sim_vector.json

The committed artifact ``benchmarks/results/BENCH_sim_vector.json``
is the PR's acceptance evidence for the >= 8x aggregate
lane-cycles/sec floor at 32 seeds.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import metrics  # noqa: E402
from repro.cells import default_library  # noqa: E402
from repro.circuits import build_benchmark  # noqa: E402
from repro.flows import run_flow  # noqa: E402
from repro.sim import (  # noqa: E402
    estimate_error_rate,
    estimate_error_rate_batched,
)

DEFAULT_CIRCUITS = ["s1196", "s1488"]
DEFAULT_METHODS = ["base", "grar"]


def bench_cell(
    circuit_name: str, method: str, cycles: int, n_seeds: int
) -> Dict[str, Any]:
    """Three-way sweep of one (circuit, method) Table VIII cell."""
    library = default_library()
    netlist = build_benchmark(circuit_name, library)
    outcome = run_flow(method, netlist, library, overhead=1.0)
    seeds = [2017 + k for k in range(n_seeds)]
    lane_cycles = cycles * n_seeds

    started = time.perf_counter()
    event = [
        estimate_error_rate(
            outcome.circuit,
            outcome.retiming.placement,
            outcome.edl_endpoints,
            cycles=cycles,
            seed=seed,
            backend="event",
        )
        for seed in seeds
    ]
    event_s = time.perf_counter() - started

    rates: Dict[str, float] = {}
    reports = {"event": event}
    for backend in ("compiled", "vector"):
        started = time.perf_counter()
        batch = estimate_error_rate_batched(
            outcome.circuit,
            outcome.retiming.placement,
            outcome.edl_endpoints,
            cycles=cycles,
            seeds=seeds,
            backend=backend,
        )
        wall_s = time.perf_counter() - started
        # None = unmeasured (wall clock read zero) — treat as 0 so a
        # degenerate run fails the speedup assert loudly.
        rates[backend] = lane_cycles / max(wall_s, 1e-9)
        reports[backend] = batch
    rates["event"] = lane_cycles / max(event_s, 1e-9)

    for backend in ("compiled", "vector"):
        if reports[backend] != reports["event"]:
            raise AssertionError(
                f"{circuit_name}/{method}: {backend} reports differ from"
                f" the event oracle — do not trust the speed-up"
            )
    speedup = rates["vector"] / max(rates["compiled"], 1e-9)
    if speedup <= 0.0:
        raise AssertionError(
            f"{circuit_name}/{method}: non-positive vector speedup"
        )
    return {
        "circuit": circuit_name,
        "method": method,
        "cycles": cycles,
        "seeds": n_seeds,
        "error_rate_pct": round(event[0].error_rate, 4),
        "event_lane_cycles_per_sec": round(rates["event"], 2),
        "compiled_lane_cycles_per_sec": round(rates["compiled"], 2),
        "vector_lane_cycles_per_sec": round(rates["vector"], 2),
        "speedup_vs_compiled": round(speedup, 3),
        "identical_reports": True,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="*", default=DEFAULT_CIRCUITS)
    parser.add_argument("--methods", nargs="*", default=DEFAULT_METHODS)
    parser.add_argument("--cycles", type=int, default=96)
    parser.add_argument("--seeds", type=int, default=32)
    parser.add_argument("--min-speedup", type=float, default=8.0)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent
            / "results"
            / "BENCH_sim_vector.json"
        ),
    )
    args = parser.parse_args(argv)

    collector = metrics.MetricsCollector()
    cells = []
    with metrics.collect_into(collector):
        for circuit_name in args.circuits:
            for method in args.methods:
                cell = bench_cell(
                    circuit_name, method, args.cycles, args.seeds
                )
                cells.append(cell)
                print(
                    f"{cell['circuit']:>6s}/{cell['method']:<5s} "
                    f"compiled {cell['compiled_lane_cycles_per_sec']:9.1f}"
                    f" lc/s   vector "
                    f"{cell['vector_lane_cycles_per_sec']:9.1f} lc/s"
                    f"   x{cell['speedup_vs_compiled']:.2f}"
                )
    speedups = [cell["speedup_vs_compiled"] for cell in cells]
    report = metrics.bench_report(
        collector,
        kind="sim-vector",
        cycles=args.cycles,
        seeds=args.seeds,
        cells=cells,
        min_speedup=min(speedups),
        mean_speedup=round(sum(speedups) / len(speedups), 3),
    )
    metrics.write_bench(args.out, report)
    print(f"\nmin speedup x{min(speedups):.2f}; artifact: {args.out}")
    return 0 if min(speedups) >= args.min_speedup else 1


if __name__ == "__main__":
    sys.exit(main())
