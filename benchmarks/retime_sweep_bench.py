"""Benchmark the compiled G-RAR sweep against the cold-start oracle.

Runs the full overhead sweep (c in {0.5, 1, 2}) twice per circuit —
``retime_cache=False`` (every sweep point recomputes regions, cut sets
and the graph, and cold-starts the simplex) and ``retime_cache=True``
(compiled problem reused, each solve warm-started from the previous
point's optimal basis) — verifies the outcomes are bit-identical
(slave/EDL counts, areas, EDL and credit sets, objective, placement),
and writes a ``repro-bench/1`` artifact with the retime-stage
wall-clock and the cache/warm-start counters:

    python benchmarks/retime_sweep_bench.py
    python benchmarks/retime_sweep_bench.py --circuits s35932 s38417 \
        --out benchmarks/results/BENCH_retime_sweep.json

The committed artifact ``benchmarks/results/BENCH_retime_sweep.json``
is the PR's acceptance evidence for the >= 2x floor on the G-RAR
portion of the sweep on the largest suite circuits.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import metrics  # noqa: E402
from repro.cells import default_library  # noqa: E402
from repro.circuits import build_benchmark  # noqa: E402
from repro.flows import run_flow  # noqa: E402
from repro.retime import clear_cache  # noqa: E402

#: The two largest Table I circuits — the acceptance targets.
DEFAULT_CIRCUITS = ["s35932", "s38417"]
DEFAULT_SWEEP = [0.5, 1.0, 2.0]
DEFAULT_METHOD = "grar"

#: Counters that explain where the savings came from.
COUNTER_KEYS = (
    "retime.compile.misses",
    "retime.compile.hits",
    "retime.compile.basis_seeded",
    "simplex.warm_start",
    "simplex.basis_reused",
    "simplex.pivots",
)

#: Accumulated wall clock of the G-RAR retimer invocations themselves
#: — the portion the compiled problems and warm starts accelerate.
#: (The surrounding flow also spends c-independent time in the rescue
#: pass and the guard sentinels, reported via the stage/total rows.)
GRAR_WALL = "retime.grar.wall_s"


def _fingerprint(outcome) -> Dict[str, Any]:
    """Everything the two modes must agree on, exactly."""
    retiming = outcome.retiming
    return {
        "n_slaves": outcome.n_slaves,
        "n_edl": outcome.n_edl,
        "sequential_area": outcome.sequential_area,
        "comb_area": outcome.comb_area,
        "edl_endpoints": tuple(sorted(outcome.edl_endpoints)),
        "objective": str(retiming.objective),
        "placement": tuple(sorted(retiming.placement.retimed)),
        "credited": tuple(sorted(retiming.credited_endpoints)),
    }


def bench_circuit(
    circuit_name: str, method: str, sweep: List[float]
) -> Dict[str, Any]:
    """Time one circuit's overhead sweep in both modes; check parity."""
    library = default_library()
    netlist = build_benchmark(circuit_name, library)
    row: Dict[str, Any] = {
        "circuit": circuit_name,
        "method": method,
        "sweep": list(sweep),
    }
    fingerprints: Dict[str, List[Dict[str, Any]]] = {}
    for mode, cache in (("cold", False), ("cached", True)):
        clear_cache()
        collector = metrics.MetricsCollector()
        started = time.perf_counter()
        prints: List[Dict[str, Any]] = []
        with metrics.collect_into(collector):
            for overhead in sweep:
                outcome = run_flow(
                    method,
                    netlist,
                    library,
                    overhead,
                    retime_cache=cache,
                )
                prints.append(_fingerprint(outcome))
        wall = time.perf_counter() - started
        fingerprints[mode] = prints
        retime = collector.stages.get("retime")
        row[f"{mode}_wall_s"] = round(wall, 3)
        row[f"{mode}_retime_stage_s"] = round(
            retime.wall_s if retime else 0.0, 3
        )
        row[f"{mode}_grar_s"] = round(
            collector.counters.get(GRAR_WALL, 0.0), 3
        )
        row[f"{mode}_counters"] = {
            key: collector.counters[key]
            for key in COUNTER_KEYS
            if key in collector.counters
        }
    if fingerprints["cold"] != fingerprints["cached"]:
        raise AssertionError(
            f"{circuit_name}/{method}: cached sweep disagrees with the "
            f"cold-start oracle — the compiled problem is NOT "
            f"bit-identical; do not trust its speed-up"
        )
    row["identical_outcomes"] = True
    row["grar_speedup"] = round(
        row["cold_grar_s"] / max(row["cached_grar_s"], 1e-9), 3
    )
    row["retime_stage_speedup"] = round(
        row["cold_retime_stage_s"]
        / max(row["cached_retime_stage_s"], 1e-9),
        3,
    )
    row["total_speedup"] = round(
        row["cold_wall_s"] / max(row["cached_wall_s"], 1e-9), 3
    )
    return row


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="*", default=DEFAULT_CIRCUITS)
    parser.add_argument("--method", default=DEFAULT_METHOD)
    parser.add_argument(
        "--sweep", nargs="*", type=float, default=DEFAULT_SWEEP
    )
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent
            / "results"
            / "BENCH_retime_sweep.json"
        ),
    )
    args = parser.parse_args(argv)

    collector = metrics.MetricsCollector()
    cells = []
    with metrics.collect_into(collector):
        for circuit_name in args.circuits:
            cell = bench_circuit(circuit_name, args.method, args.sweep)
            cells.append(cell)
            print(
                f"{cell['circuit']:>7s}/{cell['method']:<5s} G-RAR: "
                f"cold {cell['cold_grar_s']:8.2f}s   cached "
                f"{cell['cached_grar_s']:8.2f}s   "
                f"x{cell['grar_speedup']:.2f}   "
                f"(retime stage x{cell['retime_stage_speedup']:.2f}, "
                f"flow x{cell['total_speedup']:.2f})"
            )
    speedups = [cell["grar_speedup"] for cell in cells]
    report = metrics.bench_report(
        collector,
        kind="retime-sweep",
        method=args.method,
        sweep=list(args.sweep),
        cells=cells,
        min_grar_speedup=min(speedups),
        mean_grar_speedup=round(sum(speedups) / len(speedups), 3),
    )
    metrics.write_bench(args.out, report)
    print(
        f"\nmin G-RAR-portion speedup x{min(speedups):.2f}; "
        f"artifact: {args.out}"
    )
    return 0 if min(speedups) >= args.min_speedup else 1


if __name__ == "__main__":
    sys.exit(main())
