"""Figs. 3-5: the worked example, end to end against the paper's text."""

from repro.circuits.fig4 import fig4_circuit
from repro.harness.tables import TableResult
from repro.retime import (
    base_retime,
    build_retiming_graph,
    compute_cut_sets,
    compute_regions,
    grar_retime,
    solve_retiming_flow,
    solve_retiming_lp,
)
from conftest import save_table


def test_fig45_worked_example(results_dir, benchmark):
    def run():
        circuit = fig4_circuit()
        regions = compute_regions(circuit)
        cuts = compute_cut_sets(circuit, regions)
        graph = build_retiming_graph(circuit, regions, cuts, overhead=2.0)
        flow = solve_retiming_flow(graph)
        lp = solve_retiming_lp(graph)
        grar = grar_retime(circuit, overhead=2.0)
        base = base_retime(circuit, overhead=2.0)
        # The paper's "traditional min-area retiming" contrast (Cut1):
        # minimize latches with no resiliency awareness at all.
        from repro.retime.grar import placement_from_r

        plain_graph = build_retiming_graph(circuit, regions)
        plain = solve_retiming_flow(plain_graph)
        cut1 = placement_from_r(circuit, plain.r_values)
        return circuit, regions, cuts, flow, lp, grar, base, cut1

    circuit, regions, cuts, flow, lp, grar, base, cut1 = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    table = TableResult(
        "Fig 4-5",
        "worked example: published value vs reproduced",
        ["quantity", "paper", "repro"],
    )
    table.add_row("D^f(G7)", 8, circuit.df("G7"))
    table.add_row("D^f(G8)", 9, circuit.df("G8"))
    table.add_row("D^b(I1,O9)", 9, circuit.db("I1", "O9"))
    table.add_row("A(G6,G7,O9)", 9, circuit.arrival_through("G6", "G7", "O9"))
    table.add_row("A(G3,G6,O9)", 12, circuit.arrival_through("G3", "G6", "O9"))
    table.add_row("A(G5,G7,O9)", 7, circuit.arrival_through("G5", "G7", "O9"))
    table.add_row("A(I2,G5,O9)", 12, circuit.arrival_through("I2", "G5", "O9"))
    table.add_row("|Vm|", 1, len(regions.vm))
    table.add_row("|Vn|", 2, len(regions.vn))
    table.add_row("|Vr|", 5, len(regions.vr))
    table.add_row("g(O9)", "{G5,G6}", "{" + ",".join(sorted(cuts["O9"].gates)) + "}")
    table.add_row("G-RAR slaves (Cut2)", 3, grar.n_slaves)
    table.add_row("G-RAR O9 EDL", 0, int("O9" in grar.edl_endpoints))
    table.add_row("Cut2 units (c=2, +O10)", 5, grar.cost.latch_units)
    cut1_cost = circuit.sequential_cost(cut1, overhead=2.0)
    table.add_row("min-area slaves (Cut1)", 2, cut1_cost.n_slaves)
    table.add_row("Cut1 units (c=2, +O10)", 6, cut1_cost.latch_units)
    table.add_row("flow objective == LP", 1, int(flow.objective == lp.objective))
    print()
    print(table.render())
    save_table(results_dir, table)

    assert set(cuts["O9"].gates) == {"G5", "G6"}
    assert grar.placement.retimed == {"I1", "I2", "G3", "G4", "G5", "G6"}
    assert flow.objective == lp.objective == 1
    # The paper's Cut1-vs-Cut2 contrast: min-area retiming picks the
    # 2-latch cut and pays the EDL; resiliency-aware retiming pays one
    # more latch and saves two units overall.
    cut1_cost = circuit.sequential_cost(cut1, overhead=2.0)
    assert cut1_cost.n_slaves == 2
    assert grar.cost.latch_units < cut1_cost.latch_units
    assert grar.cost.latch_units <= base.cost.latch_units
