"""Benchmark the scenario engine: matrix throughput + parity evidence.

Runs the corners × upsets × policies matrix on a selection of suite
circuits, once per simulation backend, verifies the two reports are
byte-identical (the parity oracle under injection), measures the
graceful-degradation machinery (chaos corners must settle as typed
FAILED entries without sinking the sweep), and writes a
``repro-bench/1`` artifact:

    python benchmarks/scenario_bench.py
    python benchmarks/scenario_bench.py --circuits s1196 s1488 \
        --cycles 96 --jobs 4 --out benchmarks/results/BENCH_scenarios.json

The committed artifact ``benchmarks/results/BENCH_scenarios.json`` is
the PR's acceptance evidence: identical cross-backend reports, a
selective-vs-G-RAR comparison, and a degraded matrix that still
completed.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import metrics  # noqa: E402
from repro.cells import default_library  # noqa: E402
from repro.circuits import build_benchmark  # noqa: E402
from repro.scenarios.engine import run_scenarios  # noqa: E402

DEFAULT_CIRCUITS = ["s1196", "s1488"]
CORNERS = ("nominal", "slow", "sigma")
UPSETS = ("none", "seu", "glitch")
POLICIES = ("grar", "selective")


def _policy_summary(report) -> Dict[str, Any]:
    """Mean error rate and area per hardening policy (the headline
    selective-vs-G-RAR comparison)."""
    summary: Dict[str, Any] = {}
    for policy in POLICIES:
        entries = [
            e for e in report.ok_entries if e["policy"] == policy
        ]
        if not entries:
            continue
        summary[policy] = {
            "n": len(entries),
            "mean_error_rate_pct": round(
                sum(e["error_rate"] for e in entries) / len(entries), 4
            ),
            "mean_total_area": round(
                sum(e["total_area"] for e in entries) / len(entries), 2
            ),
            "mean_n_edl": round(
                sum(e["n_edl"] for e in entries) / len(entries), 2
            ),
        }
    return summary


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="*", default=DEFAULT_CIRCUITS)
    parser.add_argument("--cycles", type=int, default=96)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent
            / "results"
            / "BENCH_scenarios.json"
        ),
    )
    args = parser.parse_args(argv)

    library = default_library()
    pairs = [
        (name, build_benchmark(name, library)) for name in args.circuits
    ]

    collector = metrics.MetricsCollector()
    with metrics.collect_into(collector):
        walls: Dict[str, float] = {}
        texts: Dict[str, str] = {}
        report = None
        for backend in ("event", "compiled"):
            started = time.perf_counter()
            report = run_scenarios(
                pairs,
                library,
                corners=CORNERS,
                upsets=UPSETS,
                policies=POLICIES,
                cycles=args.cycles,
                seed=args.seed,
                sim_backend=backend,
                jobs=args.jobs,
            )
            walls[backend] = time.perf_counter() - started
            texts[backend] = report.to_json()
            print(
                f"{backend:>8s}: {len(report.ok_entries)} ok, "
                f"{len(report.failed_entries)} failed "
                f"in {walls[backend]:.2f}s"
            )
        if texts["event"] != texts["compiled"]:
            raise AssertionError(
                "backends disagree — the injection plans are NOT "
                "honoured bit-identically; do not trust this sweep"
            )

        # Degradation drill: chaos corners must settle, not sink.
        started = time.perf_counter()
        chaos = run_scenarios(
            pairs[:1],
            library,
            corners=("nominal", "chaos-crash", "chaos-hang"),
            upsets=("none",),
            policies=("grar",),
            cycles=args.cycles,
            seed=args.seed,
            jobs=args.jobs,
            deadline_s=10.0,
            hang_s=120.0,
        )
        chaos_wall = time.perf_counter() - started
        kinds = sorted(
            {e["failure_kind"] for e in chaos.failed_entries}
        )
        if kinds != ["crash", "deadline"]:
            raise AssertionError(
                f"degradation drill produced kinds {kinds}, expected "
                f"['crash', 'deadline']"
            )
        if not chaos.ok_entries:
            raise AssertionError("degradation drill lost the ok entry")
        print(
            f"   chaos: {len(chaos.ok_entries)} ok, "
            f"{len(chaos.failed_entries)} typed FAILED "
            f"({', '.join(kinds)}) in {chaos_wall:.2f}s"
        )

    scenarios_per_sec = {
        backend: round(len(report.entries) / wall, 3)
        for backend, wall in walls.items()
    }
    bench = metrics.bench_report(
        collector,
        kind="scenarios",
        circuits=list(args.circuits),
        corners=list(CORNERS),
        upsets=list(UPSETS),
        policies=list(POLICIES),
        cycles=args.cycles,
        seed=args.seed,
        jobs=args.jobs,
        n_entries=len(report.entries),
        n_ok=len(report.ok_entries),
        n_failed=len(report.failed_entries),
        identical_reports=True,
        scenarios_per_sec=scenarios_per_sec,
        policy_summary=_policy_summary(report),
        chaos_drill={
            "n_ok": len(chaos.ok_entries),
            "n_failed": len(chaos.failed_entries),
            "failure_kinds": kinds,
            "wall_s": round(chaos_wall, 3),
        },
    )
    metrics.write_bench(args.out, bench)
    print(f"\nartifact: {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
