"""Table I: circuit information of the original flop-based designs."""

from conftest import save_table

from repro.harness.paper import PAPER_TABLE1


def test_table1_circuit_info(suite, results_dir, benchmark):
    table = benchmark.pedantic(
        suite.table1, rounds=1, iterations=1
    )
    print()
    print(table.render())
    save_table(results_dir, table)

    # Shape check: flop counts match the paper exactly; near-critical
    # endpoint counts track the paper's within a loose band (they are
    # what the generator calibrates).
    for row in table.rows:
        name = row[0]
        flops, nce = row[2], row[3]
        paper_p, paper_flops, paper_nce, _ = PAPER_TABLE1[name]
        assert flops == paper_flops
        assert abs(nce - paper_nce) <= max(6, 0.5 * paper_nce)
