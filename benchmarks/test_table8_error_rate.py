"""Table VIII: error-rate comparison via random-input simulation."""

from conftest import save_table

from repro.analysis.compare import average


def test_table8_error_rates(suite, results_dir, benchmark):
    table = benchmark.pedantic(suite.table8, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)

    # Paper: G-RAR averages at most about half the base error rate
    # (its retiming + cost-aware speed-ups pull near-critical masters
    # out of the window; rates often drop to 0).
    for level in ("medium", "high"):
        base = average(table.column(f"{level}:base"))
        grar = average(table.column(f"{level}:grar"))
        assert grar <= base * 0.75 + 1e-9, (
            f"{level}: grar {grar:.2f}% vs base {base:.2f}%"
        )
        # Rates are percentages.
        for method in ("base", "rvl", "grar"):
            for value in table.column(f"{level}:{method}"):
                assert 0.0 <= value <= 100.0
