"""Table II: gate-based vs path-based delay model G-RAR (ablation)."""

from conftest import save_table

from repro.analysis.compare import average


def test_table2_path_vs_gate_model(suite, results_dir, benchmark):
    table = benchmark.pedantic(suite.table2, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)

    # Paper: the path-based model reduces total area by 4.9 / 5.7 /
    # 7.6 % on average.  Shape: the accurate model must not lose on
    # average at any overhead level.
    for level in ("low", "medium", "high"):
        avg = average(table.column(f"{level}:impr%"))
        assert avg >= -1.0, f"{level}: path-based lost {avg:.2f}% on average"
