"""Table VI: slave-latch and error-detecting master counts."""

from conftest import save_table

from repro.analysis.compare import average


def test_table6_latch_counts(suite, results_dir, benchmark):
    table = benchmark.pedantic(suite.table6, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)

    rows = {(row[0], row[1]): row for row in table.rows}
    circuits = {row[0] for row in table.rows}

    grar_edl_by_level = {"low": [], "medium": [], "high": []}
    for circuit in circuits:
        base = rows[(circuit, "Base")]
        grar = rows[(circuit, "G")]
        # Columns: circuit, approach, low:slave#, low:EDL#, medium:..., high:...
        for index, level in ((2, "low"), (4, "medium"), (6, "high")):
            # Paper: G-RAR uses notably fewer slaves than the
            # timing-driven baseline (e.g. 32 vs 88 on s1196).
            assert grar[index] <= base[index], (
                f"{circuit} {level}: G slaves {grar[index]} vs "
                f"base {base[index]}"
            )
            grar_edl_by_level[level].append(grar[index + 1])

    # Paper: with growing overhead G-RAR trades slaves for fewer EDL
    # masters (EDL counts shrink, reaching 0 on most mid/large
    # circuits at high c).
    assert average(grar_edl_by_level["high"]) <= average(
        grar_edl_by_level["low"]
    ) + 1e-9
