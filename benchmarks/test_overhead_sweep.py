"""Ablation: G-RAR's advantage as a function of the EDL overhead c.

The paper evaluates three points (c = 0.5 / 1 / 2, "representing the
fact that the amortized area of different proposed EDL schemes can
range from 50% to 2X larger than a normal latch"); this sweep fills
the continuum in between, anchored by published schemes' overheads.
"""

from conftest import save_table

from repro.analysis.compare import average, improvement
from repro.cells.edl import EDL_SCHEME_OVERHEADS
from repro.harness.tables import TableResult

SWEEP = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0)


def test_overhead_continuum(suite, results_dir, benchmark):
    circuits = suite.circuit_names[:3]

    def build():
        table = TableResult(
            "Sweep c",
            "G-RAR total-area improvement over base vs EDL overhead",
            ["c"] + circuits + ["average"],
        )
        for c in SWEEP:
            row = [c]
            gains = []
            for name in circuits:
                base = suite.outcome(name, "base", c).total_area
                grar = suite.outcome(name, "grar", c).total_area
                gains.append(improvement(base, grar))
            row.extend(round(g, 2) for g in gains)
            row.append(round(average(gains), 2))
            table.add_row(*row)
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    for scheme, c in sorted(EDL_SCHEME_OVERHEADS.items(), key=lambda kv: kv[1]):
        table.add_note(f"anchor: {scheme} has c = {c}")
    print()
    print(table.render())
    save_table(results_dir, table)

    averages = table.column("average")
    # The advantage must grow (weakly) from the lowest overhead to the
    # highest: the more an EDL costs, the more avoiding it is worth.
    assert averages[-1] >= averages[0] - 0.5
    assert max(averages) == averages[-1] or max(averages) >= averages[0]
