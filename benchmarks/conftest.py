"""Shared state for the benchmark harness.

The full ISCAS89+Plasma suite takes tens of minutes in pure Python;
set ``REPRO_SUITE=full`` to run it.  The default is the paper's four
small circuits plus two mid-size ones, which reproduces every trend in
a few minutes.  Rendered tables are written to ``benchmarks/results/``
so EXPERIMENTS.md can reference them.
"""

import os
from pathlib import Path

import pytest

from repro.harness import ExperimentSuite
from repro.circuits import suite_names

RESULTS_DIR = Path(__file__).parent / "results"

DEFAULT_CIRCUITS = ["s1196", "s1238", "s1423", "s1488", "s5378", "s9234"]


def selected_circuits():
    choice = os.environ.get("REPRO_SUITE", "small")
    if choice == "full":
        return suite_names()
    if choice == "small":
        return list(DEFAULT_CIRCUITS)
    return [name.strip() for name in choice.split(",") if name.strip()]


@pytest.fixture(scope="session")
def suite():
    return ExperimentSuite(
        circuits=selected_circuits(),
        error_rate_cycles=int(os.environ.get("REPRO_SIM_CYCLES", "160")),
    )


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir, table):
    stem = table.table_id.replace(" ", "_").lower()
    path = results_dir / f"{stem}.txt"
    path.write_text(table.render() + "\n")
    (results_dir / f"{stem}.csv").write_text(table.to_csv())
    return path
