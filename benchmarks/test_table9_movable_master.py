"""Table IX: fixed- vs movable-master RVL-RAR."""

from conftest import save_table

from repro.analysis.compare import average


def test_table9_movable_masters(suite, results_dir, benchmark):
    table = benchmark.pedantic(suite.table9, rounds=1, iterations=1)
    print()
    print(table.render())
    save_table(results_dir, table)

    # Paper: releasing the do-not-retime constraint on masters shows
    # "little to no gain" — per-circuit diffs within a few percent and
    # averages near zero (-0.73 / +0.01 / -0.28 %).
    for level in ("low", "medium", "high"):
        avg = average(table.column(f"{level}:diff%"))
        assert abs(avg) < 8.0, f"{level}: movable masters moved {avg:.2f}%"
