"""Benchmark the persistent artifact store: cold vs warm vs store-off.

Runs a table sweep three ways — ``off`` (no store: the bit-parity
oracle), ``cold`` (fresh store directory), and ``warm`` (a second
suite on the same directory, modelling a separate process) — verifies
the rendered tables are byte-identical across all three, asserts the
warm pass is actually served from disk (nonzero disk hits), and
writes a ``repro-bench/1`` artifact:

    python benchmarks/store_bench.py
    python benchmarks/store_bench.py --circuits s1196 s1423 \
        --out benchmarks/results/BENCH_store.json

A second warm measurement replays the raw flow sweep through
``run_flow(store=...)`` with the suite memo out of the picture, so the
``compiled-grar`` namespace's cross-process disk hits are visible
directly (the suite-level warm pass resumes from the ``suite-memo``
artifact and may not need to compile at all).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import metrics  # noqa: E402
from repro.cells import default_library  # noqa: E402
from repro.circuits import build_benchmark  # noqa: E402
from repro.flows import run_flow  # noqa: E402
from repro.harness import ExperimentSuite  # noqa: E402
from repro.store import ArtifactStore, open_store  # noqa: E402

DEFAULT_CIRCUITS = ["s1196", "s1423"]
DEFAULT_TABLES = ["table5"]
DEFAULT_CYCLES = 48

#: Counters that explain where the warm savings came from.
COUNTER_PREFIXES = ("store.", "retime.compile.", "arena.compile.")


def _store_counters(collector: metrics.MetricsCollector) -> Dict[str, float]:
    return {
        key: value
        for key, value in sorted(collector.counters.items())
        if key.startswith(COUNTER_PREFIXES)
    }


def _render_tables(suite: ExperimentSuite, tables: List[str]) -> str:
    return "\n".join(getattr(suite, name)().render() for name in tables)


def _run_suite(
    circuits: List[str],
    tables: List[str],
    cycles: int,
    store,
) -> Dict[str, Any]:
    collector = metrics.MetricsCollector()
    started = time.perf_counter()
    with metrics.collect_into(collector):
        suite = ExperimentSuite(
            circuits=circuits, error_rate_cycles=cycles, store=store
        )
        text = _render_tables(suite, tables)
        suite.checkpoint(force=True)
    return {
        "wall_s": round(time.perf_counter() - started, 3),
        "counters": _store_counters(collector),
        "text": text,
    }


def _run_flow_sweep(
    circuits: List[str], store_dir: str
) -> Dict[str, Any]:
    """Raw flow replay against the warm store (no suite memo)."""
    library = default_library()
    collector = metrics.MetricsCollector()
    started = time.perf_counter()
    with metrics.collect_into(collector):
        for name in circuits:
            netlist = build_benchmark(name, library)
            run_flow("grar", netlist, library, 1.0, store=store_dir)
    return {
        "wall_s": round(time.perf_counter() - started, 3),
        "counters": _store_counters(collector),
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="*", default=DEFAULT_CIRCUITS)
    parser.add_argument("--tables", nargs="*", default=DEFAULT_TABLES)
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLES)
    parser.add_argument(
        "--store-dir", default=None,
        help="store directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent
            / "results"
            / "BENCH_store.json"
        ),
    )
    args = parser.parse_args(argv)

    if args.store_dir:
        store_dir = args.store_dir
    else:
        import tempfile

        tmp = tempfile.TemporaryDirectory(prefix="repro-store-bench-")
        store_dir = str(Path(tmp.name) / "cas")

    modes: Dict[str, Dict[str, Any]] = {}
    modes["off"] = _run_suite(
        args.circuits, args.tables, args.cycles, store=None
    )
    # Fresh ArtifactStore instances per pass: the second one can only
    # be served by the disk tier, exactly like a separate process.
    modes["cold"] = _run_suite(
        args.circuits, args.tables, args.cycles,
        store=open_store(store_dir),
    )
    modes["warm"] = _run_suite(
        args.circuits, args.tables, args.cycles,
        store=open_store(store_dir),
    )
    flow_warm = _run_flow_sweep(args.circuits, store_dir)

    failures: List[str] = []
    if modes["cold"]["text"] != modes["off"]["text"]:
        failures.append("cold store tables differ from store-off oracle")
    if modes["warm"]["text"] != modes["off"]["text"]:
        failures.append("warm store tables differ from store-off oracle")

    def _hits(counters: Dict[str, float], suffix: str) -> float:
        return sum(
            value for key, value in counters.items()
            if key.startswith("store.") and key.endswith(suffix)
        )

    warm_disk_hits = _hits(modes["warm"]["counters"], ".disk_hits")
    flow_disk_hits = flow_warm["counters"].get(
        "store.compiled-grar.disk_hits", 0.0
    )
    if not warm_disk_hits:
        failures.append("warm suite pass had zero disk hits")
    if not flow_disk_hits:
        failures.append("warm flow replay had zero compiled-grar disk hits")
    if flow_warm["counters"].get("retime.compile.misses"):
        failures.append("warm flow replay recompiled (expected pure hits)")

    collector = metrics.MetricsCollector()
    report = metrics.bench_report(
        collector,
        kind="store",
        circuits=list(args.circuits),
        tables=list(args.tables),
        cycles=args.cycles,
        store_stats=ArtifactStore(store_dir).stats(),
        modes={
            mode: {k: v for k, v in row.items() if k != "text"}
            for mode, row in modes.items()
        },
        flow_warm=flow_warm,
        tables_identical=not failures,
        warm_disk_hits=warm_disk_hits,
        flow_compiled_grar_disk_hits=flow_disk_hits,
        warm_speedup=round(
            modes["cold"]["wall_s"] / max(modes["warm"]["wall_s"], 1e-9),
            3,
        ),
    )
    metrics.write_bench(args.out, report)

    for mode in ("off", "cold", "warm"):
        print(f"{mode:>5s}: {modes[mode]['wall_s']:7.2f}s")
    print(
        f" warm disk hits: {warm_disk_hits:.0f} (suite), "
        f"{flow_disk_hits:.0f} (flow replay, compiled-grar)"
    )
    print(f"artifact: {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
