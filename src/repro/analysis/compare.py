"""Improvement arithmetic used by every results table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.flows.run import FlowOutcome


@dataclass(frozen=True)
class Improvement:
    """Relative improvement of ``candidate`` over ``reference``."""

    reference: float
    candidate: float

    @property
    def percent(self) -> float:
        """Positive when the candidate is smaller (paper convention)."""
        if self.reference == 0:
            return 0.0
        return 100.0 * (self.reference - self.candidate) / self.reference


def improvement(reference: float, candidate: float) -> float:
    """Percent improvement of ``candidate`` over ``reference``."""
    return Improvement(reference, candidate).percent


def summarize_outcomes(
    outcomes: Mapping[str, FlowOutcome],
    reference: str = "base",
    metric: str = "total_area",
) -> Dict[str, float]:
    """Per-method improvement (%) against the reference method."""
    if reference not in outcomes:
        raise KeyError(f"reference method {reference!r} missing")
    base_value = getattr(outcomes[reference], metric)
    return {
        method: improvement(base_value, getattr(outcome, metric))
        for method, outcome in outcomes.items()
        if method != reference
    }


def average(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence).

    NaN entries — FAILED cells from isolated circuit failures — are
    skipped so one bad circuit does not poison a whole-suite average.
    """
    values = [v for v in values if v == v]
    return sum(values) / len(values) if values else 0.0
