"""Area accounting breakdowns."""

from __future__ import annotations

from dataclasses import dataclass

from repro.flows.run import FlowOutcome


@dataclass(frozen=True)
class AreaBreakdown:
    """Where a flow outcome's area lives."""

    comb: float
    slaves: float
    masters: float
    edl_overhead: float

    @property
    def sequential(self) -> float:
        """Total sequential area (slaves + masters + EDL overhead)."""
        return self.slaves + self.masters + self.edl_overhead

    @property
    def total(self) -> float:
        """Combinational plus sequential area."""
        return self.comb + self.sequential

    def row(self) -> dict:
        """The breakdown as a plain dict (for tables)."""
        return {
            "comb": self.comb,
            "slaves": self.slaves,
            "masters": self.masters,
            "edl_overhead": self.edl_overhead,
            "sequential": self.sequential,
            "total": self.total,
        }


def area_breakdown(outcome: FlowOutcome) -> AreaBreakdown:
    """Split an outcome's area into comb / slaves / masters / EDL."""
    cost = outcome.cost
    latch = cost.latch_area
    return AreaBreakdown(
        comb=outcome.comb_area,
        slaves=cost.n_slaves * latch,
        masters=cost.n_masters * latch,
        edl_overhead=cost.n_edl * cost.overhead * latch,
    )
