"""Result analysis: comparisons, improvements, and area breakdowns."""

from repro.analysis.compare import (
    Improvement,
    improvement,
    summarize_outcomes,
)
from repro.analysis.area import AreaBreakdown, area_breakdown
from repro.analysis.clocktree import (
    ClockTreeComparison,
    ClockTreeEstimate,
    compare_clock_trees,
    estimate_tree,
)

__all__ = [
    "Improvement",
    "improvement",
    "summarize_outcomes",
    "AreaBreakdown",
    "area_breakdown",
    "ClockTreeComparison",
    "ClockTreeEstimate",
    "compare_clock_trees",
    "estimate_tree",
]
