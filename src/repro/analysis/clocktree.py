"""Clock-tree overhead estimation (the Section VI-D caveat).

The paper qualifies its area-parity result: "this analysis does not
consider the fact that our two-phase latch-based design requires the
generation of two clock trees instead of one, which could introduce
additional overhead during physical design."  This estimator makes the
caveat quantitative with a standard pre-CTS model: a balanced buffer
tree of fanout ``K`` over the clock sinks, costing one buffer per ``K``
sinks per level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cells.library import Library
from repro.flows.run import FlowOutcome


@dataclass(frozen=True)
class ClockTreeEstimate:
    """Buffer count and area of one balanced clock tree."""

    sinks: int
    buffers: int
    area: float


def estimate_tree(
    sinks: int, library: Library, fanout: int = 12
) -> ClockTreeEstimate:
    """Balanced-tree estimate: ``ceil(n/K)`` buffers per level."""
    if sinks < 0:
        raise ValueError("sinks must be non-negative")
    if fanout < 2:
        raise ValueError("fanout must be at least 2")
    buffer_area = library.pick_comb("BUF", 1, drive=4).area
    buffers = 0
    level = sinks
    while level > 1:
        level = math.ceil(level / fanout)
        buffers += level
    return ClockTreeEstimate(
        sinks=sinks, buffers=buffers, area=buffers * buffer_area
    )


@dataclass(frozen=True)
class ClockTreeComparison:
    """One-tree flop design vs two-tree latch design."""

    flop_tree: ClockTreeEstimate
    master_tree: ClockTreeEstimate
    slave_tree: ClockTreeEstimate

    @property
    def latch_design_area(self) -> float:
        """Total clock-buffer area of the two-phase design."""
        return self.master_tree.area + self.slave_tree.area

    @property
    def overhead(self) -> float:
        """Extra clock-tree area the two-phase conversion pays."""
        return self.latch_design_area - self.flop_tree.area


def compare_clock_trees(
    outcome: FlowOutcome, n_flops: int, library: Library, fanout: int = 12
) -> ClockTreeComparison:
    """Clock-tree cost of a retimed two-phase design vs its flop
    original.

    The master tree drives one latch per endpoint, the slave tree one
    latch per placed slave; the flop design drives ``n_flops`` flops.
    """
    return ClockTreeComparison(
        flop_tree=estimate_tree(n_flops, library, fanout),
        master_tree=estimate_tree(
            outcome.cost.n_masters, library, fanout
        ),
        slave_tree=estimate_tree(outcome.n_slaves, library, fanout),
    )
