"""Area recovery: slack-driven downsizing against per-master limits.

Commercial compiles reclaim area wherever timing allows: gates are
downsized (or swapped back to standard Vt) until arrivals approach
their constraints.  For resilient designs this pass is double-edged —
and reproducing that edge is the point:

* under the **base** and **G-RAR** flows, masters that meet ``Pi``
  keep ``Pi`` as their limit, so recovery cannot push them into the
  resiliency window;
* under a **virtual-library** flow the limits come from the latch
  *types*: an error-detecting master's relaxed setup lets recovery
  drift its whole fan-in cone toward the window close — after which
  the post-retiming swap finds nothing to downgrade.  This is how EVL
  ends up keeping nearly all its error-detecting latches (Table III's
  blow-up at high overhead) even though the swap step runs.

The pass computes placement-aware required times (latch edges decouple
the pre-latch segment: its requirement is the slave-close constraint
(6) and the launch budget ``L - d_q``), then greedily downsizes gates
whose slack covers the estimated delay increase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.cells.cell import CombCell
from repro.latches.placement import SlavePlacement
from repro.latches.resilient import EPS, TwoPhaseCircuit

INF = float("inf")


@dataclass
class RecoveryReport:
    """Outcome of one area-recovery pass."""

    resized: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    passes: int = 0
    area_saved: float = 0.0

    @property
    def n_resized(self) -> int:
        """Number of gates the pass downsized."""
        return len(self.resized)


def required_times(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    limits: Mapping[str, float],
) -> Dict[str, float]:
    """Placement-aware required time at every gate output.

    ``limits`` maps endpoints to their latest allowed arrival.  On a
    latched edge the driver's requirement becomes
    ``min(forward_limit, launch_budget - d_q)`` — constraint (6) plus
    the transparency-launch budget of eq. (5).
    """
    netlist = circuit.netlist
    fwd_limit = circuit.scheme.forward_limit
    d_q = circuit.latch_d_q
    endpoint_set = set(circuit.endpoint_names)

    req: Dict[str, float] = {}
    for name in reversed(netlist.topo_order()):
        gate = netlist[name]
        if gate.gtype.value == "output":
            continue
        best = INF
        for user in netlist.fanouts(name):
            user_gate = netlist[user]
            if user in endpoint_set and not user_gate.is_comb:
                downstream = limits.get(user, INF)
            elif user_gate.is_comb:
                downstream = req.get(user, INF) - circuit.edge_delay(
                    name, user
                )
            else:
                continue
            if placement.edge_weight_after(netlist, name, user) == 1:
                downstream = min(fwd_limit, downstream - d_q)
            best = min(best, downstream)
        req[name] = best
    return req


def _downsize_candidates(
    circuit: TwoPhaseCircuit, cell: CombCell
) -> List[CombCell]:
    """Weaker/standard-Vt alternatives for a cell, if any."""
    library = circuit.library
    options: List[CombCell] = []
    variants = library.drive_variants(cell)
    weaker = [v for v in variants if v.drive < cell.drive]
    if weaker:
        options.append(weaker[-1])  # next step down
    if cell.vt == "lvt":
        svt = library.vt_variant(cell, "svt")
        if svt is not None:
            options.append(svt)
    return options


def recover_area(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    limits: Mapping[str, float],
    max_passes: int = 4,
    slack_share: float = 0.45,
) -> RecoveryReport:
    """Downsize gates whose slack against ``limits`` allows it."""
    report = RecoveryReport()
    library = circuit.library
    if library is None:
        raise ValueError("area recovery needs a library")

    for pass_index in range(max_passes):
        _, post = circuit.arrival_details(placement)
        req = required_times(circuit, placement, limits)
        calc = circuit.engine.calculator
        changed = False
        for gate in circuit.netlist.comb_gates():
            name = gate.name
            requirement = req.get(name, INF)
            if requirement == INF:
                continue
            slack = requirement - post.get(name, 0.0)
            if slack <= EPS:
                continue
            cell = library[gate.cell]
            if not isinstance(cell, CombCell):
                continue
            load = calc.load(name)
            current = max(
                cell.arc(p).max_delay(load, 0.03) for p in cell.inputs
            )
            for candidate in _downsize_candidates(circuit, cell):
                proposed = max(
                    candidate.arc(p).max_delay(load, 0.03)
                    for p in candidate.inputs
                )
                delta = proposed - current
                saving = cell.area - candidate.area
                if saving <= 0:
                    continue
                if delta <= slack * slack_share:
                    first = report.resized.get(name, (cell.name, ""))[0]
                    report.resized[name] = (first, candidate.name)
                    circuit.netlist.replace_cell(name, candidate.name)
                    report.area_saved += saving
                    changed = True
                    break
        report.passes = pass_index + 1
        if not changed:
            break

    # Safety: recovery must never break a limit.  Slack sharing makes
    # violations rare; a final verification pass undoes the pass's
    # work entirely if one slipped through (cheap and conservative).
    arrivals = circuit.endpoint_arrivals(placement)
    violated = [
        endpoint
        for endpoint, limit in limits.items()
        if arrivals.get(endpoint, 0.0) > limit + 1e-7
    ]
    if violated:
        from repro.synth.sizing import size_only_compile

        size_only_compile(circuit, placement, limits)
    return report
