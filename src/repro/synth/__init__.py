"""Synthesis-tool substrate.

Stands in for the commercial logic-synthesis tool the paper drives:
timing reports, a built-in retiming command, max-delay constraints,
and a size-only incremental compile.  The retiming flows only consume
these tool services, so exercising them through this substrate covers
the same integration surface as the paper's flow.
"""

from repro.synth.hold_fix import HoldFixReport, fix_hold
from repro.synth.recovery import RecoveryReport, recover_area, required_times
from repro.synth.sizing import (
    RescueReport,
    SizingReport,
    rescue_paths,
    size_only_compile,
    speed_paths,
)
from repro.synth.tool import SynthTool, ToolOptions

__all__ = [
    "HoldFixReport",
    "fix_hold",
    "RecoveryReport",
    "RescueReport",
    "SizingReport",
    "SynthTool",
    "ToolOptions",
    "recover_area",
    "required_times",
    "rescue_paths",
    "size_only_compile",
    "speed_paths",
]
