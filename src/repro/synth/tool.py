"""The synthesis-tool facade.

Bundles the services the paper's flows request from the commercial
tool behind one object: timing reports, the built-in retiming command,
do-not-retime constraints, max-delay constraints, and the incremental
size-only compile.  Example scripts and the VL flow drive this facade
the same way the paper's TCL drove its tool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set

from repro.cells.library import Library
from repro.clocks import ClockScheme
from repro.latches.placement import SlavePlacement
from repro.latches.resilient import TwoPhaseCircuit
from repro.netlist.netlist import Netlist
from repro.sta.paths import TimingPath, worst_path
from repro.synth.sizing import SizingReport, size_only_compile


@dataclass
class ToolOptions:
    """Knobs mirroring the synthesis runs of Section VI."""

    delay_model: str = "path"
    #: Extra timing margin applied when deriving the clock from the
    #: measured worst arrival (synthesized designs meet their period
    #: with slack; the retimed latches borrow from that slack).
    clock_margin: float = 1.05
    #: Keep master latches fixed (the default per Section V; the
    #: movable-master extension of Table IX lifts it).
    dont_retime_masters: bool = True


class SynthTool:
    """A loaded design inside the substrate 'tool'."""

    def __init__(
        self,
        netlist: Netlist,
        library: Library,
        options: Optional[ToolOptions] = None,
    ) -> None:
        self.netlist = netlist
        self.library = library
        self.options = options or ToolOptions()
        self._max_delay: Dict[str, float] = {}
        self._dont_touch: Set[str] = set()
        self.log: List[str] = []

    # -- timing ----------------------------------------------------------

    def derive_clock(self) -> ClockScheme:
        """Measure the worst path and build the Table-I clock recipe."""
        from repro.clocks import scheme_from_period
        from repro.sta import TimingEngine

        engine = TimingEngine(
            self.netlist, self.library, model=self.options.delay_model
        )
        worst = engine.worst_arrival()
        scheme = scheme_from_period(worst * self.options.clock_margin)
        self.log.append(
            f"derive_clock: worst arrival {worst:.4f}, "
            f"P = {scheme.max_path_delay:.4f}"
        )
        return scheme

    def report_timing(
        self, endpoint: Optional[str] = None, count: int = 1
    ) -> List[TimingPath]:
        """The tool's ``report_timing``: worst paths by endpoint."""
        from repro.sta import TimingEngine
        from repro.sta.paths import critical_paths

        engine = TimingEngine(
            self.netlist, self.library, model=self.options.delay_model
        )
        if endpoint is not None:
            return [worst_path(engine, endpoint)]
        return critical_paths(engine, count)

    # -- constraints ---------------------------------------------------------

    def set_max_delay(self, endpoint: str, limit: float) -> None:
        """Record a max-delay constraint for ``endpoint``."""
        self._max_delay[endpoint] = limit
        self.log.append(f"set_max_delay {limit:.4f} -to {endpoint}")

    def set_dont_touch(self, gate: str) -> None:
        """Protect ``gate`` from optimization moves."""
        self._dont_touch.add(gate)

    @property
    def max_delay_constraints(self) -> Dict[str, float]:
        """The recorded max-delay constraints (a copy)."""
        return dict(self._max_delay)

    # -- commands --------------------------------------------------------------

    def retime(
        self,
        circuit: TwoPhaseCircuit,
        resiliency_aware: bool = False,
        overhead: float = 0.0,
    ):
        """The built-in retiming command.

        ``resiliency_aware=False`` reproduces the stock tool behaviour
        (the base-retiming comparison point); ``True`` routes to the
        G-RAR engine, which is how the paper integrates its algorithm
        into the tool flow.
        """
        from repro.retime import base_retime, grar_retime

        started = time.perf_counter()
        if resiliency_aware:
            result = grar_retime(circuit, overhead=overhead)
        else:
            result = base_retime(circuit, overhead=overhead)
        self.log.append(
            f"retime resiliency_aware={resiliency_aware}: "
            f"{result.n_slaves} slaves in "
            f"{time.perf_counter() - started:.2f}s"
        )
        return result

    def compile_incremental(
        self,
        circuit: TwoPhaseCircuit,
        placement: SlavePlacement,
        size_only: bool = True,
        extra_limits: Optional[Mapping[str, float]] = None,
    ) -> SizingReport:
        """Incremental compile honouring the max-delay constraints."""
        if not size_only:
            raise NotImplementedError(
                "the substrate supports size-only incremental compiles"
            )
        limits = dict(self._max_delay)
        if extra_limits:
            limits.update(extra_limits)
        report = size_only_compile(circuit, placement, limits)
        self.log.append(
            f"compile_incremental: resized {report.n_resized} gates, "
            f"{len(report.unresolved)} endpoints unresolved"
        )
        return report
