"""Hold fixing by buffer insertion.

When a master is error-detecting, its sampling window extends ``phi1``
past the capturing edge, so next-cycle data racing through a short
path can corrupt it.  The standard fix — what a commercial tool's
``fix_hold`` does — pads the fast paths with buffers.  This engine
inserts the minimum buffers on each violating endpoint's fastest path
until the min-arrival bound holds (or the endpoint is declared
unfixable), re-running min-delay analysis between passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cells.library import Library
from repro.netlist.netlist import Gate, GateType, Netlist
from repro.sta.min_delay import MinDelayAnalysis


@dataclass
class HoldFixReport:
    """Outcome of a hold-fixing pass."""

    inserted: List[str] = field(default_factory=list)
    fixed_endpoints: List[str] = field(default_factory=list)
    unresolved: Dict[str, float] = field(default_factory=dict)
    area_delta: float = 0.0

    @property
    def n_buffers(self) -> int:
        """Number of buffers the pass added."""
        return len(self.inserted)


def _insert_buffer(
    netlist: Netlist,
    library: Library,
    driver: str,
    sink: str,
    name: str,
) -> None:
    """Splice a buffer into the ``driver -> sink`` connection.

    Only the targeted sink is rewired; the driver's other fanouts keep
    their direct connection (so max-delay impact stays local).
    """
    buffer_cell = library.pick_comb("BUF", 1).name
    netlist.add(
        Gate(name, GateType.COMB, (driver,), cell=buffer_cell)
    )
    netlist.rewire_fanin(sink, driver, name)


def fix_hold(
    netlist: Netlist,
    library: Library,
    required_min: float,
    endpoints: Optional[Set[str]] = None,
    max_buffers: int = 400,
    engine: str = "object",
) -> HoldFixReport:
    """Insert buffers until every endpoint's min arrival meets the bound.

    ``endpoints`` restricts the check (e.g. to error-detecting masters
    only — non-EDL masters never sample inside the window).
    ``engine`` picks the min-delay DP implementation (``"object"`` or
    ``"arena"``, mirroring ``--sta-engine``; bit-identical results).
    """
    report = HoldFixReport()
    if engine == "arena":
        from repro.core.engine import ArenaMinDelayAnalysis

        analysis = ArenaMinDelayAnalysis(netlist, library)
    elif engine == "object":
        analysis = MinDelayAnalysis(netlist, library)
    else:
        raise ValueError(
            f"unknown engine {engine!r} (use 'object' or 'arena')"
        )
    buffer_cell = library.pick_comb("BUF", 1)
    counter = 0

    initial = set(analysis.hold_violations(required_min))
    if endpoints is not None:
        initial &= set(endpoints)

    while counter < max_buffers:
        violations = analysis.hold_violations(required_min)
        if endpoints is not None:
            violations = {
                k: v for k, v in violations.items() if k in endpoints
            }
        if not violations:
            break
        endpoint = max(violations, key=violations.get)
        path = analysis.trace_min_path(endpoint)
        # Pad right before the endpoint: least impact on shared logic.
        driver, sink = path[-2], path[-1]
        name = f"hold_buf{counter}"
        counter += 1
        # The add + rewire emit change events; the analysis repairs
        # only the spliced connection's cone before its next query.
        _insert_buffer(netlist, library, driver, sink, name)
        report.inserted.append(name)
        report.area_delta += buffer_cell.area
    else:
        pass

    final = analysis.hold_violations(required_min)
    if endpoints is not None:
        final = {k: v for k, v in final.items() if k in endpoints}
    report.unresolved = final
    report.fixed_endpoints = sorted(initial - set(final))
    return report
