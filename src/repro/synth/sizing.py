"""Size-only incremental compile and EDL-avoidance rescue (Section VI).

After slave latches are repositioned, endpoints can overshoot their
arrival limits — the node-granular ``Vm`` region leaves up to one gate
delay of slack error, and the latch CK->Q / D->Q delays are not part of
the retiming graph.  The paper resolves this with a max-delay-
constrained incremental compile in which only gate sizing is allowed
(:func:`size_only_compile`).

Separately, resiliency-aware flows *rescue* masters from the resiliency
window by speeding their fan-in paths below ``Pi`` — the paper's
"small area penalty to speed-up the combinational logic and avoid more
EDLs" (:func:`rescue_endpoints`).  Rescues are cost-aware: area spent
must not exceed the EDL overhead saved.

Both passes work estimate-first: walk the violating path, rank upsizing
moves by first-order delay gain per area (resistance drop times driven
load, minus the extra input capacitance presented to the path's
driver), apply a batch, then re-time to verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.cells.cell import CombCell
from repro.latches.placement import SlavePlacement
from repro.latches.resilient import EPS, TwoPhaseCircuit
from repro.netlist.netlist import Netlist


class TrialMoves:
    """Speculative cell swaps with one-call rollback.

    Both :meth:`apply` and :meth:`rollback` go through
    ``Netlist.replace_cell``, so the timing engines receive matching
    change events and repair exactly the cone a trial touched — a
    rejected move costs two cone repairs (apply + undo), never a full
    recompute.  ``moves`` holds ``(gate, original_cell)`` pairs in
    application order.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.moves: List[Tuple[str, str]] = []

    def __bool__(self) -> bool:
        return bool(self.moves)

    def __iter__(self):
        return iter(self.moves)

    def apply(self, name: str, new_cell: str) -> None:
        """Swap ``name`` to ``new_cell``, remembering the original."""
        self.moves.append((name, self.netlist[name].cell))
        self.netlist.replace_cell(name, new_cell)

    def rollback(self) -> None:
        """Revert every recorded swap, newest first."""
        for name, old_cell in reversed(self.moves):
            self.netlist.replace_cell(name, old_cell)
        self.moves.clear()


@dataclass
class SizingReport:
    """What the incremental compile changed."""

    resized: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    passes: int = 0
    fixed_endpoints: int = 0
    #: Endpoints still violating after the compile gave up.
    unresolved: Dict[str, float] = field(default_factory=dict)
    area_delta: float = 0.0

    @property
    def n_resized(self) -> int:
        """Number of gates the compile resized."""
        return len(self.resized)

    @property
    def clean(self) -> bool:
        """True when every limit was met."""
        return not self.unresolved


@dataclass
class RescueReport:
    """Outcome of the cost-aware EDL-avoidance pass."""

    rescued: List[str] = field(default_factory=list)
    abandoned: List[str] = field(default_factory=list)
    resized: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    area_delta: float = 0.0


def _trace_violating_path(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    post: Mapping[str, float],
    endpoint: str,
) -> List[str]:
    """Walk the worst post-latch path into ``endpoint``.

    Stops once the trace crosses the slave latch: gates upstream of it
    do not contribute to the violating arrival (for floor-launched
    latches) or contribute through ``D^f`` which a separate trace would
    be needed for — the post-latch segment is where sizing pays off.
    """
    netlist = circuit.netlist
    launch_floor = circuit.scheme.slave_open + circuit.latch_ck_q

    def edge_arrival(driver: str, sink: str) -> float:
        if placement.edge_weight_after(netlist, driver, sink) == 1:
            return max(launch_floor, circuit.df(driver) + circuit.latch_d_q)
        return post.get(driver, 0.0)

    path: List[str] = []
    gate = netlist[endpoint]
    current = max(gate.fanins, key=lambda d: edge_arrival(d, endpoint))
    while True:
        path.append(current)
        node = netlist[current]
        if node.is_source:
            break
        best_driver = max(
            node.fanins, key=lambda d: edge_arrival(d, current)
        )
        if placement.edge_weight_after(netlist, best_driver, current) == 1:
            break  # crossed the slave latch
        current = best_driver
    return path


def _move_gain(
    circuit: TwoPhaseCircuit,
    name: str,
    cell: CombCell,
    candidate: CombCell,
) -> float:
    """First-order delay gain of swapping ``name`` to ``candidate``.

    Worst pin-to-pin delay at the gate's actual load, minus a penalty
    for the extra input capacitance presented to the gate's drivers
    (relevant for drive-ups; Vt swaps keep the same pins).
    """
    calc = circuit.engine.calculator
    load = calc.load(name)
    slew = 0.03
    current = max(cell.arc(p).max_delay(load, slew) for p in cell.inputs)
    proposed = max(
        candidate.arc(p).max_delay(load, slew) for p in candidate.inputs
    )
    gain = current - proposed
    added_cap = sum(candidate.pin_cap(p) for p in candidate.inputs) - sum(
        cell.pin_cap(p) for p in cell.inputs
    )
    if added_cap > 0:
        library = circuit.library
        driver_r = 0.0
        for fanin in circuit.netlist[name].fanins:
            fanin_gate = circuit.netlist[fanin]
            if fanin_gate.is_comb:
                fanin_cell = library[fanin_gate.cell]
                driver_r = max(
                    driver_r,
                    max(
                        fanin_cell.arc(p).rise.resistance
                        for p in fanin_cell.inputs
                    ),
                )
        gain -= driver_r * added_cap * 0.5
    return gain


def _upsize_moves(
    circuit: TwoPhaseCircuit, path: List[str]
) -> List[Tuple[float, float, str, str]]:
    """Candidate moves on a path: (gain, area_cost, gate, new_cell).

    Two levers per gate, like a commercial size-only compile: the next
    drive strength up (same Vt) and the low-Vt twin at the same drive.
    """
    library = circuit.library
    if library is None:
        return []
    moves: List[Tuple[float, float, str, str]] = []
    for name in path:
        gate = circuit.netlist[name]
        if not gate.is_comb:
            continue
        cell = library[gate.cell]
        if not isinstance(cell, CombCell):
            continue
        candidates = []
        stronger = library.next_drive_up(cell)
        if stronger is not None:
            candidates.append(stronger)
        lvt = library.vt_variant(cell, "lvt")
        if lvt is not None and lvt is not cell:
            candidates.append(lvt)
        for candidate in candidates:
            gain = _move_gain(circuit, name, cell, candidate)
            area_cost = candidate.area - cell.area
            if gain <= 0 or area_cost <= 0:
                continue
            moves.append((gain, area_cost, name, candidate.name))
    moves.sort(key=lambda m: m[0] / m[1], reverse=True)
    return moves


def _speed_up_endpoint(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    endpoint: str,
    target: float,
    budget: float,
    max_attempts: int = 4,
    safety: float = 1.3,
) -> Tuple[bool, float, TrialMoves]:
    """Estimate-apply-verify loop for one endpoint.

    Returns (met_target, area_spent, trial).  The caller decides
    whether to keep the trial's moves or ``rollback()`` them; either
    way the timing caches follow via change events — no explicit
    invalidation.
    """
    spent = 0.0
    trial = TrialMoves(circuit.netlist)
    for _ in range(max_attempts):
        arrivals, post = circuit.arrival_details(placement)
        overshoot = arrivals.get(endpoint, 0.0) - target
        if overshoot <= EPS:
            return True, spent, trial
        path = _trace_violating_path(circuit, placement, post, endpoint)
        moves = _upsize_moves(circuit, path)
        chosen: List[Tuple[float, float, str, str]] = []
        estimated = 0.0
        cost = 0.0
        for gain, area_cost, name, new_cell in moves:
            if spent + cost + area_cost > budget:
                continue
            chosen.append((gain, area_cost, name, new_cell))
            estimated += gain
            cost += area_cost
            if estimated >= safety * overshoot:
                break
        if not chosen:
            return False, spent, trial
        for _, area_cost, name, new_cell in chosen:
            trial.apply(name, new_cell)
            spent += area_cost
    arrivals = circuit.endpoint_arrivals(placement)
    return arrivals.get(endpoint, 0.0) - target <= EPS, spent, trial


def size_only_compile(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    limits: Mapping[str, float],
    max_passes: int = 80,
    endpoints_per_pass: int = 16,
) -> SizingReport:
    """Fix arrival-limit violations by upsizing gates only.

    ``limits`` maps endpoints to their latest legal arrival — the
    window close for error-detecting masters, ``Pi`` for masters that
    retiming promised would be non-error-detecting.
    """
    report = SizingReport()
    if circuit.library is None:
        raise ValueError("size-only compile needs a library")
    baseline_area = circuit.netlist.comb_area(circuit.library)
    active = dict(limits)
    hopeless: Dict[str, float] = {}

    initial_violations: Optional[Set[str]] = None
    for pass_index in range(max_passes):
        arrivals, post = circuit.arrival_details(placement)
        violations = {
            endpoint: arrivals[endpoint] - limit
            for endpoint, limit in active.items()
            if arrivals.get(endpoint, 0.0) > limit + EPS
        }
        if initial_violations is None:
            initial_violations = set(violations)
        if not violations:
            break
        worst_first = sorted(
            violations, key=violations.get, reverse=True
        )[:endpoints_per_pass]
        progressed = False
        for endpoint in worst_first:
            path = _trace_violating_path(circuit, placement, post, endpoint)
            moves = _upsize_moves(circuit, path)
            if not moves:
                hopeless[endpoint] = violations[endpoint]
                del active[endpoint]
                continue
            for _, _, name, new_cell in moves[:2]:
                report.resized.setdefault(
                    name, (circuit.netlist[name].cell, new_cell)
                )
                report.resized[name] = (
                    report.resized[name][0], new_cell
                )
                circuit.netlist.replace_cell(name, new_cell)
                progressed = True
        report.passes = pass_index + 1
        if not progressed:
            if not any(e in active for e in worst_first):
                continue
            break

    arrivals = circuit.endpoint_arrivals(placement)
    for endpoint, limit in limits.items():
        overshoot = arrivals.get(endpoint, 0.0) - limit
        if overshoot > EPS:
            report.unresolved[endpoint] = overshoot
    report.fixed_endpoints = len(
        (initial_violations or set()) - set(report.unresolved)
    )
    report.area_delta = (
        circuit.netlist.comb_area(circuit.library) - baseline_area
    )
    return report


def rescue_endpoints(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    candidates: List[str],
    target: float,
    budget_per_endpoint: float,
) -> RescueReport:
    """Pull endpoint arrivals below ``target`` where it is profitable.

    This is the mechanism behind the paper's near-zero EDL counts: a
    master whose fan-in can be sped below ``Pi`` for less area than its
    EDL overhead gets a plain latch instead.  Unprofitable attempts are
    reverted.  A successful rescue often drags sibling endpoints below
    the target for free (shared paths), so arrivals are refreshed
    between attempts and freebies are recorded as rescued.
    """
    report = RescueReport()
    if circuit.library is None:
        raise ValueError("rescue needs a library")
    if budget_per_endpoint <= 0:
        report.abandoned.extend(candidates)
        return report

    # Stage 1 — global attempt: near-critical paths share gates, so
    # one resize often rescues many masters; judge profitability on
    # the whole batch (total area spent vs total EDL overhead saved).
    # This is what makes high-overhead runs converge to the paper's
    # near-zero EDL counts while low-overhead runs keep some EDLs.
    batch = size_only_compile(
        circuit, placement, {e: target for e in candidates}
    )
    batch_rescued = [e for e in candidates if e not in batch.unresolved]
    if batch_rescued and batch.area_delta <= budget_per_endpoint * len(
        batch_rescued
    ):
        report.rescued = batch_rescued
        report.abandoned = list(batch.unresolved)
        report.resized = dict(batch.resized)
        report.area_delta = batch.area_delta
        return report
    # Unprofitable globally: revert and fall back to per-endpoint
    # greedy rescues under the individual budget.
    for name, (old_cell, _) in batch.resized.items():
        circuit.netlist.replace_cell(name, old_cell)

    arrivals = circuit.endpoint_arrivals(placement)
    queue = sorted(
        (e for e in candidates if arrivals.get(e, 0.0) > target + EPS),
        key=lambda e: arrivals[e],
    )
    stale = False
    for endpoint in queue:
        if stale:
            arrivals = circuit.endpoint_arrivals(placement)
            stale = False
        if arrivals.get(endpoint, 0.0) <= target + EPS:
            report.rescued.append(endpoint)  # freebie from earlier rescue
            continue
        met, spent, trial = _speed_up_endpoint(
            circuit, placement, endpoint, target, budget_per_endpoint
        )
        stale = bool(trial)
        if met:
            report.rescued.append(endpoint)
            report.area_delta += spent
            for name, old_cell in trial:
                first = report.resized.get(name, (old_cell, ""))[0]
                report.resized[name] = (first, circuit.netlist[name].cell)
        else:
            trial.rollback()
            report.abandoned.append(endpoint)
    return report


def speed_paths(
    circuit: TwoPhaseCircuit,
    limits: Mapping[str, float],
    max_passes: int = 120,
    endpoints_per_pass: int = 16,
) -> SizingReport:
    """Speed raw combinational paths below per-endpoint delay limits.

    Unlike :func:`size_only_compile`, which works on latch-aware
    arrivals for a fixed placement, this pass targets the *plain* path
    delays the retiming graph is built from: pulling an endpoint's
    worst path below ``Pi`` is what turns an always-error-detecting
    master into a retiming target ("speeding up the combinational
    logic to avoid more EDLs").  Retiming should be re-run afterwards.
    """
    report = SizingReport()
    if circuit.library is None:
        raise ValueError("speed_paths needs a library")
    baseline_area = circuit.netlist.comb_area(circuit.library)
    engine = circuit.engine
    endpoint_set = set(g.name for g in circuit.netlist.endpoints())

    def measure(node: str) -> float:
        # Endpoints are measured at their data input; internal gates
        # (constraint (6) fixes target the slave-latch drivers) at
        # their output arrival D^f.
        if node in endpoint_set:
            return engine.endpoint_arrival(node)
        return engine.forward_arrival(node)

    active = dict(limits)
    initial_violations: Optional[Set[str]] = None

    for pass_index in range(max_passes):
        violations = {}
        for endpoint, limit in active.items():
            arrival = measure(endpoint)
            if arrival > limit + EPS:
                violations[endpoint] = arrival - limit
        if initial_violations is None:
            initial_violations = set(violations)
        if not violations:
            break
        worst_first = sorted(
            violations, key=violations.get, reverse=True
        )[:endpoints_per_pass]
        progressed = False
        for endpoint in worst_first:
            path = _trace_plain_path(circuit, endpoint)
            moves = _upsize_moves(circuit, path)
            if not moves:
                del active[endpoint]
                continue
            for _, _, name, new_cell in moves[:2]:
                first = report.resized.get(
                    name, (circuit.netlist[name].cell, new_cell)
                )[0]
                report.resized[name] = (first, new_cell)
                circuit.netlist.replace_cell(name, new_cell)
                progressed = True
        report.passes = pass_index + 1
        if not progressed:
            if not active:
                break
            if not any(e in active for e in worst_first):
                continue
            break

    for endpoint, limit in limits.items():
        overshoot = measure(endpoint) - limit
        if overshoot > EPS:
            report.unresolved[endpoint] = overshoot
    report.fixed_endpoints = len(
        (initial_violations or set()) - set(report.unresolved)
    )
    report.area_delta = (
        circuit.netlist.comb_area(circuit.library) - baseline_area
    )
    return report


def _trace_plain_path(circuit: TwoPhaseCircuit, endpoint: str) -> List[str]:
    """Worst raw combinational path into ``endpoint`` (no latches).

    ``endpoint`` may also be an internal gate (constraint (6) fixes);
    its own delay then counts, so it joins the path."""
    netlist = circuit.netlist
    engine = circuit.engine
    path: List[str] = []
    gate = netlist[endpoint]
    if gate.is_comb:
        path.append(endpoint)
    current = max(gate.fanins, key=engine.forward_arrival)
    while True:
        path.append(current)
        node = netlist[current]
        if node.is_source:
            break
        current = max(
            node.fanins,
            key=lambda d: engine.forward_arrival(d)
            + engine.edge_delay(d, current),
        )
    return path


def rescue_paths(
    circuit: TwoPhaseCircuit,
    candidates: List[str],
    target: float,
    budget_per_endpoint: float,
) -> RescueReport:
    """Cost-aware batch path speedup (the G-RAR EDL-avoidance pass).

    Attempts to pull every candidate's worst path below ``target`` and
    keeps the result only if the total area spent stays below the EDL
    overhead saved (``budget_per_endpoint`` per endpoint that made it).
    Falls back to rescuing the cheapest individual endpoints when the
    batch as a whole is unprofitable.
    """
    report = RescueReport()
    if circuit.library is None:
        raise ValueError("rescue needs a library")
    if budget_per_endpoint <= 0 or not candidates:
        report.abandoned.extend(candidates)
        return report

    # Try shrinking prefixes of the cheapest candidates until a batch
    # pays for itself — at low overheads only a subset of masters is
    # worth rescuing, which is why the paper's G-RAR EDL counts drop
    # with growing c (Table VI).
    engine = circuit.engine
    by_cost = sorted(candidates, key=engine.endpoint_arrival)
    for fraction in (1.0, 0.75, 0.5, 0.25):
        subset = by_cost[: max(1, int(len(by_cost) * fraction))]
        batch = speed_paths(circuit, {e: target for e in subset})
        batch_rescued = [e for e in subset if e not in batch.unresolved]
        if batch_rescued and batch.area_delta <= budget_per_endpoint * len(
            batch_rescued
        ):
            report.rescued = batch_rescued
            report.abandoned = [
                e for e in candidates if e not in batch_rescued
            ]
            report.resized = dict(batch.resized)
            report.area_delta = batch.area_delta
            return report
        for name, (old_cell, _) in batch.resized.items():
            circuit.netlist.replace_cell(name, old_cell)

    engine = circuit.engine
    queue = sorted(candidates, key=engine.endpoint_arrival)
    consecutive_failures = 0
    for endpoint in queue:
        if engine.endpoint_arrival(endpoint) <= target + EPS:
            report.rescued.append(endpoint)  # freebie
            continue
        if consecutive_failures >= 6:
            # Candidates are sorted by difficulty; once several in a
            # row fail the budget, the rest will too.
            report.abandoned.append(endpoint)
            continue
        single = speed_paths(circuit, {endpoint: target}, max_passes=40)
        if endpoint not in single.unresolved and (
            single.area_delta <= budget_per_endpoint
        ):
            consecutive_failures = 0
            report.rescued.append(endpoint)
            report.area_delta += single.area_delta
            for name, pair in single.resized.items():
                first = report.resized.get(name, pair)[0]
                report.resized[name] = (first, pair[1])
        else:
            consecutive_failures += 1
            for name, (old_cell, _) in single.resized.items():
                circuit.netlist.replace_cell(name, old_cell)
            report.abandoned.append(endpoint)
    return report
