"""Flat-array core: the CSR netlist arena and its vectorized engines.

See :mod:`repro.core.arena` for the representation and the bit-parity
contract, and :mod:`repro.core.engine` for the drop-in
:class:`~repro.sta.engine.TimingEngine` replacement behind the
``--sta-engine`` switch.
"""

from repro.core.arena import (
    NetlistArena,
    arena_fingerprint,
    clear_arena_cache,
    compile_arena,
)
from repro.core.engine import (
    STA_ENGINES,
    ArenaMinDelayAnalysis,
    ArenaTimingEngine,
    make_timing_engine,
)

__all__ = [
    "NetlistArena",
    "arena_fingerprint",
    "clear_arena_cache",
    "compile_arena",
    "STA_ENGINES",
    "ArenaMinDelayAnalysis",
    "ArenaTimingEngine",
    "make_timing_engine",
]
