"""Flat-array netlist arena: the vectorized core representation.

The object engines (:class:`~repro.sta.engine.TimingEngine`,
:class:`~repro.sta.min_delay.MinDelayAnalysis`) walk per-gate Python
dicts; at Table-I scale that is fine, but the ROADMAP's 10-100x
circuits spend almost all of their time in the per-node DP loops.
This module compiles a netlist + delay calculator pair **once** into a
:class:`NetlistArena`: int-indexed gates, CSR-style per-arc record
arrays grouped by logic level, and the pre-pulled arc delays — then
runs the forward/backward max-delay DP (and the min-delay DP) as a
handful of NumPy reductions per level.

Bit-parity contract
-------------------

The arena kernels replay the *exact* float operations of the object
engines, in an order that cannot change the result:

* every arc delay is obtained from the same calculator calls
  (``edge_delay`` / ``transition_edges``) the object DP makes, so the
  per-candidate floats are identical;
* ``max``/``min`` over non-NaN float64 candidates is
  order-independent, so per-level ``reduceat`` grouping is safe;
* NaN candidates — which the object DP skips while raising a per-node
  ``saw_nan`` flag — are masked to ±inf before the reduction and the
  flag is re-derived per group, reproducing the object's
  NaN-poisoning rules (a node whose every candidate is NaN becomes
  NaN; a NaN value then propagates downstream by arithmetic);
* the object engine's :class:`~repro.errors.TimingError` paths
  (missing forward arrival, unreachable node) are raised for the
  topologically-first offending node.  The netlist's Kahn
  levelization dequeues in non-decreasing level order, so processing
  levels in order and picking the smallest topo index within a level
  reproduces the object engine's error choice.

Compilation is content-addressed: the canonical fingerprint
(:func:`repro.store.arena_fingerprint`) covers the gate list (names,
types, cells, fanins in order), the calculator class and its
load-model parameters, and the library *content*.  Compiled arenas
live in the ambient :class:`~repro.store.ArtifactStore` (namespace
``"arena"``): a memory LRU keeps recently-used arenas hot so sibling
engines over equal netlists share one compile, and a persistent store
shares compiles across processes and CLI invocations.

Cell swaps and rewires do not need a recompile:
:meth:`NetlistArena.with_patched_delays` re-pulls only the arcs
incident to the dirty gates (the same eviction rule the calculators
use) and returns a new arena sharing every untouched array — cached
pristine arenas are never mutated.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import metrics
from repro.errors import TimingError
from repro.netlist.netlist import GateType, Netlist
from repro.sta.delay_models import (
    DelayCalculator,
    PathBasedCalculator,
)
from repro.store import ArtifactStore, arena_fingerprint, get_store

NEG_INF = float("-inf")
POS_INF = float("inf")
NAN = float("nan")

#: Per-level record block: (record_lo, record_hi, group starts relative
#: to record_lo, group target indices, ...) — see the builders below.
_Block = Tuple


def _group_starts(keys: np.ndarray) -> np.ndarray:
    """Start positions of runs of equal values in ``keys``."""
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.flatnonzero(np.r_[True, keys[1:] != keys[:-1]])


class _MinDelayNaN(Exception):
    """Internal: a NaN min-arc delay was seen at compile time.

    Python's ``min()`` over NaN candidates is order-dependent, so the
    vectorized min DP cannot reproduce it; callers fall back to the
    object analysis (:class:`~repro.core.engine.ArenaMinDelayAnalysis`
    catches this).
    """


class NetlistArena:
    """Compiled flat-array form of one netlist + calculator pair.

    Instances are immutable once compiled (and shared through the
    content-addressed cache); delay updates go through
    :meth:`with_patched_delays`, which returns a new arena.
    """

    def __init__(self, netlist: Netlist, calculator: DelayCalculator,
                 fingerprint: str) -> None:
        self.fingerprint = fingerprint
        self.rf = isinstance(calculator, PathBasedCalculator)

        order = tuple(netlist.topo_order())
        self.names: Tuple[str, ...] = order
        self.index: Dict[str, int] = {n: i for i, n in enumerate(order)}
        self.n = len(order)
        index = self.index

        is_source = np.zeros(self.n, dtype=bool)
        is_comb = np.zeros(self.n, dtype=bool)
        is_output = np.zeros(self.n, dtype=bool)
        level = np.zeros(self.n, dtype=np.int64)
        for i, name in enumerate(order):
            gate = netlist[name]
            if gate.is_source:
                is_source[i] = True
            elif gate.gtype is GateType.OUTPUT:
                is_output[i] = True
            else:
                is_comb[i] = True
            if not gate.is_source:
                level[i] = 1 + max(level[index[d]] for d in gate.fanins)
        self.is_source = is_source
        self.is_comb = is_comb
        self.is_output = is_output
        self.level = level
        self.max_level = int(level.max()) if self.n else 0

        # Names/indices of the gates the forward dict covers (the
        # object DP skips OUTPUT markers).
        keep = ~is_output
        self.fwd_idx = np.flatnonzero(keep)
        self.fwd_names: Tuple[str, ...] = tuple(
            order[i] for i in self.fwd_idx.tolist()
        )
        self.src_idx = np.flatnonzero(is_source)

        #: comb node indices, ascending (== non-decreasing level).
        self._comb_idx = np.flatnonzero(is_comb)
        self._comb_levels = level[self._comb_idx]

        # Per-level list of (gate topo idx, gate name, first OUTPUT
        # driver name) — nodes the object DP raises a missing-arrival
        # TimingError for.  Their arcs carry no records.
        self._bad_fanin: Dict[int, List[Tuple[int, str, str]]] = {}

        self._build_edges(netlist, calculator)

    # -- compilation ---------------------------------------------------

    def _dedup_fanins(self, fanins: Sequence[str]) -> List[str]:
        seen = set()
        out = []
        for d in fanins:
            if d not in seen:
                seen.add(d)
                out.append(d)
        return out

    def _build_edges(self, netlist: Netlist,
                     calc: DelayCalculator) -> None:
        index = self.index
        is_output = self.is_output
        # -- collect unique (driver, sink) pairs ------------------------
        f_src: List[int] = []      # forward: comb sinks, no OUTPUT drivers
        f_dst: List[int] = []
        f_pairs: List[Tuple[str, str]] = []
        b_src: List[int] = []      # backward: every sink
        b_dst: List[int] = []
        b_end: List[bool] = []
        b_pairs: List[Optional[Tuple[str, str]]] = []
        for i, name in enumerate(self.names):
            gate = netlist[name]
            if not gate.fanins:
                continue
            endpoint = gate.gtype in (GateType.OUTPUT, GateType.DFF)
            comb = gate.is_comb
            for dname in self._dedup_fanins(gate.fanins):
                di = index[dname]
                b_src.append(di)
                b_dst.append(i)
                b_end.append(endpoint)
                b_pairs.append(None if endpoint else (dname, name))
                if comb:
                    if is_output[di]:
                        lvl = int(self.level[i])
                        entry = (i, name, dname)
                        bad = self._bad_fanin.setdefault(lvl, [])
                        # Keep only the first OUTPUT driver per gate
                        # (fanins order), matching the object's raise.
                        if not any(e[0] == i for e in bad):
                            bad.append(entry)
                        continue
                    f_src.append(di)
                    f_dst.append(i)
                    f_pairs.append((dname, name))
        for lst in self._bad_fanin.values():
            lst.sort()

        # -- forward (scalar or rise/fall) ------------------------------
        self.f_src = np.asarray(f_src, dtype=np.int64)
        self.f_dst = np.asarray(f_dst, dtype=np.int64)
        if self.rf:
            self._build_rf(f_pairs, calc)
        else:
            self.f_delay = np.array(
                [calc.edge_delay(d, s) for d, s in f_pairs],
                dtype=np.float64,
            )
            # records were appended sink-major in topo order, so they
            # are already sorted by (level[dst], dst).
            self._fwd_pos = {
                (index[d], index[s]): p
                for p, (d, s) in enumerate(f_pairs)
            }
            self.f_blocks = self._forward_blocks(self.f_dst)

        # -- backward ----------------------------------------------------
        bs = np.asarray(b_src, dtype=np.int64)
        bd = np.asarray(b_dst, dtype=np.int64)
        be = np.asarray(b_end, dtype=bool)
        perm = np.lexsort((bd, -bs))  # src descending, dst ascending
        self.b_src = bs[perm]
        self.b_dst = bd[perm]
        self.b_end = be[perm]
        delays = np.zeros(len(b_pairs), dtype=np.float64)
        bwd_pos: Dict[Tuple[int, int], int] = {}
        for new_pos, old_pos in enumerate(perm.tolist()):
            pair = b_pairs[old_pos]
            if pair is None:
                continue
            delays[new_pos] = calc.edge_delay(pair[0], pair[1])
            bwd_pos[(index[pair[0]], index[pair[1]])] = new_pos
        self.b_delay = delays
        self._bwd_pos = bwd_pos
        self.b_blocks = self._backward_blocks()

    def _build_rf(self, f_pairs: List[Tuple[str, str]],
                  calc: DelayCalculator) -> None:
        """Transition records of the path model, grouped by (dst, out).

        ``transition_edges`` is pure in the loads/slews the calculator
        caches, so pre-pulling the triples here yields the identical
        floats the object DP recomputes per node.
        """
        index = self.index
        src: List[int] = []
        dst: List[int] = []
        t_in: List[bool] = []
        t_out: List[bool] = []
        dly: List[float] = []
        for dname, sname in f_pairs:
            di, si = index[dname], index[sname]
            for in_rising, out_rising, delay in calc.transition_edges(
                dname, sname
            ):
                src.append(di)
                dst.append(si)
                t_in.append(in_rising)
                t_out.append(out_rising)
                dly.append(delay)
        seq = np.arange(len(src), dtype=np.int64)
        a_src = np.asarray(src, dtype=np.int64)
        a_dst = np.asarray(dst, dtype=np.int64)
        a_out = np.asarray(t_out, dtype=bool)
        # (dst, out, src, original order): groups are contiguous per
        # (dst, out) for the reduceat scatter, and per (src, dst, out)
        # for delay patching.
        perm = np.lexsort((seq, a_src, a_out, a_dst))
        self.t_src = a_src[perm]
        self.t_dst = a_dst[perm]
        self.t_in = np.asarray(t_in, dtype=bool)[perm]
        self.t_out = a_out[perm]
        self.t_delay = np.asarray(dly, dtype=np.float64)[perm]
        # pair -> (rise_start, rise_count, fall_start, fall_count)
        rf_pos: Dict[Tuple[int, int], List[int]] = {}
        key = (
            self.t_dst * 4
            + self.t_out.astype(np.int64) * 2
        ) * (self.n + 1) + self.t_src
        seg = _group_starts(key)
        seg_end = np.r_[seg[1:], len(key)]
        for s, e in zip(seg.tolist(), seg_end.tolist()):
            pair = (int(self.t_src[s]), int(self.t_dst[s]))
            entry = rf_pos.setdefault(pair, [0, 0, 0, 0])
            if self.t_out[s]:
                entry[0], entry[1] = s, e - s
            else:
                entry[2], entry[3] = s, e - s
        self._rf_pos = rf_pos
        self.t_blocks = self._forward_blocks(
            self.t_dst,
            group_key=self.t_dst * 2 + self.t_out.astype(np.int64),
            group_out=self.t_out,
        )

    def _forward_blocks(
        self,
        dst: np.ndarray,
        group_key: Optional[np.ndarray] = None,
        group_out: Optional[np.ndarray] = None,
    ) -> List[_Block]:
        """Per-level blocks for a forward (sink-major ascending) table.

        Each block is ``(lo, hi, rel_starts, grp_dst, grp_out, nodes,
        bad)`` where records ``[lo:hi]`` belong to one logic level,
        ``rel_starts`` are reduceat group starts relative to ``lo``,
        ``grp_dst`` the per-group target node, ``grp_out`` the target
        transition state (rf only, else None), ``nodes`` the comb node
        indices of the level and ``bad`` its missing-arrival entries.
        """
        keys = dst if group_key is None else group_key
        starts = _group_starts(keys)
        group_levels = self.level[dst[starts]] if starts.size else (
            np.empty(0, dtype=np.int64)
        )
        blocks: List[_Block] = []
        n_rec = len(dst)
        for lvl in range(1, self.max_level + 1):
            g0, g1 = np.searchsorted(group_levels, [lvl, lvl + 1])
            c0, c1 = np.searchsorted(self._comb_levels, [lvl, lvl + 1])
            bad = self._bad_fanin.get(lvl, [])
            if g0 == g1 and c0 == c1 and not bad:
                continue
            if g0 < g1:
                lo = int(starts[g0])
                hi = int(starts[g1]) if g1 < len(starts) else n_rec
                rel = starts[g0:g1] - lo
                grp_dst = dst[starts[g0:g1]]
                grp_out = (
                    group_out[starts[g0:g1]]
                    if group_out is not None else None
                )
            else:
                lo = hi = 0
                rel = np.empty(0, dtype=np.int64)
                grp_dst = np.empty(0, dtype=np.int64)
                grp_out = (
                    np.empty(0, dtype=bool)
                    if group_out is not None else None
                )
            nodes = self._comb_idx[c0:c1]
            blocks.append((lo, hi, rel, grp_dst, grp_out, nodes, bad))
        return blocks

    def _backward_blocks(self) -> List[_Block]:
        """Per-level blocks of the source-major descending table."""
        starts = _group_starts(self.b_src)
        blocks: List[_Block] = []
        if starts.size == 0:
            return blocks
        glev = self.level[self.b_src[starts]]  # non-increasing
        lvl_starts = _group_starts(glev)
        n_groups = len(starts)
        n_rec = len(self.b_src)
        for k, gs in enumerate(lvl_starts.tolist()):
            ge = (
                int(lvl_starts[k + 1])
                if k + 1 < len(lvl_starts) else n_groups
            )
            lo = int(starts[gs])
            hi = int(starts[ge]) if ge < n_groups else n_rec
            blocks.append(
                (lo, hi, starts[gs:ge] - lo, self.b_src[starts[gs:ge]])
            )
        return blocks

    # -- delay patching -------------------------------------------------

    def with_patched_delays(
        self,
        netlist: Netlist,
        calc: DelayCalculator,
        dirty: Iterable[str],
    ) -> Optional["NetlistArena"]:
        """A new arena with the arcs incident to ``dirty`` re-pulled.

        Mirrors the calculators' own eviction rule: after a cell swap
        or rewire, only arcs whose driver or sink is dirty can change.
        Returns ``None`` when the arena must be recompiled instead (an
        unknown gate, or a swap that changed a cell's arc structure).
        """
        pairs = set()
        for g in dirty:
            if g not in netlist:
                return None
            gi = self.index.get(g)
            if gi is None:
                return None
            gate = netlist[g]
            for d in self._dedup_fanins(gate.fanins):
                di = self.index.get(d)
                if di is None:
                    return None
                pairs.add((di, gi, d, g))
            for u in netlist.fanouts(g):
                ui = self.index.get(u)
                if ui is None:
                    return None
                pairs.add((gi, ui, g, u))
        if not pairs:
            return self
        clone = self._clone_for_patch()
        for di, si, dname, sname in pairs:
            gate = netlist[sname]
            if not gate.is_comb:
                continue  # endpoint arcs carry no delay
            if self.rf:
                if not clone._patch_rf(di, si, dname, sname, calc):
                    return None
            else:
                pos = clone._fwd_pos.get((di, si))
                if pos is None:
                    if not self.is_output[di]:
                        return None
                    continue  # missing-arrival arc: never had records
                clone.f_delay[pos] = calc.edge_delay(dname, sname)
            bpos = clone._bwd_pos.get((di, si))
            if bpos is not None:
                clone.b_delay[bpos] = calc.edge_delay(dname, sname)
        metrics.count("arena.patch.arcs", float(len(pairs)))
        return clone

    def _clone_for_patch(self) -> "NetlistArena":
        clone = object.__new__(NetlistArena)
        clone.__dict__.update(self.__dict__)
        # Copy-on-write: only the delay payload arrays may change.
        if self.rf:
            clone.t_delay = self.t_delay.copy()
            clone.t_in = self.t_in.copy()
        else:
            clone.f_delay = self.f_delay.copy()
        clone.b_delay = self.b_delay.copy()
        return clone

    def _patch_rf(self, di: int, si: int, dname: str, sname: str,
                  calc: DelayCalculator) -> bool:
        entry = self._rf_pos.get((di, si))
        if entry is None:
            # only legitimate when the arc never had records
            return bool(self.is_output[di])
        triples = calc.transition_edges(dname, sname)
        rise = [(i, d) for i, o, d in triples if o]
        fall = [(i, d) for i, o, d in triples if not o]
        rs, rc, fs, fc = entry
        if len(rise) != rc or len(fall) != fc:
            return False  # arc structure changed: recompile
        for off, (in_rising, delay) in enumerate(rise):
            self.t_in[rs + off] = in_rising
            self.t_delay[rs + off] = delay
        for off, (in_rising, delay) in enumerate(fall):
            self.t_in[fs + off] = in_rising
            self.t_delay[fs + off] = delay
        return True

    # -- kernels ---------------------------------------------------------

    def _source_vector(
        self, offsets: Dict[str, float], fill: float
    ) -> np.ndarray:
        arr = np.full(self.n, fill, dtype=np.float64)
        arr[self.src_idx] = 0.0
        for name, off in offsets.items():
            i = self.index.get(name)
            if i is not None and self.is_source[i]:
                arr[i] = off
        return arr

    def _raise_forward_error(
        self,
        bad: List[Tuple[int, str, str]],
        err_nodes: np.ndarray,
        rf_style: bool,
        fanin_lookup=None,
    ) -> None:
        """Raise the object engine's error for the topo-first offender.

        The missing-arrival error wins a tie (the object DP raises it
        inside the fanin loop, before the unreachable-gate check).
        """
        a_idx = bad[0][0] if bad else self.n + 1
        b_idx = int(err_nodes[0]) if err_nodes.size else self.n + 1
        if a_idx <= b_idx:
            _, name, driver = bad[0]
            raise TimingError(
                f"gate {name!r} reads {driver!r}, which has "
                f"no forward arrival (endpoint or outside "
                f"the combinational cloud)",
                payload={"gate": name, "fanin": driver},
            )
        name = self.names[b_idx]
        if rf_style:
            fanins = list(fanin_lookup(name)) if fanin_lookup else []
            raise TimingError(
                f"gate {name!r} is unreachable under the "
                f"rise/fall transition edges of its fanins "
                f"{fanins}",
                payload={"gate": name, "fanins": fanins},
            )
        raise TimingError(
            f"gate {name!r} has no fanins to propagate "
            f"arrivals from",
            payload={"gate": name},
        )

    def forward_scalar(
        self, offsets: Dict[str, float]
    ) -> np.ndarray:
        """Levelized scalar max-arrival DP (gate / fixed models)."""
        arr = self._source_vector(offsets, NEG_INF)
        f_src, f_delay = self.f_src, self.f_delay
        with np.errstate(invalid="ignore"):
            for lo, hi, rel, grp_dst, _, nodes, bad in self.f_blocks:
                gnan = None
                if hi > lo:
                    cand = arr[f_src[lo:hi]] + f_delay[lo:hi]
                    nanm = np.isnan(cand)
                    if nanm.any():
                        cand = np.where(nanm, NEG_INF, cand)
                        gnan = np.logical_or.reduceat(nanm, rel)
                    arr[grp_dst] = np.maximum.reduceat(cand, rel)
                if nodes.size == 0 and not bad:
                    continue
                vals = arr[nodes]
                dead = vals == NEG_INF
                if not dead.any() and not bad:
                    continue
                saw = np.zeros(nodes.size, dtype=bool)
                if gnan is not None:
                    saw[np.searchsorted(nodes, grp_dst)] = gnan
                arr[nodes[dead & saw]] = NAN
                err_nodes = nodes[dead & ~saw]
                if bad or err_nodes.size:
                    self._raise_forward_error(
                        bad, err_nodes, rf_style=False
                    )
        return arr

    def forward_rf(
        self,
        offsets: Dict[str, float],
        fanin_lookup=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Two-state rise/fall max-arrival DP (path model).

        ``fanin_lookup(name)`` returns ``sorted(set(fanins))`` of a
        gate — only consulted to phrase the unreachable-gate error
        exactly like the object engine.
        """
        rise = self._source_vector(offsets, NEG_INF)
        fall = rise.copy()
        t_src, t_in, t_delay = self.t_src, self.t_in, self.t_delay
        with np.errstate(invalid="ignore"):
            for lo, hi, rel, grp_dst, grp_out, nodes, bad in self.t_blocks:
                gnan = None
                if hi > lo:
                    src = t_src[lo:hi]
                    base = np.where(
                        t_in[lo:hi], rise[src], fall[src]
                    )
                    invalid = base == NEG_INF
                    cand = base + t_delay[lo:hi]
                    nanm = np.isnan(cand) & ~invalid
                    masked = invalid | nanm
                    if masked.any():
                        cand = np.where(masked, NEG_INF, cand)
                    if nanm.any():
                        gnan = np.logical_or.reduceat(nanm, rel)
                    red = np.maximum.reduceat(cand, rel)
                    rise[grp_dst[grp_out]] = red[grp_out]
                    fall[grp_dst[~grp_out]] = red[~grp_out]
                if nodes.size == 0 and not bad:
                    continue
                dead = (
                    (rise[nodes] == NEG_INF) & (fall[nodes] == NEG_INF)
                )
                if not dead.any() and not bad:
                    continue
                saw = np.zeros(nodes.size, dtype=bool)
                if gnan is not None:
                    pos = np.searchsorted(nodes, grp_dst)
                    np.logical_or.at(saw, pos, gnan)
                nan_nodes = nodes[dead & saw]
                rise[nan_nodes] = NAN
                fall[nan_nodes] = NAN
                err_nodes = nodes[dead & ~saw]
                if bad or err_nodes.size:
                    self._raise_forward_error(
                        bad, err_nodes, rf_style=True,
                        fanin_lookup=fanin_lookup,
                    )
        return rise, fall

    def backward_any(self) -> np.ndarray:
        """Levelized max delay-to-any-endpoint DP (reverse order)."""
        res = np.full(self.n, NEG_INF, dtype=np.float64)
        b_dst, b_delay, b_end = self.b_dst, self.b_delay, self.b_end
        with np.errstate(invalid="ignore"):
            for lo, hi, rel, grp_src in self.b_blocks:
                down = res[b_dst[lo:hi]]
                end = b_end[lo:hi]
                cand = np.where(end, 0.0, b_delay[lo:hi] + down)
                masked = (~end & (down == NEG_INF)) | np.isnan(cand)
                if masked.any():
                    cand = np.where(masked, NEG_INF, cand)
                res[grp_src] = np.maximum.reduceat(cand, rel)
        return res

    def forward_dict(self, arr: np.ndarray) -> Dict[str, float]:
        """The object engine's forward dict (OUTPUT markers skipped)."""
        return dict(zip(self.fwd_names, arr[self.fwd_idx].tolist()))

    def full_dict(self, arr: np.ndarray) -> Dict[str, float]:
        """A per-gate dict over every node (backward tables)."""
        return dict(zip(self.names, arr.tolist()))


# -- min-delay arrays (compiled per MinDelayAnalysis, not cached) -----------


class MinDelayTable:
    """Flat-array form of the min-delay DP over one netlist.

    Built from a :class:`~repro.sta.min_delay.MinDelayAnalysis`'s own
    ``min_edge_delay`` so the arc floats are identical; raises
    :class:`_MinDelayNaN` when any min delay is NaN (Python's ``min``
    over NaN is order-dependent — the caller falls back to the object
    DP in that case).
    """

    def __init__(self, netlist: Netlist, analysis) -> None:
        arena_like = _MinTopology(netlist)
        self._topo = arena_like
        src: List[int] = []
        dst: List[int] = []
        dly: List[float] = []
        index = arena_like.index
        self._bad_fanin: Dict[int, List[Tuple[int, str, str]]] = {}
        for i, name in enumerate(arena_like.names):
            gate = netlist[name]
            if not gate.is_comb:
                continue
            seen = set()
            for dname in gate.fanins:
                if dname in seen:
                    continue
                seen.add(dname)
                di = index[dname]
                if arena_like.is_output[di]:
                    lvl = int(arena_like.level[i])
                    bad = self._bad_fanin.setdefault(lvl, [])
                    if not any(e[0] == i for e in bad):
                        bad.append((i, name, dname))
                    continue
                src.append(di)
                dst.append(i)
                dly.append(analysis.min_edge_delay(dname, name))
        for lst in self._bad_fanin.values():
            lst.sort()
        self.m_src = np.asarray(src, dtype=np.int64)
        self.m_dst = np.asarray(dst, dtype=np.int64)
        self.m_delay = np.asarray(dly, dtype=np.float64)
        if bool(np.isnan(self.m_delay).any()):
            raise _MinDelayNaN()
        self.m_blocks = self._blocks()

    def _blocks(self) -> List[_Block]:
        topo = self._topo
        starts = _group_starts(self.m_dst)
        group_levels = (
            topo.level[self.m_dst[starts]]
            if starts.size else np.empty(0, dtype=np.int64)
        )
        blocks: List[_Block] = []
        n_rec = len(self.m_dst)
        for lvl in range(1, topo.max_level + 1):
            g0, g1 = np.searchsorted(group_levels, [lvl, lvl + 1])
            bad = self._bad_fanin.get(lvl, [])
            if g0 == g1 and not bad:
                continue
            if g0 < g1:
                lo = int(starts[g0])
                hi = int(starts[g1]) if g1 < len(starts) else n_rec
                rel = starts[g0:g1] - lo
                grp_dst = self.m_dst[starts[g0:g1]]
            else:
                lo = hi = 0
                rel = np.empty(0, dtype=np.int64)
                grp_dst = np.empty(0, dtype=np.int64)
            blocks.append((lo, hi, rel, grp_dst, bad))
        return blocks

    def forward_min(self) -> Dict[str, float]:
        """Levelized min-arrival DP; sources launch at 0."""
        topo = self._topo
        arr = np.full(topo.n, POS_INF, dtype=np.float64)
        arr[topo.src_idx] = 0.0
        m_src, m_delay = self.m_src, self.m_delay
        for lo, hi, rel, grp_dst, bad in self.m_blocks:
            if bad:
                _, name, driver = bad[0]
                raise TimingError(
                    f"gate {name!r} reads {driver!r}, which has "
                    f"no min arrival (endpoint or outside the "
                    f"combinational cloud)",
                    payload={"gate": name, "fanin": driver},
                )
            if hi > lo:
                cand = arr[m_src[lo:hi]] + m_delay[lo:hi]
                arr[grp_dst] = np.minimum.reduceat(cand, rel)
        keep = ~topo.is_output
        idx = np.flatnonzero(keep)
        return dict(
            zip((topo.names[i] for i in idx.tolist()), arr[idx].tolist())
        )


class _MinTopology:
    """The index/level skeleton shared by the min-delay table."""

    def __init__(self, netlist: Netlist) -> None:
        order = tuple(netlist.topo_order())
        self.names = order
        self.index = {n: i for i, n in enumerate(order)}
        self.n = len(order)
        self.is_output = np.zeros(self.n, dtype=bool)
        is_source = np.zeros(self.n, dtype=bool)
        self.level = np.zeros(self.n, dtype=np.int64)
        for i, name in enumerate(order):
            gate = netlist[name]
            if gate.is_source:
                is_source[i] = True
            elif gate.gtype is GateType.OUTPUT:
                self.is_output[i] = True
            if not gate.is_source:
                self.level[i] = 1 + max(
                    self.level[self.index[d]] for d in gate.fanins
                )
        self.src_idx = np.flatnonzero(is_source)
        self.max_level = int(self.level.max()) if self.n else 0


# -- the content-addressed compile cache ------------------------------------

#: The artifact-store namespace compiled arenas live in.  The LRU
#: capacity is per-store (``ArtifactStore.set_capacity(NAMESPACE, n)``
#: / the CLI's ``--store-capacity``), defaulting to the 8 entries the
#: legacy module-level cache kept.
NAMESPACE = "arena"


def compile_arena(
    netlist: Netlist, calculator: DelayCalculator,
    store: Optional[ArtifactStore] = None,
) -> NetlistArena:
    """Compile (or fetch from the ambient artifact store) the arena.

    Arenas are numpy arrays plus plain dicts, so a persistent store
    shares compiles across processes and CLI invocations; the
    fingerprint hashes the library *content*, making the key valid
    outside the producing process.  Emits the legacy
    ``arena.compile.{hits,misses}`` counters alongside the store's
    ``store.arena.*`` family.
    """
    store = store if store is not None else get_store()
    fp = arena_fingerprint(netlist, calculator)
    cached = store.get(NAMESPACE, fp)
    if cached is not None:
        metrics.count("arena.compile.hits")
        return cached
    metrics.count("arena.compile.misses")
    with metrics.stage_timer("arena.compile"):
        arena = NetlistArena(netlist, calculator, fp)
    store.put(NAMESPACE, fp, arena)
    return arena


def clear_arena_cache() -> None:
    """Drop the in-memory arena tier (tests / memory pressure).  Disk
    artifacts of a persistent store survive — clear those with
    ``ArtifactStore.clear(NAMESPACE)`` / ``repro cache clear``."""
    get_store().clear_memory(NAMESPACE)
