"""Arena-backed drop-in engines for the STA queries.

:class:`ArenaTimingEngine` subclasses the object
:class:`~repro.sta.engine.TimingEngine` and replaces only its three
full-DP passes (scalar forward, rise/fall forward, backward-to-any)
with the vectorized arena kernels; every query method, the
event-driven cone repair, the per-endpoint backward scan and the
error taxonomy are inherited unchanged.  The result dicts the kernels
produce are bit-identical to the object DP (see
:mod:`repro.core.arena` for the parity argument), so the two engines
are interchangeable behind the ``--sta-engine`` switch exactly like
``--sta-mode`` and ``--sim-backend``.

Cache protocol:

* compile lazily on the first full DP, through the content-addressed
  arena LRU (``arena.compile.hits``/``misses`` counters);
* non-structural events (cell swaps) accumulate dirty gates and are
  applied as scoped delay patches — the pristine cached arena is
  never mutated;
* structural events and :meth:`invalidate` drop the arena; the next
  DP recompiles (a changed netlist hashes to a new cache key anyway).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from repro.core.arena import (
    MinDelayTable,
    NetlistArena,
    _MinDelayNaN,
    compile_arena,
)
from repro.errors import TimingError
from repro.netlist.netlist import NetlistEvent
from repro.sta.delay_models import PathBasedCalculator
from repro.sta.engine import TimingEngine
from repro.sta.min_delay import MinDelayAnalysis

#: Valid values of the ``--sta-engine`` switch.
STA_ENGINES = ("object", "arena")


class ArenaTimingEngine(TimingEngine):
    """The flat-array timing engine (bit-identical to the object one)."""

    def __init__(self, *args, **kwargs) -> None:
        # Must exist before super().__init__ subscribes to the netlist.
        self._arena_obj: Optional[NetlistArena] = None
        self._arena_dirty: Set[str] = set()
        super().__init__(*args, **kwargs)

    # -- arena lifecycle ----------------------------------------------

    def on_netlist_event(self, event: NetlistEvent) -> None:
        if event.structural:
            # Connectivity changed: the CSR layout is stale.
            self._arena_obj = None
            self._arena_dirty.clear()
        elif self._arena_obj is not None:
            self._arena_dirty |= event.dirty_gates(self.netlist)
        super().on_netlist_event(event)

    def invalidate(self) -> None:
        self._arena_obj = None
        self._arena_dirty.clear()
        super().invalidate()

    def _arena(self) -> NetlistArena:
        """The compiled arena, patched up to date with pending swaps."""
        if self._arena_obj is None:
            self._arena_obj = compile_arena(self.netlist, self.calculator)
            self._arena_dirty.clear()
        elif self._arena_dirty:
            dirty = self._arena_dirty
            self._arena_dirty = set()
            patched = self._arena_obj.with_patched_delays(
                self.netlist, self.calculator, dirty
            )
            if patched is None:
                self._arena_obj = compile_arena(
                    self.netlist, self.calculator
                )
            else:
                self._arena_obj = patched
        return self._arena_obj

    # -- vectorized full DPs ------------------------------------------

    def _compute_forward(self) -> Dict[str, float]:
        if isinstance(self.calculator, PathBasedCalculator):
            return self._compute_forward_rf()
        self._rise = None
        self._fall = None
        arena = self._arena()
        arr = arena.forward_scalar(self.source_offsets)
        return arena.forward_dict(arr)

    def _compute_forward_rf(self) -> Dict[str, float]:
        if not isinstance(self.calculator, PathBasedCalculator):
            raise TimingError(
                f"rise/fall forward DP needs a path-based calculator, "
                f"got {type(self.calculator).__name__}"
            )
        arena = self._arena()

        def fanin_lookup(name: str):
            return sorted(set(self.netlist[name].fanins))

        rise, fall = arena.forward_rf(self.source_offsets, fanin_lookup)
        # Keep the per-state dicts populated so the inherited cone
        # repair can re-seed from them after mutations.
        self._rise = arena.forward_dict(rise)
        self._fall = arena.forward_dict(fall)
        # Python's max(rise, fall) returns fall only when fall > rise
        # (NaN-asymmetric); np.where replicates that exactly.
        merged = np.where(fall > rise, fall, rise)
        return arena.forward_dict(merged)

    def _compute_backward_any(self) -> Dict[str, float]:
        arena = self._arena()
        return arena.full_dict(arena.backward_any())


class ArenaMinDelayAnalysis(MinDelayAnalysis):
    """Min-delay analysis whose full DP runs on flat arrays.

    The incremental repair path is inherited (it uses the same
    per-node ``_min_node`` as the object analysis); only the
    from-scratch compute is vectorized.  NaN min delays make Python's
    ``min()`` order-dependent, so that (never-in-practice) case falls
    back to the object DP.
    """

    def _compute(self) -> Dict[str, float]:
        try:
            table = MinDelayTable(self.netlist, self)
        except _MinDelayNaN:
            return super()._compute()
        return table.forward_min()


def make_timing_engine(engine: str, *args, **kwargs) -> TimingEngine:
    """Factory behind ``--sta-engine``: ``"object"`` or ``"arena"``."""
    if engine == "object":
        return TimingEngine(*args, **kwargs)
    if engine == "arena":
        return ArenaTimingEngine(*args, **kwargs)
    raise ValueError(
        f"unknown sta engine {engine!r}; expected one of {STA_ENGINES}"
    )
