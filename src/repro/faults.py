"""Fault injection for robustness testing of the flow pipeline.

Every injector manufactures one specific failure class the guard /
error-taxonomy layer must turn into a *typed*, *diagnosable* outcome —
never an unhandled crash and never a silently wrong table:

* :func:`corrupt_net` — dangling fanin reference (broken netlist);
* :func:`truncate_bench` — ``.bench`` text cut off mid-line (broken
  input file);
* :class:`SabotagedCalculator` — NaN / negative / infinite delays from
  the timing layer (broken characterization data);
* :func:`sabotaged_circuit` — a :class:`TwoPhaseCircuit` wired to such
  a calculator;
* :func:`infeasible_scheme` — a clock so tight constraints (6) and (7)
  conflict (no legal latch cut exists);
* :func:`unbalanced_demands` — a flow instance whose demands do not
  sum to zero (infeasible solver input);
* :func:`chaotic_simplex` — a :class:`NetworkSimplex` whose pivot
  selection is randomized, to exercise the anti-cycling and fallback
  machinery;
* :func:`seu_capture_plan` / :func:`glitch_pulse_plan` /
  :func:`delay_corner_plan` — *simulation-level* physical upsets
  (particle-strike state flips, transient pulses, variation corners)
  as :class:`~repro.scenarios.injectors.InjectionPlan` schedules both
  simulation backends honour identically.

All randomness is injected through explicit :class:`random.Random`
instances so property tests stay reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clocks import ClockScheme
from repro.netlist.netlist import Gate, Netlist
from repro.sta.delay_models import PathBasedCalculator

#: Fault kinds the injectors cover, for parametrized tests.  The last
#: three are *simulation-level* physical upsets (scenario-engine
#: injectors from :mod:`repro.scenarios.injectors`) rather than
#: flow-input corruptions.
FAULT_KINDS = (
    "corrupt-net",
    "truncated-bench",
    "nan-delay",
    "negative-delay",
    "infeasible-cut",
    "unbalanced-demands",
    "pivot-chaos",
    "seu-capture",
    "glitch-pulse",
    "delay-corner",
)


@dataclass
class FaultReport:
    """What was injected, so tests can assert on the diagnosis."""

    kind: str
    target: str
    detail: Dict[str, object] = field(default_factory=dict)


def corrupt_net(
    netlist: Netlist, rng: random.Random, missing: str = "__ghost__"
) -> FaultReport:
    """Replace one comb gate's fanin with a driver that does not exist.

    Mutates ``netlist`` in place (bypassing ``rewire_fanin``, which
    refuses exactly this corruption) — the result is what a buggy
    transformation or a bad parse would leave behind.
    """
    gates = [g for g in netlist.comb_gates() if g.fanins]
    if not gates:
        raise ValueError("netlist has no comb gates to corrupt")
    victim = rng.choice(gates)
    slot = rng.randrange(len(victim.fanins))
    fanins = list(victim.fanins)
    original = fanins[slot]
    fanins[slot] = missing
    netlist._gates[victim.name] = Gate(
        victim.name, victim.gtype, tuple(fanins), cell=victim.cell
    )
    netlist._dirty = True
    return FaultReport(
        kind="corrupt-net",
        target=victim.name,
        detail={"slot": slot, "was": original, "now": missing},
    )


def truncate_bench(text: str, rng: random.Random) -> Tuple[str, FaultReport]:
    """Cut ``.bench`` text mid-line, as an interrupted download would."""
    lines = [l for l in text.splitlines() if "=" in l]
    if not lines:
        raise ValueError("bench text has no gate lines to truncate")
    victim = rng.choice(lines)
    cut = rng.randrange(victim.index("="), len(victim))
    truncated = text[: text.index(victim) + cut]
    return truncated, FaultReport(
        kind="truncated-bench",
        target=victim.strip(),
        detail={"cut_at": cut},
    )


class SabotagedCalculator(PathBasedCalculator):
    """A delay calculator that lies about a fraction of its edges.

    ``mode`` is ``"nan"``, ``"negative"`` or ``"inf"``; ``rate`` is the
    per-edge sabotage probability (decided once per edge, then cached
    with the edge, so repeated queries stay consistent).
    """

    def __init__(
        self,
        netlist: Netlist,
        library,
        mode: str = "nan",
        rate: float = 0.05,
        seed: int = 0,
    ) -> None:
        super().__init__(netlist, library)
        if mode not in ("nan", "negative", "inf"):
            raise ValueError(f"unknown sabotage mode {mode!r}")
        self.mode = mode
        self.rate = rate
        self._rng = random.Random(seed)
        self._sabotaged: Dict[Tuple[str, str], bool] = {}
        self.hits: List[Tuple[str, str]] = []

    def _is_hit(self, driver: str, sink: str) -> bool:
        key = (driver, sink)
        hit = self._sabotaged.get(key)
        if hit is None:
            hit = self._rng.random() < self.rate
            self._sabotaged[key] = hit
            if hit:
                self.hits.append(key)
        return hit

    def _lie(self, value: float) -> float:
        if self.mode == "nan":
            return float("nan")
        if self.mode == "inf":
            return float("inf")
        return -abs(value) - 1.0

    def edge_delay(self, driver: str, sink: str) -> float:
        value = super().edge_delay(driver, sink)
        if not self._is_hit(driver, sink):
            return value
        return self._lie(value)

    def transition_edges(self, driver: str, sink: str):
        # The engine's rise/fall forward DP reads this, not
        # edge_delay, for path-based calculators — sabotage both.
        triples = super().transition_edges(driver, sink)
        if not self._is_hit(driver, sink):
            return triples
        return [
            (in_r, out_r, self._lie(delay))
            for in_r, out_r, delay in triples
        ]


def sabotaged_circuit(
    netlist: Netlist,
    scheme: ClockScheme,
    library,
    mode: str = "nan",
    rate: float = 0.05,
    seed: int = 0,
):
    """A :class:`TwoPhaseCircuit` timed by a lying calculator."""
    from repro.latches.resilient import TwoPhaseCircuit

    calculator = SabotagedCalculator(
        netlist, library, mode=mode, rate=rate, seed=seed
    )
    return TwoPhaseCircuit(
        netlist, scheme, library, calculator=calculator
    )


def infeasible_scheme(scheme: ClockScheme, squeeze: float = 0.25) -> ClockScheme:
    """Shrink every phase so no legal slave-latch cut can exist.

    With all windows scaled by ``squeeze`` the combinational delays
    overrun both the forward limit (6) and the backward limit (7) on
    the same gates, which :func:`repro.retime.regions.compute_regions`
    reports as an infeasible Vm/Vn conflict.
    """
    return ClockScheme(
        phi1=scheme.phi1 * squeeze,
        gamma1=scheme.gamma1 * squeeze,
        phi2=scheme.phi2 * squeeze,
        gamma2=scheme.gamma2 * squeeze,
    )


def unbalanced_demands(
    nodes: Sequence[str], rng: random.Random
) -> Dict[str, Fraction]:
    """Node demands that cannot balance (their sum is nonzero)."""
    demands = {node: Fraction(rng.randint(-3, 3)) for node in nodes}
    total = sum(demands.values())
    first = next(iter(demands))
    # Force a nonzero sum no matter what was drawn.
    demands[first] += 1 - total
    return demands


def seu_capture_plan(
    netlist: Netlist,
    cycles: int,
    rng: random.Random,
    placement=None,
    rate: float = 0.25,
):
    """An :class:`InjectionPlan` of SEU capture-state bit flips.

    Returns ``(plan, report)``; the report's detail carries the exact
    flip schedule so tests can assert the corruption landed.
    """
    from repro.scenarios.injectors import InjectionPlan, latch_state_keys

    targets = sorted(g.name for g in netlist.flops())
    if placement is not None:
        targets += latch_state_keys(netlist, placement)
    if not targets:
        raise ValueError("netlist has no state to flip")
    flips: Dict[int, Tuple[str, ...]] = {}
    for cycle in range(cycles):
        if rng.random() < rate:
            flips[cycle] = (targets[rng.randrange(len(targets))],)
    plan = InjectionPlan(seu_flips=flips, label="seu-capture")
    return plan, FaultReport(
        kind="seu-capture",
        target=netlist.name,
        detail={"n_flips": sum(len(v) for v in flips.values()),
                "flips": {c: list(v) for c, v in flips.items()}},
    )


def glitch_pulse_plan(
    netlist: Netlist,
    scheme: ClockScheme,
    cycles: int,
    rng: random.Random,
    rate: float = 0.25,
    width: Optional[float] = None,
):
    """An :class:`InjectionPlan` of transient glitch pulses on nets."""
    from repro.scenarios.injectors import GlitchSpec, InjectionPlan

    nets = sorted(g.name for g in netlist.comb_gates())
    if not nets:
        raise ValueError("netlist has no comb nets to glitch")
    pulse_width = (
        width if width is not None else scheme.resiliency_window * 0.5
    )
    glitches: Dict[int, Tuple[GlitchSpec, ...]] = {}
    for cycle in range(cycles):
        if rng.random() < rate:
            glitches[cycle] = (
                GlitchSpec(
                    net=nets[rng.randrange(len(nets))],
                    start=rng.uniform(0.0, scheme.period),
                    width=pulse_width,
                ),
            )
    plan = InjectionPlan(glitches=glitches, label="glitch-pulse")
    return plan, FaultReport(
        kind="glitch-pulse",
        target=netlist.name,
        detail={"n_glitches": sum(len(v) for v in glitches.values()),
                "width": pulse_width},
    )


def delay_corner_plan(
    netlist: Netlist,
    rng: random.Random,
    systematic: float = 1.1,
    sigma: float = 0.05,
):
    """An :class:`InjectionPlan` of per-gate delay-variation factors."""
    from repro.scenarios.injectors import InjectionPlan, delay_corner_scale

    scale = delay_corner_scale(
        netlist, systematic=systematic, sigma=sigma, rng=rng
    )
    plan = InjectionPlan(delay_scale=scale, label="delay-corner")
    return plan, FaultReport(
        kind="delay-corner",
        target=netlist.name,
        detail={"systematic": systematic, "sigma": sigma,
                "n_gates": len(scale)},
    )


def chaotic_simplex(
    nodes: Sequence[str],
    arcs: Sequence[Tuple[str, str, int]],
    demands: Dict[str, Fraction],
    seed: int = 0,
    max_iterations: Optional[int] = None,
):
    """A :class:`NetworkSimplex` with randomized pivot selection.

    The chaos RNG feeds the solver's ``pivot_chaos`` hook: entering
    arcs are drawn uniformly from all eligible candidates instead of
    by Dantzig pricing, maximizing degenerate wandering — the stress
    input for the cycling detector and the iteration budget.
    """
    from repro.retime.simplex import NetworkSimplex

    return NetworkSimplex(
        nodes,
        arcs,
        demands,
        max_iterations=max_iterations,
        pivot_chaos=random.Random(seed),
    )
