"""Gate-based and path-based delay calculators (Table II ablation).

Both calculators expose the same interface: a scalar ``edge_delay(u, v)``
— the delay contribution of gate ``v`` when driven from gate ``u`` —
plus per-gate output slews.  Edges into endpoints (flop D pins and
primary-output markers) have zero delay.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.cells.cell import CombCell
from repro.errors import NetlistError
from repro.cells.library import Library
from repro.netlist.netlist import Gate, GateType, Netlist, NetlistEvent
from repro.sta.loads import LoadModel

#: Reference load used by the conservative gate-based model: a heavily
#: loaded net, making every gate delay a pessimistic constant as in
#: the DAC'17 gate-delay formulation ("the gate delay model is
#: conservative and can negatively impact the region calculations").
#: Calibrated so the model sits ~25-40% above path-based arrivals on
#: realistic clouds — the regime where Table II's comparison shows the
#: paper's 5-8% penalty.
GATE_MODEL_REFERENCE_LOAD = 6.0
GATE_MODEL_REFERENCE_SLEW = 0.050


class DelayCalculator:
    """Shared machinery for the two delay models."""

    name = "abstract"

    def __init__(
        self,
        netlist: Netlist,
        library: Library,
        load_model: Optional[LoadModel] = None,
    ) -> None:
        self.netlist = netlist
        self.library = library
        self.load_model = load_model or LoadModel()
        self._loads: Dict[str, float] = {}
        self._slews: Dict[str, float] = {}
        self._edge_cache: Dict[Tuple[str, str], float] = {}
        self._dirty = True
        #: Gates whose load/slew/arcs must be repaired before the next
        #: query (fed by netlist change events, drained by _refresh).
        self._pending_dirty: Set[str] = set()
        netlist.subscribe(self)

    # -- cache management ---------------------------------------------

    def on_netlist_event(self, event: NetlistEvent) -> None:
        """Record a netlist change for scoped cache repair."""
        if self._dirty:
            return  # a full refresh is already owed
        self._pending_dirty |= event.dirty_gates(self.netlist)
        # Removed gates keep no cache entries either.
        self._pending_dirty.update(event.removed_gates())

    def invalidate(self) -> None:
        """Drop caches after a netlist mutation (e.g. sizing)."""
        self._dirty = True
        self._edge_cache.clear()
        self._pending_dirty.clear()

    def _refresh(self) -> None:
        if self._dirty:
            self._loads = self.load_model.all_loads(
                self.netlist, self.library
            )
            self._slews = self._compute_slews()
            self._dirty = False
            self._pending_dirty.clear()
            return
        if self._pending_dirty:
            self._apply_patch()

    def _apply_patch(self) -> None:
        """Repair loads/slews/arcs for the pending dirty gates only.

        Patched entries are computed by the same per-gate formulas a
        full refresh uses, so a patched cache is bit-identical to a
        rebuilt one.
        """
        dirty = self._pending_dirty
        self._pending_dirty = set()
        self.load_model.patch_loads(
            self.netlist, self.library, self._loads, dirty
        )
        for name in dirty:
            if name not in self.netlist:
                self._slews.pop(name, None)
                continue
            gate = self.netlist[name]
            if gate.gtype is GateType.OUTPUT:
                continue
            self._slews[name] = self._slew_of(gate)
        for key in [
            k
            for k in self._edge_cache
            if k[0] in dirty or k[1] in dirty
        ]:
            del self._edge_cache[key]

    def _slew_of(self, gate: Gate) -> float:
        """Worst output slew of one gate at its current load."""
        if gate.is_source:
            return self.load_model.source_slew
        cell = self.library[gate.cell]
        if not isinstance(cell, CombCell):
            raise NetlistError(
                [f"gate {gate.name!r}: cell {gate.cell!r} is not "
                 f"combinational"]
            )
        load = self._loads.get(gate.name, 0.0)
        return max(
            cell.arc(pin).max_output_slew(load) for pin in cell.inputs
        )

    def _compute_slews(self) -> Dict[str, float]:
        """Worst output slew per gate, in topological order."""
        slews: Dict[str, float] = {}
        for name in self.netlist.topo_order():
            gate = self.netlist[name]
            if gate.gtype is GateType.OUTPUT:
                continue
            slews[name] = self._slew_of(gate)
        return slews

    # -- queries --------------------------------------------------------

    def load(self, name: str) -> float:
        """Capacitive load driven by ``name``."""
        self._refresh()
        return self._loads.get(name, 0.0)

    def slew(self, name: str) -> float:
        """Propagated worst output slew of ``name``."""
        self._refresh()
        return self._slews.get(name, self.load_model.source_slew)

    def edge_delay(self, driver: str, sink: str) -> float:
        """Delay of gate ``sink`` when driven from ``driver``."""
        self._refresh()
        key = (driver, sink)
        cached = self._edge_cache.get(key)
        if cached is None:
            cached = self._compute_edge(driver, sink)
            self._edge_cache[key] = cached
        return cached

    def gate_delay(self, name: str) -> float:
        """Worst delay of a gate over all of its fanin edges."""
        gate = self.netlist[name]
        if not gate.is_comb:
            return 0.0
        return max(self.edge_delay(d, name) for d in gate.fanins)

    def _compute_edge(self, driver: str, sink: str) -> float:
        raise NotImplementedError


class GateBasedCalculator(DelayCalculator):
    """Conservative per-gate worst-case delays (DAC'17 model [16]).

    Every combinational gate contributes the maximum of its arc delays
    at a fixed heavy reference load, regardless of which pin is driven
    or what the gate actually drives.  Accurate fanout loading, slew
    and rise/fall distinctions are all ignored — pessimistic, which can
    push gates out of the retiming region ``V_r`` (Section VI-B).
    """

    name = "gate"

    def _compute_edge(self, driver: str, sink: str) -> float:
        gate = self.netlist[sink]
        if not gate.is_comb:
            return 0.0
        cell = self.library[gate.cell]
        if not isinstance(cell, CombCell):
            raise NetlistError(
                [f"gate {gate.name!r}: cell {gate.cell!r} is not "
                 f"combinational"]
            )
        return max(
            cell.arc(pin).max_delay(
                GATE_MODEL_REFERENCE_LOAD, GATE_MODEL_REFERENCE_SLEW
            )
            for pin in cell.inputs
        )


class PathBasedCalculator(DelayCalculator):
    """Commercial-grade per-path delays (this paper's model).

    The delay of gate ``v`` driven from ``u`` uses the specific pin arc
    where ``u`` connects, the actual capacitive load ``v`` drives, and
    the slew propagated from ``u``.  Rise and fall are evaluated
    separately and only their worst *valid* combination is taken.
    """

    name = "path"

    def _compute_edge(self, driver: str, sink: str) -> float:
        gate = self.netlist[sink]
        if not gate.is_comb:
            return 0.0
        cell = self.library[gate.cell]
        if not isinstance(cell, CombCell):
            raise NetlistError(
                [f"gate {gate.name!r}: cell {gate.cell!r} is not "
                 f"combinational"]
            )
        transitions = self.transition_edges(driver, sink)
        if not transitions:
            raise KeyError(f"{driver!r} does not drive {sink!r}")
        return max(delay for _, _, delay in transitions)

    def transition_edges(self, driver: str, sink: str):
        """Valid (input_rising, output_rising, delay) triples.

        Unate arcs only admit one output edge per input edge; the
        engine's two-state forward DP uses this to prune invalid
        rise/fall combinations — the refinement Section VI-B credits
        the path-based model with.
        """
        gate = self.netlist[sink]
        if not gate.is_comb:
            return [(True, True, 0.0), (False, False, 0.0)]
        cell = self.library[gate.cell]
        if not isinstance(cell, CombCell):
            raise NetlistError(
                [f"gate {gate.name!r}: cell {gate.cell!r} is not "
                 f"combinational"]
            )
        load = self.load(sink)
        slew = self.slew(driver)
        triples = []
        for pin, fanin in zip(cell.inputs, gate.fanins):
            if fanin != driver:
                continue
            arc = cell.arc(pin)
            rise_delay = arc.rise.delay(load, slew)
            fall_delay = arc.fall.delay(load, slew)
            if arc.unate is None:
                triples.extend(
                    [
                        (True, True, rise_delay),
                        (True, False, fall_delay),
                        (False, True, rise_delay),
                        (False, False, fall_delay),
                    ]
                )
            elif arc.unate:
                triples.append((True, True, rise_delay))
                triples.append((False, False, fall_delay))
            else:
                triples.append((True, False, fall_delay))
                triples.append((False, True, rise_delay))
        return triples


class FixedDelayCalculator(DelayCalculator):
    """Explicit per-gate delays, for textbook examples and tests.

    The paper's Fig. 4 worked example assigns each gate a fixed integer
    delay ``d(v)``; this calculator reproduces that model exactly:
    ``edge_delay(u, v) = d(v)`` for every fanin ``u``.
    """

    name = "fixed"

    def __init__(self, netlist: Netlist, delays: Dict[str, float]) -> None:
        # No library interaction: bypass the base constructor's needs.
        self.netlist = netlist
        self.library = None  # type: ignore[assignment]
        self.load_model = LoadModel()
        self.delays = dict(delays)
        self._loads = {}
        self._slews = {}
        self._edge_cache = {}
        self._dirty = False
        self._pending_dirty: Set[str] = set()
        netlist.subscribe(self)

    def on_netlist_event(self, event: NetlistEvent) -> None:
        """Evict arcs touching changed gates (delays are load-free)."""
        dirty = event.dirty_gates(self.netlist) | set(event.removed_gates())
        for key in [
            k for k in self._edge_cache if k[0] in dirty or k[1] in dirty
        ]:
            del self._edge_cache[key]

    def invalidate(self) -> None:
        """Drop caches after a netlist mutation (e.g. sizing)."""
        self._edge_cache.clear()

    def _refresh(self) -> None:
        return

    def load(self, name: str) -> float:
        """Capacitive load driven by ``name``."""
        return 0.0

    def slew(self, name: str) -> float:
        """Propagated worst output slew of ``name``."""
        return 0.0

    def _compute_edge(self, driver: str, sink: str) -> float:
        gate = self.netlist[sink]
        if not gate.is_comb:
            return 0.0
        return float(self.delays.get(sink, 0.0))


def make_calculator(
    model: str,
    netlist: Netlist,
    library: Library,
    load_model: Optional[LoadModel] = None,
) -> DelayCalculator:
    """Factory: ``model`` is ``"gate"`` or ``"path"``."""
    if model == "gate":
        return GateBasedCalculator(netlist, library, load_model)
    if model == "path":
        return PathBasedCalculator(netlist, library, load_model)
    raise ValueError(f"unknown delay model {model!r} (use 'gate' or 'path')")
