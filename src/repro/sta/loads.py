"""Net load and slew estimation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.cells.cell import CombCell, SequentialCell
from repro.errors import NetlistError
from repro.cells.library import Library
from repro.netlist.netlist import GateType, Netlist


@dataclass(frozen=True)
class LoadModel:
    """Wire-load model: a fixed capacitance per fanout connection.

    Matches the pre-layout wire-load tables synthesis tools use: load
    of a net = sum of sink pin capacitances + ``wire_cap_per_fanout``
    per connection.
    """

    wire_cap_per_fanout: float = 0.40
    #: Capacitance presented by a primary-output pad.
    output_pin_cap: float = 2.0
    #: Slew assumed at primary inputs / latch outputs.
    source_slew: float = 0.020

    def net_load(self, netlist: Netlist, library: Library, driver: str) -> float:
        """Total load on the net driven by ``driver``."""
        total = 0.0
        seen = set()
        for user_name in netlist.fanouts(driver):
            if user_name in seen:
                continue  # pin caps handled below, once per user gate
            seen.add(user_name)
            user = netlist[user_name]
            if user.gtype is GateType.OUTPUT:
                total += self.wire_cap_per_fanout + self.output_pin_cap
            elif user.gtype is GateType.DFF:
                cell = self._flop_cell(user, library)
                total += self.wire_cap_per_fanout + cell.input_cap
            else:
                cell = library[user.cell]
                if not isinstance(cell, CombCell):
                    raise NetlistError(
                        [f"gate {user.name!r}: cell {user.cell!r} is not "
                         f"combinational"]
                    )
                # A driver can feed several pins of the same gate; each
                # connection adds its pin and wire capacitance.
                for pin, fanin in zip(cell.inputs, user.fanins):
                    if fanin == driver:
                        total += self.wire_cap_per_fanout + cell.pin_cap(pin)
        return total

    @staticmethod
    def _flop_cell(gate, library: Library) -> SequentialCell:
        if gate.cell is not None:
            cell = library[gate.cell]
            if isinstance(cell, SequentialCell):
                return cell
        return library.default_flip_flop()

    def all_loads(self, netlist: Netlist, library: Library) -> Dict[str, float]:
        """Load of every driving gate in the netlist."""
        return {
            gate.name: self.net_load(netlist, library, gate.name)
            for gate in netlist
            if gate.gtype is not GateType.OUTPUT
        }

    def patch_loads(
        self,
        netlist: Netlist,
        library: Library,
        loads: Dict[str, float],
        dirty: Iterable[str],
    ) -> None:
        """Repair ``loads`` in place for the gates in ``dirty``.

        Each surviving dirty gate gets the same :meth:`net_load` value
        a full :meth:`all_loads` rebuild would assign (so scoped and
        whole-netlist refreshes stay bit-identical); gates that no
        longer exist are dropped.
        """
        for name in dirty:
            if name not in netlist:
                loads.pop(name, None)
                continue
            if netlist[name].gtype is GateType.OUTPUT:
                continue
            loads[name] = self.net_load(netlist, library, name)
