"""Static timing analysis over gate-level netlists.

Provides the two delay models the paper compares (Table II):

* **gate-based** — every gate contributes its worst-case cell delay at
  a fixed reference load, as in the DAC'17 paper [16];
* **path-based** — per-pin arcs evaluated at the actual fanout load
  with propagated slew and only valid rise/fall combinations, matching
  what a commercial synthesis tool's timing engine reports.

The :class:`TimingEngine` answers the queries the retiming flows make:
forward arrivals ``D^f``, per-endpoint backward delays ``D^b(v, t)``,
endpoint arrival times, and near-critical-endpoint classification.
"""

from repro.sta.loads import LoadModel
from repro.sta.delay_models import (
    DelayCalculator,
    FixedDelayCalculator,
    GateBasedCalculator,
    PathBasedCalculator,
    make_calculator,
)
from repro.sta.engine import TimingEngine
from repro.sta.paths import TimingPath, worst_path
from repro.sta.report import TimingReport, report_timing, report_worst_paths

__all__ = [
    "LoadModel",
    "DelayCalculator",
    "FixedDelayCalculator",
    "GateBasedCalculator",
    "PathBasedCalculator",
    "make_calculator",
    "TimingEngine",
    "TimingPath",
    "worst_path",
    "TimingReport",
    "report_timing",
    "report_worst_paths",
]
