"""``report_timing``-style text reports from the timing engine.

Formats the same information a commercial tool's timing report carries
— startpoint, endpoint, per-gate increments, arrival vs required, and
slack — which is what the paper's G-RAR implementation parsed back out
of its tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sta.engine import TimingEngine
from repro.sta.paths import TimingPath, worst_path


@dataclass(frozen=True)
class TimingReport:
    """A formatted single-path timing report."""

    path: TimingPath
    required: Optional[float]
    text: str

    @property
    def slack(self) -> Optional[float]:
        """Required minus arrival (None without a requirement)."""
        if self.required is None:
            return None
        return self.required - self.path.arrival

    @property
    def met(self) -> bool:
        """True when the path meets its requirement."""
        slack = self.slack
        return slack is None or slack >= -1e-12


def report_timing(
    engine: TimingEngine,
    endpoint: str,
    required: Optional[float] = None,
) -> TimingReport:
    """Render the worst path into ``endpoint``.

    ``required`` (e.g. ``Pi`` for a non-error-detecting master) adds
    the required-time/slack section.
    """
    path = worst_path(engine, endpoint)
    lines: List[str] = []
    lines.append(f"Startpoint: {path.startpoint}")
    lines.append(f"Endpoint:   {path.endpoint}")
    lines.append("")
    lines.append(f"{'point':<28s}{'incr':>10s}{'path':>10s}")
    lines.append("-" * 48)

    cumulative = 0.0
    previous: Optional[str] = None
    for gate in path.gates:
        if previous is None:
            lines.append(
                f"{gate + ' (launch)':<28s}{0.0:>10.4f}{0.0:>10.4f}"
            )
        else:
            increment = engine.edge_delay(previous, gate)
            cumulative += increment
            lines.append(
                f"{gate:<28s}{increment:>10.4f}{cumulative:>10.4f}"
            )
        previous = gate
    lines.append("-" * 48)
    lines.append(f"{'data arrival time':<28s}{path.arrival:>20.4f}")
    if required is not None:
        slack = required - path.arrival
        verdict = "MET" if slack >= -1e-12 else "VIOLATED"
        lines.append(f"{'data required time':<28s}{required:>20.4f}")
        lines.append(f"{'slack (' + verdict + ')':<28s}{slack:>20.4f}")
    return TimingReport(
        path=path, required=required, text="\n".join(lines)
    )


def report_worst_paths(
    engine: TimingEngine,
    count: int = 3,
    required: Optional[float] = None,
) -> str:
    """Concatenated reports for the ``count`` worst endpoints."""
    endpoints = sorted(
        engine.endpoints(),
        key=lambda g: engine.endpoint_arrival(g.name),
        reverse=True,
    )[:count]
    blocks = [
        report_timing(engine, gate.name, required=required).text
        for gate in endpoints
    ]
    return ("\n" + "=" * 48 + "\n").join(blocks)
