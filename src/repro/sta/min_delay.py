"""Min-delay (hold-style) analysis.

Error-detecting masters sample during the resiliency window, so data
launched by the *next* cycle must not race through and corrupt the
window: the shortest master-to-master path must stay above the window
width plus the latch hold time.  The paper leans on the fact that
"latch-based resilient circuits have higher hold margins" — this
module makes that margin measurable (and
:mod:`repro.synth.hold_fix` makes it fixable).

Minimum arrivals mirror the maximum-arrival engine with min-mode arc
delays and min-over-fanins DP.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set

from repro import metrics
from repro.cells.cell import CombCell
from repro.errors import NetlistError, TimingError
from repro.cells.library import Library
from repro.netlist.netlist import Gate, GateType, Netlist, NetlistEvent
from repro.sta.loads import LoadModel

POS_INF = float("inf")


class MinDelayAnalysis:
    """Shortest-path arrivals over the combinational cloud.

    Subscribes to netlist change events and repairs its min-arrival
    table in place (same worklist scheme as the max-delay engine), so
    the hold-fix loop no longer pays a full recompute per inserted
    buffer.
    """

    def __init__(
        self,
        netlist: Netlist,
        library: Library,
        load_model: Optional[LoadModel] = None,
    ) -> None:
        self.netlist = netlist
        self.library = library
        self.load_model = load_model or LoadModel()
        self._loads: Optional[Dict[str, float]] = None
        self._min_arrival: Optional[Dict[str, float]] = None
        self._topo_index: Optional[Dict[str, int]] = None
        self._pending_dirty: Set[str] = set()
        self._pending_removed: Set[str] = set()
        netlist.subscribe(self)

    def on_netlist_event(self, event: NetlistEvent) -> None:
        """Record a netlist change for scoped repair at the next query."""
        self._pending_dirty |= event.dirty_gates(self.netlist)
        self._pending_removed.update(event.removed_gates())
        if event.structural:
            self._topo_index = None

    def invalidate(self) -> None:
        """Drop caches after a netlist mutation."""
        self._loads = None
        self._min_arrival = None
        self._topo_index = None
        self._pending_dirty.clear()
        self._pending_removed.clear()

    def _index(self) -> Dict[str, int]:
        if self._topo_index is None:
            self._topo_index = {
                name: i for i, name in enumerate(self.netlist.topo_order())
            }
        return self._topo_index

    def _flush_events(self) -> None:
        """Apply pending change events as scoped cache repair."""
        if not (self._pending_dirty or self._pending_removed):
            return
        dirty = self._pending_dirty
        removed = self._pending_removed
        self._pending_dirty = set()
        self._pending_removed = set()
        if self._loads is not None:
            self.load_model.patch_loads(
                self.netlist, self.library, self._loads, dirty | removed
            )
        if self._min_arrival is None:
            return
        try:
            self._repair(dirty, removed)
        except BaseException:
            self._min_arrival = None
            raise

    def _repair(self, dirty: Set[str], removed: Set[str]) -> None:
        arrivals = self._min_arrival
        assert arrivals is not None
        netlist = self.netlist
        for name in removed:
            arrivals.pop(name, None)
        seeds: Set[str] = set()
        for name in dirty:
            if name not in netlist:
                continue
            seeds.add(name)
            seeds.update(netlist.fanouts(name))
        if not seeds:
            return
        index = self._index()
        heap = [(index[name], name) for name in seeds if name in index]
        heapq.heapify(heap)
        queued = {name for _, name in heap}
        recomputed = 0
        while heap:
            _, name = heapq.heappop(heap)
            gate = netlist[name]
            if gate.gtype is GateType.OUTPUT:
                continue
            recomputed += 1
            new_value = self._min_node(name, gate, arrivals)
            changed = name not in arrivals or arrivals[name] != new_value
            arrivals[name] = new_value
            if not changed:
                continue
            for user in netlist.fanouts(name):
                if user in queued or user not in index:
                    continue
                queued.add(user)
                heapq.heappush(heap, (index[user], user))
        metrics.count("sta.incremental.nodes_recomputed", recomputed)

    def _load(self, name: str) -> float:
        if self._loads is None:
            self._loads = self.load_model.all_loads(
                self.netlist, self.library
            )
        return self._loads.get(name, 0.0)

    def min_edge_delay(self, driver: str, sink: str) -> float:
        """Fastest single-transition delay of ``sink`` from ``driver``."""
        # Re-entrant from _repair: pending sets are already drained
        # there, so this flush is a no-op during repair itself.
        self._flush_events()
        gate = self.netlist[sink]
        if not gate.is_comb:
            return 0.0
        cell = self.library[gate.cell]
        if not isinstance(cell, CombCell):
            raise NetlistError(
                [f"gate {gate.name!r}: cell {gate.cell!r} is not "
                 f"combinational"]
            )
        load = self._load(sink)
        best = POS_INF
        for pin, fanin in zip(cell.inputs, gate.fanins):
            if fanin != driver:
                continue
            best = min(best, cell.arc(pin).min_delay(load, 0.0))
        if best == POS_INF:
            raise KeyError(f"{driver!r} does not drive {sink!r}")
        return best

    def _min_node(
        self, name: str, gate: Gate, arrivals: Dict[str, float]
    ) -> float:
        """Min arrival of one gate (shared by full DP and repair)."""
        if gate.is_source:
            return 0.0
        if not gate.fanins:
            raise TimingError(
                f"gate {name!r} has no fanins to propagate "
                f"min arrivals from",
                payload={"gate": name},
            )
        for driver in gate.fanins:
            if driver not in arrivals:
                raise TimingError(
                    f"gate {name!r} reads {driver!r}, which has "
                    f"no min arrival (endpoint or outside the "
                    f"combinational cloud)",
                    payload={"gate": name, "fanin": driver},
                )
        return min(
            arrivals[d] + self.min_edge_delay(d, name)
            for d in gate.fanins
        )

    def _compute(self) -> Dict[str, float]:
        arrivals: Dict[str, float] = {}
        for name in self.netlist.topo_order():
            gate = self.netlist[name]
            if gate.gtype is GateType.OUTPUT:
                continue
            arrivals[name] = self._min_node(name, gate, arrivals)
        return arrivals

    def min_arrival(self, name: str) -> float:
        """Earliest possible arrival at the output of ``name``."""
        self._flush_events()
        if self._min_arrival is None:
            self._min_arrival = self._compute()
        return self._min_arrival[name]

    def min_endpoint_arrival(self, endpoint: str) -> float:
        """Earliest data arrival at an endpoint's input."""
        gate = self.netlist[endpoint]
        if gate.gtype not in (GateType.OUTPUT, GateType.DFF):
            raise ValueError(f"{endpoint!r} is not an endpoint")
        if not gate.fanins:
            raise TimingError(
                f"endpoint {endpoint!r} has no fanins; min arrival is "
                f"undefined",
                payload={"gate": endpoint},
            )
        return min(self.min_arrival(d) for d in gate.fanins)

    def trace_min_path(self, endpoint: str) -> List[str]:
        """The fastest path into ``endpoint`` (for hold fixing)."""
        gate = self.netlist[endpoint]
        current = min(gate.fanins, key=self.min_arrival)
        path = [endpoint, current]
        while not self.netlist[current].is_source:
            node = self.netlist[current]
            current = min(
                node.fanins,
                key=lambda d: self.min_arrival(d)
                + self.min_edge_delay(d, current),
            )
            path.append(current)
        path.reverse()
        return path

    def hold_violations(
        self, required_min: float
    ) -> Dict[str, float]:
        """Endpoints whose fastest path undercuts ``required_min``.

        For a two-phase resilient design the bound is the resiliency
        window width plus the master's hold time: data launched at the
        next cycle's time-0 must not reach an error-detecting master
        before its window (which extends ``phi1`` past the capturing
        edge) has closed.
        """
        out: Dict[str, float] = {}
        for gate in self.netlist.endpoints():
            arrival = self.min_endpoint_arrival(gate.name)
            if arrival < required_min - 1e-12:
                out[gate.name] = required_min - arrival
        return out
