"""Min-delay (hold-style) analysis.

Error-detecting masters sample during the resiliency window, so data
launched by the *next* cycle must not race through and corrupt the
window: the shortest master-to-master path must stay above the window
width plus the latch hold time.  The paper leans on the fact that
"latch-based resilient circuits have higher hold margins" — this
module makes that margin measurable (and
:mod:`repro.synth.hold_fix` makes it fixable).

Minimum arrivals mirror the maximum-arrival engine with min-mode arc
delays and min-over-fanins DP.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cells.cell import CombCell
from repro.errors import NetlistError, TimingError
from repro.cells.library import Library
from repro.netlist.netlist import GateType, Netlist
from repro.sta.loads import LoadModel

POS_INF = float("inf")


class MinDelayAnalysis:
    """Shortest-path arrivals over the combinational cloud."""

    def __init__(
        self,
        netlist: Netlist,
        library: Library,
        load_model: Optional[LoadModel] = None,
    ) -> None:
        self.netlist = netlist
        self.library = library
        self.load_model = load_model or LoadModel()
        self._loads: Optional[Dict[str, float]] = None
        self._min_arrival: Optional[Dict[str, float]] = None

    def invalidate(self) -> None:
        """Drop caches after a netlist mutation."""
        self._loads = None
        self._min_arrival = None

    def _load(self, name: str) -> float:
        if self._loads is None:
            self._loads = self.load_model.all_loads(
                self.netlist, self.library
            )
        return self._loads.get(name, 0.0)

    def min_edge_delay(self, driver: str, sink: str) -> float:
        """Fastest single-transition delay of ``sink`` from ``driver``."""
        gate = self.netlist[sink]
        if not gate.is_comb:
            return 0.0
        cell = self.library[gate.cell]
        if not isinstance(cell, CombCell):
            raise NetlistError(
                [f"gate {gate.name!r}: cell {gate.cell!r} is not "
                 f"combinational"]
            )
        load = self._load(sink)
        best = POS_INF
        for pin, fanin in zip(cell.inputs, gate.fanins):
            if fanin != driver:
                continue
            best = min(best, cell.arc(pin).min_delay(load, 0.0))
        if best == POS_INF:
            raise KeyError(f"{driver!r} does not drive {sink!r}")
        return best

    def _compute(self) -> Dict[str, float]:
        arrivals: Dict[str, float] = {}
        for name in self.netlist.topo_order():
            gate = self.netlist[name]
            if gate.is_source:
                arrivals[name] = 0.0
            elif gate.gtype is GateType.OUTPUT:
                continue
            else:
                if not gate.fanins:
                    raise TimingError(
                        f"gate {name!r} has no fanins to propagate "
                        f"min arrivals from",
                        payload={"gate": name},
                    )
                for driver in gate.fanins:
                    if driver not in arrivals:
                        raise TimingError(
                            f"gate {name!r} reads {driver!r}, which has "
                            f"no min arrival (endpoint or outside the "
                            f"combinational cloud)",
                            payload={"gate": name, "fanin": driver},
                        )
                arrivals[name] = min(
                    arrivals[d] + self.min_edge_delay(d, name)
                    for d in gate.fanins
                )
        return arrivals

    def min_arrival(self, name: str) -> float:
        """Earliest possible arrival at the output of ``name``."""
        if self._min_arrival is None:
            self._min_arrival = self._compute()
        return self._min_arrival[name]

    def min_endpoint_arrival(self, endpoint: str) -> float:
        """Earliest data arrival at an endpoint's input."""
        gate = self.netlist[endpoint]
        if gate.gtype not in (GateType.OUTPUT, GateType.DFF):
            raise ValueError(f"{endpoint!r} is not an endpoint")
        if not gate.fanins:
            raise TimingError(
                f"endpoint {endpoint!r} has no fanins; min arrival is "
                f"undefined",
                payload={"gate": endpoint},
            )
        return min(self.min_arrival(d) for d in gate.fanins)

    def trace_min_path(self, endpoint: str) -> List[str]:
        """The fastest path into ``endpoint`` (for hold fixing)."""
        gate = self.netlist[endpoint]
        current = min(gate.fanins, key=self.min_arrival)
        path = [endpoint, current]
        while not self.netlist[current].is_source:
            node = self.netlist[current]
            current = min(
                node.fanins,
                key=lambda d: self.min_arrival(d)
                + self.min_edge_delay(d, current),
            )
            path.append(current)
        path.reverse()
        return path

    def hold_violations(
        self, required_min: float
    ) -> Dict[str, float]:
        """Endpoints whose fastest path undercuts ``required_min``.

        For a two-phase resilient design the bound is the resiliency
        window width plus the master's hold time: data launched at the
        next cycle's time-0 must not reach an error-detecting master
        before its window (which extends ``phi1`` past the capturing
        edge) has closed.
        """
        out: Dict[str, float] = {}
        for gate in self.netlist.endpoints():
            arrival = self.min_endpoint_arrival(gate.name)
            if arrival < required_min - 1e-12:
                out[gate.name] = required_min - arrival
        return out
