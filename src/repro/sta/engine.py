"""The timing engine: forward arrivals, backward delays, endpoints.

Terminology follows the paper (Section III):

* ``D^f(u)`` — maximum delay from any stage source (master latch / PI)
  to the *output* of gate ``u``;
* ``D^b(v, t)`` — maximum delay from the output of gate ``v`` to the
  endpoint ``t`` (a master latch D pin or primary output), computed
  backward from ``t``;
* endpoint arrival — ``max_u D^f(u)`` over the endpoint's fanins.

Sources launch at time 0 by default (the paper's convention: a master
always propagates data at time 0), with optional per-source offsets.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro import metrics
from repro.cells.library import Library
from repro.errors import TimingError
from repro.netlist.netlist import Gate, GateType, Netlist
from repro.sta.delay_models import (
    DelayCalculator,
    PathBasedCalculator,
    make_calculator,
)
from repro.sta.loads import LoadModel

NEG_INF = float("-inf")
NAN = float("nan")


class TimingEngine:
    """Answers the timing queries of the retiming flows.

    All results are cached and recomputed lazily after
    :meth:`invalidate` (called by the sizing engine after cell swaps).
    """

    def __init__(
        self,
        netlist: Netlist,
        library: Optional[Library],
        model: str = "path",
        load_model: Optional[LoadModel] = None,
        source_offsets: Optional[Mapping[str, float]] = None,
        calculator: Optional[DelayCalculator] = None,
    ) -> None:
        self.netlist = netlist
        self.library = library
        if calculator is not None:
            self.calculator = calculator
        else:
            if library is None:
                raise ValueError("library required unless calculator given")
            self.calculator = make_calculator(
                model, netlist, library, load_model
            )
        self.source_offsets = dict(source_offsets or {})
        self._forward: Optional[Dict[str, float]] = None
        self._backward_any: Optional[Dict[str, float]] = None
        self._backward_to: Dict[str, Dict[str, float]] = {}
        self._reverse_topo_cache: Optional[List[str]] = None
        self._topo_index: Dict[str, int] = {}

    # -- cache management ----------------------------------------------

    def invalidate(self) -> None:
        """Drop all timing caches (after sizing)."""
        metrics.count("sta.invalidate")
        self.calculator.invalidate()
        self._forward = None
        self._backward_any = None
        self._backward_to.clear()
        self._reverse_topo_cache = None
        self._topo_index = {}

    # -- forward timing --------------------------------------------------

    def _source_offset(self, name: str) -> float:
        return self.source_offsets.get(name, 0.0)

    def _compute_forward(self) -> Dict[str, float]:
        calc = self.calculator
        if isinstance(calc, PathBasedCalculator):
            return self._compute_forward_rf()
        arrivals: Dict[str, float] = {}
        for name in self.netlist.topo_order():
            gate = self.netlist[name]
            if gate.is_source:
                arrivals[name] = self._source_offset(name)
            elif gate.gtype is GateType.OUTPUT:
                continue
            else:
                best = NEG_INF
                saw_nan = False
                for driver in gate.fanins:
                    if driver not in arrivals:
                        raise TimingError(
                            f"gate {name!r} reads {driver!r}, which has "
                            f"no forward arrival (endpoint or outside "
                            f"the combinational cloud)",
                            payload={"gate": name, "fanin": driver},
                        )
                    candidate = arrivals[driver] + calc.edge_delay(
                        driver, name
                    )
                    if candidate != candidate:
                        # NaN delay: keep it visible for the guard's
                        # sanity checkpoint; max() would swallow it.
                        saw_nan = True
                        continue
                    best = max(best, candidate)
                if best == NEG_INF:
                    if saw_nan:
                        best = NAN
                    else:
                        raise TimingError(
                            f"gate {name!r} has no fanins to propagate "
                            f"arrivals from",
                            payload={"gate": name},
                        )
                arrivals[name] = best
        return arrivals

    def _compute_forward_rf(self) -> Dict[str, float]:
        """Two-state (rise/fall) forward DP for the path-based model."""
        calc = self.calculator
        if not isinstance(calc, PathBasedCalculator):
            raise TimingError(
                f"rise/fall forward DP needs a path-based calculator, "
                f"got {type(calc).__name__}"
            )
        rise: Dict[str, float] = {}
        fall: Dict[str, float] = {}
        for name in self.netlist.topo_order():
            gate = self.netlist[name]
            if gate.is_source:
                offset = self._source_offset(name)
                rise[name] = offset
                fall[name] = offset
                continue
            if gate.gtype is GateType.OUTPUT:
                continue
            best_rise = NEG_INF
            best_fall = NEG_INF
            saw_nan = False
            for driver in set(gate.fanins):
                if driver not in rise:
                    raise TimingError(
                        f"gate {name!r} reads {driver!r}, which has no "
                        f"forward arrival (endpoint or outside the "
                        f"combinational cloud)",
                        payload={"gate": name, "fanin": driver},
                    )
                for in_rising, out_rising, delay in calc.transition_edges(
                    driver, name
                ):
                    base = rise[driver] if in_rising else fall[driver]
                    if base == NEG_INF:
                        continue
                    candidate = base + delay
                    if candidate != candidate:
                        # NaN delay or NaN upstream state: keep it
                        # visible for the guard's sanity checkpoint
                        # instead of letting max() swallow it.
                        saw_nan = True
                        continue
                    if out_rising:
                        best_rise = max(best_rise, candidate)
                    else:
                        best_fall = max(best_fall, candidate)
            if best_rise == NEG_INF and best_fall == NEG_INF:
                if saw_nan:
                    best_rise = NAN
                    best_fall = NAN
                else:
                    # Silently storing -inf would poison every
                    # downstream max(); name the gate instead.
                    raise TimingError(
                        f"gate {name!r} is unreachable under the "
                        f"rise/fall transition edges of its fanins "
                        f"{sorted(set(gate.fanins))}",
                        payload={
                            "gate": name,
                            "fanins": sorted(set(gate.fanins)),
                        },
                    )
            rise[name] = best_rise
            fall[name] = best_fall
        return {
            name: max(rise[name], fall[name])
            for name in rise
        }

    def forward_arrival(self, name: str) -> float:
        """``D^f``: latest arrival at the output of gate ``name``."""
        metrics.count("sta.forward.query")
        if self._forward is None:
            metrics.count("sta.forward.compute")
            self._forward = self._compute_forward()
        try:
            return self._forward[name]
        except KeyError:
            raise KeyError(f"no forward arrival for {name!r}") from None

    def endpoint_arrival(self, endpoint: str) -> float:
        """Latest data arrival at an endpoint (flop D pin / PO)."""
        gate = self.netlist[endpoint]
        if gate.gtype not in (GateType.OUTPUT, GateType.DFF):
            raise ValueError(f"{endpoint!r} is not an endpoint")
        if not gate.fanins:
            raise TimingError(
                f"endpoint {endpoint!r} has no fanins: nothing arrives "
                f"at it",
                payload={"endpoint": endpoint},
            )
        return max(self.forward_arrival(d) for d in gate.fanins)

    # -- backward timing ---------------------------------------------------

    def _reverse_topo(self) -> List[str]:
        """Reverse topological order, cached until :meth:`invalidate`.

        Re-materializing ``list(reversed(topo_order()))`` per endpoint
        made every backward query pay an O(V) rebuild; the suite asks
        for hundreds of endpoint tables between invalidations.
        """
        if self._reverse_topo_cache is None:
            self._reverse_topo_cache = list(
                reversed(self.netlist.topo_order())
            )
            self._topo_index = {
                name: index
                for index, name in enumerate(self._reverse_topo_cache)
            }
        return self._reverse_topo_cache

    def _compute_backward_any(self) -> Dict[str, float]:
        calc = self.calculator
        netlist = self.netlist
        result: Dict[str, float] = {}
        for name in self._reverse_topo():
            best = NEG_INF
            for user_name in netlist.fanouts(name):
                user = netlist[user_name]
                if user.gtype in (GateType.OUTPUT, GateType.DFF):
                    best = max(best, 0.0)
                else:
                    downstream = result.get(user_name, NEG_INF)
                    if downstream != NEG_INF:
                        best = max(
                            best,
                            calc.edge_delay(name, user_name) + downstream,
                        )
            result[name] = best
        return result

    def max_backward(self, name: str) -> float:
        """``max_t D^b(name, t)`` over all endpoints (-inf if none)."""
        metrics.count("sta.backward_any.query")
        if self._backward_any is None:
            metrics.count("sta.backward_any.compute")
            self._backward_any = self._compute_backward_any()
        return self._backward_any.get(name, NEG_INF)

    def _compute_backward_to(self, endpoint: str) -> Dict[str, float]:
        gate = self.netlist[endpoint]
        if gate.gtype not in (GateType.OUTPUT, GateType.DFF):
            raise ValueError(f"{endpoint!r} is not an endpoint")
        cone = self.netlist.fanin_cone(endpoint)
        calc = self.calculator
        netlist = self.netlist
        self._reverse_topo()  # ensure the cached topo index exists
        topo_index = self._topo_index
        result: Dict[str, float] = {endpoint: 0.0}
        # Only the fanin cone can reach the endpoint: visiting just its
        # members (in reverse topological order) turns the per-endpoint
        # cost from O(V + E) into O(|cone| log |cone| + E_cone).
        for name in sorted(cone, key=topo_index.__getitem__):
            if name == endpoint:
                continue
            best = NEG_INF
            for user_name in netlist.fanouts(name):
                if user_name == endpoint:
                    best = max(best, 0.0)
                    continue
                if user_name not in cone:
                    continue
                user = netlist[user_name]
                if user.gtype in (GateType.OUTPUT, GateType.DFF):
                    continue  # a different endpoint
                downstream = result.get(user_name, NEG_INF)
                if downstream != NEG_INF:
                    best = max(
                        best, calc.edge_delay(name, user_name) + downstream
                    )
            result[name] = best
        return result

    def backward_delay(self, name: str, endpoint: str) -> float:
        """``D^b(name, endpoint)``; -inf when no path exists."""
        metrics.count("sta.backward_to.query")
        table = self._backward_to.get(endpoint)
        if table is None:
            metrics.count("sta.backward_to.compute")
            table = self._compute_backward_to(endpoint)
            self._backward_to[endpoint] = table
        return table.get(name, NEG_INF)

    # -- convenience ---------------------------------------------------------

    def edge_delay(self, driver: str, sink: str) -> float:
        """Scalar delay of ``sink`` driven from ``driver``."""
        return self.calculator.edge_delay(driver, sink)

    def endpoints(self) -> List[Gate]:
        """The endpoint gates (flop Ds and PO markers)."""
        return self.netlist.endpoints()

    def endpoint_arrivals(self) -> Dict[str, float]:
        """Latest data arrival of every endpoint."""
        return {
            gate.name: self.endpoint_arrival(gate.name)
            for gate in self.endpoints()
        }

    def worst_arrival(self) -> float:
        """The largest endpoint arrival (the critical delay)."""
        arrivals = self.endpoint_arrivals()
        return max(arrivals.values()) if arrivals else 0.0

    def near_critical_endpoints(
        self, window_open: float, window_close: Optional[float] = None
    ) -> List[str]:
        """Endpoints whose arrival falls after ``window_open``.

        With ``window_close`` given, arrivals beyond it are *violations*
        rather than near-critical and are still included (callers that
        need the distinction use :meth:`violations`).
        """
        names = []
        for gate in self.endpoints():
            arrival = self.endpoint_arrival(gate.name)
            if arrival > window_open + 1e-12:
                names.append(gate.name)
        return names

    def violations(self, limit: float) -> Dict[str, float]:
        """Endpoints whose arrival exceeds ``limit`` and by how much."""
        out: Dict[str, float] = {}
        for gate in self.endpoints():
            arrival = self.endpoint_arrival(gate.name)
            if arrival > limit + 1e-12:
                out[gate.name] = arrival - limit
        return out
