"""The timing engine: forward arrivals, backward delays, endpoints.

Terminology follows the paper (Section III):

* ``D^f(u)`` — maximum delay from any stage source (master latch / PI)
  to the *output* of gate ``u``;
* ``D^b(v, t)`` — maximum delay from the output of gate ``v`` to the
  endpoint ``t`` (a master latch D pin or primary output), computed
  backward from ``t``;
* endpoint arrival — ``max_u D^f(u)`` over the endpoint's fanins.

Sources launch at time 0 by default (the paper's convention: a master
always propagates data at time 0), with optional per-source offsets.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro import metrics
from repro.cells.library import Library
from repro.errors import TimingError
from repro.netlist.netlist import Gate, GateType, Netlist, NetlistEvent
from repro.sta.delay_models import (
    DelayCalculator,
    PathBasedCalculator,
    make_calculator,
)
from repro.sta.loads import LoadModel

NEG_INF = float("-inf")
NAN = float("nan")


class TimingEngine:
    """Answers the timing queries of the retiming flows.

    The engine subscribes to its netlist's change events.  In the
    default **incremental** mode, each event is translated into scoped
    cache repair: only the touched arcs are evicted and arrivals are
    re-propagated with a levelized worklist seeded at the changed
    gates, stopping wherever a recomputed value is unchanged.  Repairs
    re-run the exact per-node max/DP operations of the full pass in
    topological order, so incremental results are bit-identical to a
    from-scratch recompute — the ``incremental=False`` mode, which
    answers every event with whole-engine invalidation, is kept as the
    parity oracle.

    :meth:`invalidate` still drops everything explicitly (for callers
    that mutate the netlist behind the event layer's back, e.g. the
    fault injectors).
    """

    def __init__(
        self,
        netlist: Netlist,
        library: Optional[Library],
        model: str = "path",
        load_model: Optional[LoadModel] = None,
        source_offsets: Optional[Mapping[str, float]] = None,
        calculator: Optional[DelayCalculator] = None,
        incremental: bool = True,
    ) -> None:
        self.netlist = netlist
        self.library = library
        if calculator is not None:
            self.calculator = calculator
        else:
            if library is None:
                raise ValueError("library required unless calculator given")
            self.calculator = make_calculator(
                model, netlist, library, load_model
            )
        self.source_offsets = dict(source_offsets or {})
        self.incremental = bool(incremental)
        self._forward: Optional[Dict[str, float]] = None
        #: Per-transition arrivals of the rise/fall DP; kept alongside
        #: ``_forward`` so cone repair can re-seed from both states.
        self._rise: Optional[Dict[str, float]] = None
        self._fall: Optional[Dict[str, float]] = None
        self._backward_any: Optional[Dict[str, float]] = None
        self._backward_to: Dict[str, Dict[str, float]] = {}
        self._reverse_topo_cache: Optional[List[str]] = None
        self._topo_index: Dict[str, int] = {}
        #: Event accumulation between queries (incremental mode).
        self._pending_dirty: Set[str] = set()
        self._pending_removed: Set[str] = set()
        self._pending_structural = False
        netlist.subscribe(self)

    # -- cache management ----------------------------------------------

    def on_netlist_event(self, event: NetlistEvent) -> None:
        """React to a netlist mutation (the subscriber protocol hook)."""
        if not self.incremental:
            # Parity-oracle mode: every event costs a full recompute,
            # exactly like the historical mutate-then-invalidate flow.
            self.invalidate()
            return
        metrics.count("sta.incremental.events")
        self._pending_dirty |= event.dirty_gates(self.netlist)
        self._pending_removed.update(event.removed_gates())
        if event.structural:
            self._pending_structural = True

    def invalidate(self) -> None:
        """Drop all timing caches (after sizing)."""
        metrics.count("sta.invalidate")
        self.calculator.invalidate()
        self._forward = None
        self._rise = None
        self._fall = None
        self._backward_any = None
        self._backward_to.clear()
        self._reverse_topo_cache = None
        self._topo_index = {}
        self._pending_dirty.clear()
        self._pending_removed.clear()
        self._pending_structural = False

    def _flush_events(self) -> None:
        """Apply pending change events as scoped cache repair."""
        if not (self._pending_dirty or self._pending_removed):
            return
        dirty = self._pending_dirty
        removed = self._pending_removed
        structural = self._pending_structural
        self._pending_dirty = set()
        self._pending_removed = set()
        self._pending_structural = False
        if structural:
            # Connectivity changed: the levelization is stale.
            self._reverse_topo_cache = None
            self._topo_index = {}
        # Per-endpoint backward memos: evict only the tables whose
        # fanin cone can see a changed arc (the changed gates' fanout
        # cones), instead of the historical wholesale clear.
        if self._backward_to:
            affected: Set[str] = set(removed)
            for name in dirty:
                if name in self.netlist:
                    affected |= self.netlist.fanout_cone(name)
            for endpoint in [t for t in self._backward_to if t in affected]:
                del self._backward_to[endpoint]
        # The any-endpoint table is one O(V+E) reverse pass; rebuild it
        # lazily (it is queried between sizing passes, not inside them).
        self._backward_any = None
        if self._forward is None:
            return
        try:
            self._repair_forward(dirty, removed)
        except BaseException:
            # A repair that raises (e.g. a gate made unreachable
            # mid-mutation) must not leave half-updated arrivals; the
            # next query recomputes from scratch and reports the same
            # error a full pass would.
            self._forward = None
            self._rise = None
            self._fall = None
            raise

    # -- forward timing --------------------------------------------------

    def _source_offset(self, name: str) -> float:
        return self.source_offsets.get(name, 0.0)

    def _forward_node(self, name: str, gate: Gate,
                      arrivals: Dict[str, float]) -> float:
        """Scalar arrival of one gate from its fanins' arrivals.

        Shared by the full DP and the cone repair so both run the exact
        same float operations per node (the bit-identity argument).
        """
        if gate.is_source:
            return self._source_offset(name)
        calc = self.calculator
        best = NEG_INF
        saw_nan = False
        for driver in gate.fanins:
            if driver not in arrivals:
                raise TimingError(
                    f"gate {name!r} reads {driver!r}, which has "
                    f"no forward arrival (endpoint or outside "
                    f"the combinational cloud)",
                    payload={"gate": name, "fanin": driver},
                )
            candidate = arrivals[driver] + calc.edge_delay(
                driver, name
            )
            if candidate != candidate:
                # NaN delay: keep it visible for the guard's
                # sanity checkpoint; max() would swallow it.
                saw_nan = True
                continue
            best = max(best, candidate)
        if best == NEG_INF:
            if saw_nan:
                return NAN
            raise TimingError(
                f"gate {name!r} has no fanins to propagate "
                f"arrivals from",
                payload={"gate": name},
            )
        return best

    def _forward_node_rf(
        self,
        name: str,
        gate: Gate,
        rise: Dict[str, float],
        fall: Dict[str, float],
    ) -> Tuple[float, float]:
        """Rise/fall arrivals of one gate from its fanins' states."""
        if gate.is_source:
            offset = self._source_offset(name)
            return offset, offset
        calc = self.calculator
        best_rise = NEG_INF
        best_fall = NEG_INF
        saw_nan = False
        for driver in set(gate.fanins):
            if driver not in rise:
                raise TimingError(
                    f"gate {name!r} reads {driver!r}, which has no "
                    f"forward arrival (endpoint or outside the "
                    f"combinational cloud)",
                    payload={"gate": name, "fanin": driver},
                )
            for in_rising, out_rising, delay in calc.transition_edges(
                driver, name
            ):
                base = rise[driver] if in_rising else fall[driver]
                if base == NEG_INF:
                    continue
                candidate = base + delay
                if candidate != candidate:
                    # NaN delay or NaN upstream state: keep it
                    # visible for the guard's sanity checkpoint
                    # instead of letting max() swallow it.
                    saw_nan = True
                    continue
                if out_rising:
                    best_rise = max(best_rise, candidate)
                else:
                    best_fall = max(best_fall, candidate)
        if best_rise == NEG_INF and best_fall == NEG_INF:
            if saw_nan:
                return NAN, NAN
            # Silently storing -inf would poison every
            # downstream max(); name the gate instead.
            raise TimingError(
                f"gate {name!r} is unreachable under the "
                f"rise/fall transition edges of its fanins "
                f"{sorted(set(gate.fanins))}",
                payload={
                    "gate": name,
                    "fanins": sorted(set(gate.fanins)),
                },
            )
        return best_rise, best_fall

    def _compute_forward(self) -> Dict[str, float]:
        calc = self.calculator
        if isinstance(calc, PathBasedCalculator):
            return self._compute_forward_rf()
        self._rise = None
        self._fall = None
        arrivals: Dict[str, float] = {}
        for name in self.netlist.topo_order():
            gate = self.netlist[name]
            if gate.gtype is GateType.OUTPUT:
                continue
            arrivals[name] = self._forward_node(name, gate, arrivals)
        return arrivals

    def _compute_forward_rf(self) -> Dict[str, float]:
        """Two-state (rise/fall) forward DP for the path-based model."""
        calc = self.calculator
        if not isinstance(calc, PathBasedCalculator):
            raise TimingError(
                f"rise/fall forward DP needs a path-based calculator, "
                f"got {type(calc).__name__}"
            )
        rise: Dict[str, float] = {}
        fall: Dict[str, float] = {}
        for name in self.netlist.topo_order():
            gate = self.netlist[name]
            if gate.gtype is GateType.OUTPUT:
                continue
            rise[name], fall[name] = self._forward_node_rf(
                name, gate, rise, fall
            )
        self._rise = rise
        self._fall = fall
        return {
            name: max(rise[name], fall[name])
            for name in rise
        }

    def _repair_forward(self, dirty: Set[str], removed: Set[str]) -> None:
        """Re-propagate arrivals from the changed gates only.

        Seeds are the dirty gates plus their direct fanouts (the sinks
        of every possibly-changed arc); nodes pop off a heap keyed by
        topological index so each is recomputed at most once, after all
        of its upstream repairs.  Propagation past a node stops when its
        recomputed value equals the cached one.
        """
        assert self._forward is not None
        netlist = self.netlist
        forward = self._forward
        rf = isinstance(self.calculator, PathBasedCalculator)
        rise = self._rise
        fall = self._fall
        if rf and (rise is None or fall is None):
            # Rise/fall state lost (e.g. engine restored from pickle):
            # repair is impossible, fall back to a full recompute.
            self._forward = None
            return
        for name in removed:
            forward.pop(name, None)
            if rf:
                rise.pop(name, None)
                fall.pop(name, None)
        seeds: Set[str] = set()
        for name in dirty:
            if name not in netlist:
                continue
            seeds.add(name)
            seeds.update(netlist.fanouts(name))
        if not seeds:
            return
        self._reverse_topo()  # (re)build the cached topo index
        index = self._topo_index
        size = len(index)
        # _topo_index maps into the *reversed* order, so forward
        # topological priority is size - reverse_index.
        heap = [
            (size - index[name], name) for name in seeds if name in index
        ]
        heapq.heapify(heap)
        queued = {name for _, name in heap}
        recomputed = 0
        while heap:
            _, name = heapq.heappop(heap)
            gate = netlist[name]
            if gate.gtype is GateType.OUTPUT:
                continue
            recomputed += 1
            if rf:
                new_rise, new_fall = self._forward_node_rf(
                    name, gate, rise, fall
                )
                # != is deliberately NaN-propagating: a NaN result
                # always counts as changed and keeps flowing downstream.
                changed = (
                    name not in rise
                    or rise[name] != new_rise
                    or fall[name] != new_fall
                )
                rise[name] = new_rise
                fall[name] = new_fall
                forward[name] = max(new_rise, new_fall)
            else:
                new_value = self._forward_node(name, gate, forward)
                changed = name not in forward or forward[name] != new_value
                forward[name] = new_value
            if not changed:
                continue
            for user in netlist.fanouts(name):
                if user in queued or user not in index:
                    continue
                queued.add(user)
                heapq.heappush(heap, (size - index[user], user))
        metrics.count("sta.incremental.nodes_recomputed", recomputed)

    def forward_arrival(self, name: str) -> float:
        """``D^f``: latest arrival at the output of gate ``name``."""
        metrics.count("sta.forward.query")
        self._flush_events()
        if self._forward is None:
            metrics.count("sta.forward.compute")
            metrics.count("sta.full_recompute")
            self._forward = self._compute_forward()
        try:
            return self._forward[name]
        except KeyError:
            raise KeyError(f"no forward arrival for {name!r}") from None

    def endpoint_arrival(self, endpoint: str) -> float:
        """Latest data arrival at an endpoint (flop D pin / PO)."""
        gate = self.netlist[endpoint]
        if gate.gtype not in (GateType.OUTPUT, GateType.DFF):
            raise ValueError(f"{endpoint!r} is not an endpoint")
        if not gate.fanins:
            raise TimingError(
                f"endpoint {endpoint!r} has no fanins: nothing arrives "
                f"at it",
                payload={"endpoint": endpoint},
            )
        return max(self.forward_arrival(d) for d in gate.fanins)

    # -- backward timing ---------------------------------------------------

    def _reverse_topo(self) -> List[str]:
        """Reverse topological order, cached until :meth:`invalidate`.

        Re-materializing ``list(reversed(topo_order()))`` per endpoint
        made every backward query pay an O(V) rebuild; the suite asks
        for hundreds of endpoint tables between invalidations.
        """
        if self._reverse_topo_cache is None:
            self._reverse_topo_cache = list(
                reversed(self.netlist.topo_order())
            )
            self._topo_index = {
                name: index
                for index, name in enumerate(self._reverse_topo_cache)
            }
        return self._reverse_topo_cache

    def _compute_backward_any(self) -> Dict[str, float]:
        calc = self.calculator
        netlist = self.netlist
        result: Dict[str, float] = {}
        for name in self._reverse_topo():
            best = NEG_INF
            for user_name in netlist.fanouts(name):
                user = netlist[user_name]
                if user.gtype in (GateType.OUTPUT, GateType.DFF):
                    best = max(best, 0.0)
                else:
                    downstream = result.get(user_name, NEG_INF)
                    if downstream != NEG_INF:
                        best = max(
                            best,
                            calc.edge_delay(name, user_name) + downstream,
                        )
            result[name] = best
        return result

    def max_backward(self, name: str) -> float:
        """``max_t D^b(name, t)`` over all endpoints (-inf if none)."""
        metrics.count("sta.backward_any.query")
        self._flush_events()
        if self._backward_any is None:
            metrics.count("sta.backward_any.compute")
            self._backward_any = self._compute_backward_any()
        return self._backward_any.get(name, NEG_INF)

    def _compute_backward_to(self, endpoint: str) -> Dict[str, float]:
        gate = self.netlist[endpoint]
        if gate.gtype not in (GateType.OUTPUT, GateType.DFF):
            raise ValueError(f"{endpoint!r} is not an endpoint")
        cone = self.netlist.fanin_cone(endpoint)
        calc = self.calculator
        netlist = self.netlist
        self._reverse_topo()  # ensure the cached topo index exists
        topo_index = self._topo_index
        result: Dict[str, float] = {endpoint: 0.0}
        # Only the fanin cone can reach the endpoint: visiting just its
        # members (in reverse topological order) turns the per-endpoint
        # cost from O(V + E) into O(|cone| log |cone| + E_cone).
        for name in sorted(cone, key=topo_index.__getitem__):
            if name == endpoint:
                continue
            best = NEG_INF
            for user_name in netlist.fanouts(name):
                if user_name == endpoint:
                    best = max(best, 0.0)
                    continue
                if user_name not in cone:
                    continue
                user = netlist[user_name]
                if user.gtype in (GateType.OUTPUT, GateType.DFF):
                    continue  # a different endpoint
                downstream = result.get(user_name, NEG_INF)
                if downstream != NEG_INF:
                    best = max(
                        best, calc.edge_delay(name, user_name) + downstream
                    )
            result[name] = best
        return result

    def backward_delay(self, name: str, endpoint: str) -> float:
        """``D^b(name, endpoint)``; -inf when no path exists."""
        metrics.count("sta.backward_to.query")
        self._flush_events()
        table = self._backward_to.get(endpoint)
        if table is None:
            metrics.count("sta.backward_to.compute")
            table = self._compute_backward_to(endpoint)
            self._backward_to[endpoint] = table
        return table.get(name, NEG_INF)

    # -- convenience ---------------------------------------------------------

    def edge_delay(self, driver: str, sink: str) -> float:
        """Scalar delay of ``sink`` driven from ``driver``."""
        return self.calculator.edge_delay(driver, sink)

    def endpoints(self) -> List[Gate]:
        """The endpoint gates (flop Ds and PO markers)."""
        return self.netlist.endpoints()

    def endpoint_arrivals(self) -> Dict[str, float]:
        """Latest data arrival of every endpoint."""
        return {
            gate.name: self.endpoint_arrival(gate.name)
            for gate in self.endpoints()
        }

    def worst_arrival(self) -> float:
        """The largest endpoint arrival (the critical delay)."""
        arrivals = self.endpoint_arrivals()
        return max(arrivals.values()) if arrivals else 0.0

    def near_critical_endpoints(
        self, window_open: float, window_close: Optional[float] = None
    ) -> List[str]:
        """Endpoints whose arrival falls after ``window_open``.

        With ``window_close`` given, arrivals beyond it are *violations*
        rather than near-critical and are still included (callers that
        need the distinction use :meth:`violations`).
        """
        names = []
        for gate in self.endpoints():
            arrival = self.endpoint_arrival(gate.name)
            if arrival > window_open + 1e-12:
                names.append(gate.name)
        return names

    def violations(self, limit: float) -> Dict[str, float]:
        """Endpoints whose arrival exceeds ``limit`` and by how much."""
        out: Dict[str, float] = {}
        for gate in self.endpoints():
            arrival = self.endpoint_arrival(gate.name)
            if arrival > limit + 1e-12:
                out[gate.name] = arrival - limit
        return out

    def endpoint_slacks(self, limit: float) -> Dict[str, float]:
        """Per-endpoint slack against ``limit`` (negative = violating).

        The fragility analyzer's view of the design: unlike
        :meth:`violations` it reports *every* endpoint, so rankings
        can order the safely-met ones too.
        """
        return {
            gate.name: limit - self.endpoint_arrival(gate.name)
            for gate in self.endpoints()
        }
