"""The timing engine: forward arrivals, backward delays, endpoints.

Terminology follows the paper (Section III):

* ``D^f(u)`` — maximum delay from any stage source (master latch / PI)
  to the *output* of gate ``u``;
* ``D^b(v, t)`` — maximum delay from the output of gate ``v`` to the
  endpoint ``t`` (a master latch D pin or primary output), computed
  backward from ``t``;
* endpoint arrival — ``max_u D^f(u)`` over the endpoint's fanins.

Sources launch at time 0 by default (the paper's convention: a master
always propagates data at time 0), with optional per-source offsets.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.cells.library import Library
from repro.errors import TimingError
from repro.netlist.netlist import Gate, GateType, Netlist
from repro.sta.delay_models import (
    DelayCalculator,
    PathBasedCalculator,
    make_calculator,
)
from repro.sta.loads import LoadModel

NEG_INF = float("-inf")


class TimingEngine:
    """Answers the timing queries of the retiming flows.

    All results are cached and recomputed lazily after
    :meth:`invalidate` (called by the sizing engine after cell swaps).
    """

    def __init__(
        self,
        netlist: Netlist,
        library: Optional[Library],
        model: str = "path",
        load_model: Optional[LoadModel] = None,
        source_offsets: Optional[Mapping[str, float]] = None,
        calculator: Optional[DelayCalculator] = None,
    ) -> None:
        self.netlist = netlist
        self.library = library
        if calculator is not None:
            self.calculator = calculator
        else:
            if library is None:
                raise ValueError("library required unless calculator given")
            self.calculator = make_calculator(
                model, netlist, library, load_model
            )
        self.source_offsets = dict(source_offsets or {})
        self._forward: Optional[Dict[str, float]] = None
        self._backward_any: Optional[Dict[str, float]] = None
        self._backward_to: Dict[str, Dict[str, float]] = {}

    # -- cache management ----------------------------------------------

    def invalidate(self) -> None:
        """Drop all timing caches (after sizing)."""
        self.calculator.invalidate()
        self._forward = None
        self._backward_any = None
        self._backward_to.clear()

    # -- forward timing --------------------------------------------------

    def _source_offset(self, name: str) -> float:
        return self.source_offsets.get(name, 0.0)

    def _compute_forward(self) -> Dict[str, float]:
        calc = self.calculator
        if isinstance(calc, PathBasedCalculator):
            return self._compute_forward_rf()
        arrivals: Dict[str, float] = {}
        for name in self.netlist.topo_order():
            gate = self.netlist[name]
            if gate.is_source:
                arrivals[name] = self._source_offset(name)
            elif gate.gtype is GateType.OUTPUT:
                continue
            else:
                arrivals[name] = max(
                    arrivals[d] + calc.edge_delay(d, name)
                    for d in gate.fanins
                )
        return arrivals

    def _compute_forward_rf(self) -> Dict[str, float]:
        """Two-state (rise/fall) forward DP for the path-based model."""
        calc = self.calculator
        if not isinstance(calc, PathBasedCalculator):
            raise TimingError(
                f"rise/fall forward DP needs a path-based calculator, "
                f"got {type(calc).__name__}"
            )
        rise: Dict[str, float] = {}
        fall: Dict[str, float] = {}
        for name in self.netlist.topo_order():
            gate = self.netlist[name]
            if gate.is_source:
                offset = self._source_offset(name)
                rise[name] = offset
                fall[name] = offset
                continue
            if gate.gtype is GateType.OUTPUT:
                continue
            best_rise = NEG_INF
            best_fall = NEG_INF
            for driver in set(gate.fanins):
                for in_rising, out_rising, delay in calc.transition_edges(
                    driver, name
                ):
                    base = rise[driver] if in_rising else fall[driver]
                    if base == NEG_INF:
                        continue
                    candidate = base + delay
                    if out_rising:
                        best_rise = max(best_rise, candidate)
                    else:
                        best_fall = max(best_fall, candidate)
            rise[name] = best_rise
            fall[name] = best_fall
        return {
            name: max(rise[name], fall[name])
            for name in rise
        }

    def forward_arrival(self, name: str) -> float:
        """``D^f``: latest arrival at the output of gate ``name``."""
        if self._forward is None:
            self._forward = self._compute_forward()
        try:
            return self._forward[name]
        except KeyError:
            raise KeyError(f"no forward arrival for {name!r}") from None

    def endpoint_arrival(self, endpoint: str) -> float:
        """Latest data arrival at an endpoint (flop D pin / PO)."""
        gate = self.netlist[endpoint]
        if gate.gtype not in (GateType.OUTPUT, GateType.DFF):
            raise ValueError(f"{endpoint!r} is not an endpoint")
        return max(self.forward_arrival(d) for d in gate.fanins)

    # -- backward timing ---------------------------------------------------

    def _reverse_topo(self) -> List[str]:
        return list(reversed(self.netlist.topo_order()))

    def _compute_backward_any(self) -> Dict[str, float]:
        calc = self.calculator
        netlist = self.netlist
        result: Dict[str, float] = {}
        for name in self._reverse_topo():
            best = NEG_INF
            for user_name in netlist.fanouts(name):
                user = netlist[user_name]
                if user.gtype in (GateType.OUTPUT, GateType.DFF):
                    best = max(best, 0.0)
                else:
                    downstream = result.get(user_name, NEG_INF)
                    if downstream != NEG_INF:
                        best = max(
                            best,
                            calc.edge_delay(name, user_name) + downstream,
                        )
            result[name] = best
        return result

    def max_backward(self, name: str) -> float:
        """``max_t D^b(name, t)`` over all endpoints (-inf if none)."""
        if self._backward_any is None:
            self._backward_any = self._compute_backward_any()
        return self._backward_any.get(name, NEG_INF)

    def _compute_backward_to(self, endpoint: str) -> Dict[str, float]:
        gate = self.netlist[endpoint]
        if gate.gtype not in (GateType.OUTPUT, GateType.DFF):
            raise ValueError(f"{endpoint!r} is not an endpoint")
        cone = self.netlist.fanin_cone(endpoint)
        calc = self.calculator
        netlist = self.netlist
        result: Dict[str, float] = {endpoint: 0.0}
        for name in self._reverse_topo():
            if name not in cone or name == endpoint:
                continue
            best = NEG_INF
            for user_name in netlist.fanouts(name):
                if user_name == endpoint:
                    best = max(best, 0.0)
                    continue
                if user_name not in cone:
                    continue
                user = netlist[user_name]
                if user.gtype in (GateType.OUTPUT, GateType.DFF):
                    continue  # a different endpoint
                downstream = result.get(user_name, NEG_INF)
                if downstream != NEG_INF:
                    best = max(
                        best, calc.edge_delay(name, user_name) + downstream
                    )
            result[name] = best
        return result

    def backward_delay(self, name: str, endpoint: str) -> float:
        """``D^b(name, endpoint)``; -inf when no path exists."""
        table = self._backward_to.get(endpoint)
        if table is None:
            table = self._compute_backward_to(endpoint)
            self._backward_to[endpoint] = table
        return table.get(name, NEG_INF)

    # -- convenience ---------------------------------------------------------

    def edge_delay(self, driver: str, sink: str) -> float:
        """Scalar delay of ``sink`` driven from ``driver``."""
        return self.calculator.edge_delay(driver, sink)

    def endpoints(self) -> List[Gate]:
        """The endpoint gates (flop Ds and PO markers)."""
        return self.netlist.endpoints()

    def endpoint_arrivals(self) -> Dict[str, float]:
        """Latest data arrival of every endpoint."""
        return {
            gate.name: self.endpoint_arrival(gate.name)
            for gate in self.endpoints()
        }

    def worst_arrival(self) -> float:
        """The largest endpoint arrival (the critical delay)."""
        arrivals = self.endpoint_arrivals()
        return max(arrivals.values()) if arrivals else 0.0

    def near_critical_endpoints(
        self, window_open: float, window_close: Optional[float] = None
    ) -> List[str]:
        """Endpoints whose arrival falls after ``window_open``.

        With ``window_close`` given, arrivals beyond it are *violations*
        rather than near-critical and are still included (callers that
        need the distinction use :meth:`violations`).
        """
        names = []
        for gate in self.endpoints():
            arrival = self.endpoint_arrival(gate.name)
            if arrival > window_open + 1e-12:
                names.append(gate.name)
        return names

    def violations(self, limit: float) -> Dict[str, float]:
        """Endpoints whose arrival exceeds ``limit`` and by how much."""
        out: Dict[str, float] = {}
        for gate in self.endpoints():
            arrival = self.endpoint_arrival(gate.name)
            if arrival > limit + 1e-12:
                out[gate.name] = arrival - limit
        return out
