"""Worst-path extraction — the ``report_timing`` of the substrate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import TimingError
from repro.netlist.netlist import GateType
from repro.sta.engine import TimingEngine


@dataclass(frozen=True)
class TimingPath:
    """One maximal-delay path from a source to an endpoint."""

    gates: Tuple[str, ...]
    arrival: float

    @property
    def startpoint(self) -> str:
        """The launching source gate of the path."""
        return self.gates[0]

    @property
    def endpoint(self) -> str:
        """The terminating endpoint of the path."""
        return self.gates[-1]

    def __len__(self) -> int:
        return len(self.gates)

    def pretty(self, engine: Optional[TimingEngine] = None) -> str:
        """Human-readable path report (one line per gate)."""
        lines = [f"Path to {self.endpoint} (arrival {self.arrival:.4f})"]
        cumulative = 0.0
        previous = None
        for gate in self.gates:
            if engine is not None and previous is not None:
                cumulative += engine.edge_delay(previous, gate)
                lines.append(f"  {gate:<24s} {cumulative:10.4f}")
            else:
                lines.append(f"  {gate}")
            previous = gate
        return "\n".join(lines)


def worst_path(engine: TimingEngine, endpoint: str) -> TimingPath:
    """Trace the critical path into ``endpoint`` by walking arrivals."""
    netlist = engine.netlist
    gate = netlist[endpoint]
    if gate.gtype not in (GateType.OUTPUT, GateType.DFF):
        raise ValueError(f"{endpoint!r} is not an endpoint")

    arrival = engine.endpoint_arrival(endpoint)
    path: List[str] = [endpoint]
    # Pick the fanin realizing the endpoint arrival, then walk back.
    current = max(gate.fanins, key=engine.forward_arrival)
    path.append(current)
    while not netlist[current].is_source:
        fanins = netlist[current].fanins
        target = engine.forward_arrival(current)
        best = None
        best_error = float("inf")
        for driver in fanins:
            predicted = engine.forward_arrival(driver) + engine.edge_delay(
                driver, current
            )
            error = abs(predicted - target)
            if error < best_error:
                best_error = error
                best = driver
        if best is None:
            raise TimingError(
                f"path reconstruction stuck at {current!r}: no fanin "
                f"reproduces its arrival (inconsistent timing cache?)"
            )
        path.append(best)
        current = best
    path.reverse()
    return TimingPath(gates=tuple(path), arrival=arrival)


def critical_paths(engine: TimingEngine, count: int = 5) -> List[TimingPath]:
    """The ``count`` worst endpoint paths, sorted by arrival."""
    endpoints = sorted(
        engine.endpoints(),
        key=lambda g: engine.endpoint_arrival(g.name),
        reverse=True,
    )
    return [worst_path(engine, g.name) for g in endpoints[:count]]
