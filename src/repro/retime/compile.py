"""Compiled G-RAR problems: cache the c-independent work of a sweep.

The overhead sweep (Table VII, the VI-D trade-off curve) solves the
same G-RAR instance once per ``c`` — yet regions (Section IV-B), the
per-master cut sets ``g(t)`` (IV-C), and the retiming-graph skeleton
(IV-A) do not depend on ``c`` at all: only the ``P(t) -> host`` credit
breadth carries it, entering the flow problem through node *demands*,
never arc costs.  This module compiles that invariant part once per
circuit and re-costs it per sweep point:

* :func:`repro.store.circuit_fingerprint` — a content hash over
  everything the invariant part *does* depend on (netlist structure
  and cells, clock scheme, latch timing, delay model, library content,
  conflict policy).  Re-sized netlists (the rescue pass changes gate
  cells, and its budget is c-dependent) therefore miss the cache —
  correctly.
* :func:`compile_retiming` — fetches/builds compiled problems through
  the ambient :class:`~repro.store.ArtifactStore` (namespace
  ``"compiled-grar"``); emits ``retime.compile.{hits,misses}``.  With
  a persistent store, compiled problems land on disk and successive
  CLI invocations (and ProcessPool workers sharing the directory)
  hit across process boundaries.
* :class:`CompiledRetiming` — regions + cut sets + graph skeleton,
  plus the previous sweep point's optimal simplex basis
  (``last_basis``) so the next solve can warm-start.

Parity: with the cache *off* every solve recomputes and cold-starts —
the bit-exact oracle.  With it *on*, :func:`recost_graph` reproduces
``build_retiming_graph`` exactly (same node and edge order), and the
solver canonicalizes its dual potentials, so ``r_values``, objective,
placement and EDL sets are identical either way (asserted by
``tests/test_retime_compile.py`` and the CI parity job) — including
when the compiled problem was unpickled from disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import metrics
from repro.latches.resilient import TwoPhaseCircuit
from repro.retime.cutset import CutSet, compute_cut_sets
from repro.retime.graph import (
    RetimingGraph,
    build_retiming_graph,
    recost_graph,
)
from repro.retime.regions import Regions, compute_regions
from repro.retime.simplex import WarmBasis
from repro.store import ArtifactStore, circuit_fingerprint, get_store

__all__ = [
    "CompiledRetiming",
    "NAMESPACE",
    "circuit_fingerprint",
    "clear_cache",
    "compile_retiming",
]

#: The artifact-store namespace compiled problems live in.
NAMESPACE = "compiled-grar"


@dataclass
class CompiledRetiming:
    """The c-independent two thirds of a G-RAR problem."""

    fingerprint: str
    circuit_name: str
    conflict_policy: str
    regions: Regions
    cut_sets: Dict[str, CutSet]
    #: Graph built at the first requested overhead; re-costed per c.
    skeleton: RetimingGraph
    #: Optimal basis of the most recent solve of this problem — arc
    #: costs are identical across the sweep, so it warm-starts the
    #: next overhead's simplex.  Updated in place by ``grar_retime``.
    last_basis: Optional[WarmBasis] = field(default=None)

    def graph_for(self, overhead: float) -> RetimingGraph:
        """The full G-RAR graph at ``overhead`` (credit re-cost only)."""
        return recost_graph(self.skeleton, overhead)


def compile_retiming(
    circuit: TwoPhaseCircuit,
    overhead: float,
    conflict_policy: str = "error",
    store: Optional[ArtifactStore] = None,
) -> CompiledRetiming:
    """Fetch or build the compiled problem for ``circuit``.

    ``overhead`` seeds the skeleton on a cache miss (any positive
    value yields the same skeleton modulo credit breadths, which
    :func:`recost_graph` patches per solve); it must be positive, as
    the c=0 graph has no pseudo nodes and is not resiliency-aware.
    ``store`` overrides the ambient artifact store (workers pass
    their own).
    """
    if overhead <= 0:
        raise ValueError("compile_retiming requires overhead > 0")
    store = store if store is not None else get_store()
    key = circuit_fingerprint(circuit, conflict_policy)
    entry = store.get(NAMESPACE, key)
    if entry is not None:
        metrics.count("retime.compile.hits")
        return entry
    metrics.count("retime.compile.misses")
    regions = compute_regions(circuit, conflict_policy=conflict_policy)
    cut_sets = compute_cut_sets(circuit, regions)
    skeleton = build_retiming_graph(
        circuit, regions, cut_sets=cut_sets, overhead=overhead
    )
    entry = CompiledRetiming(
        fingerprint=key,
        circuit_name=circuit.netlist.name,
        conflict_policy=conflict_policy,
        regions=regions,
        cut_sets=cut_sets,
        skeleton=skeleton,
    )
    # Seed the warm start from a sibling problem of the same circuit
    # (e.g. the pristine problem, when the rescue pass resized a few
    # gates and forced this miss): the simplex validates the basis
    # shape and repairs primal feasibility, and the canonical dual
    # potentials make the result independent of the seed.
    for other in reversed(store.memory_values(NAMESPACE)):
        if (
            other.circuit_name == entry.circuit_name
            and other.conflict_policy == entry.conflict_policy
            and other.last_basis is not None
            and len(other.skeleton.nodes) == len(skeleton.nodes)
            and len(other.skeleton.edges) == len(skeleton.edges)
        ):
            entry.last_basis = other.last_basis
            metrics.count("retime.compile.basis_seeded")
            break
    store.put(NAMESPACE, key, entry)
    return entry


def clear_cache() -> None:
    """Drop the in-memory compiled problems (tests and the cache-off
    oracle).  Disk artifacts of a persistent store are kept — use
    ``ArtifactStore.clear(NAMESPACE)`` / ``repro cache clear`` for
    those."""
    get_store().clear_memory(NAMESPACE)
