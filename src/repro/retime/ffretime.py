"""Flop-level min-area retiming — the movable-master extension.

Section V notes the VL approach trivially extends to moving master
latches too: releasing the tool's do-not-retime constraint lets its
retimer reposition the flops themselves.  Table IX evaluates this.

This module implements that tool capability: classic Leiserson-Saxe
min-area retiming of the *flop* netlist (each flop = master+slave
pair), solved with the same network simplex and made timing-legal by
lazy constraint generation — solve, check the longest register-free
path against the period, add the violated path constraints, repeat.

The retimed netlist is rebuilt with flop chains shared across fanouts
(one chain per driver, tapped at each sink's depth), after which the
ordinary fixed-master flows run on it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence, Set, Tuple

from repro.cells.library import Library
from repro.netlist.netlist import Gate, GateType, Netlist
from repro.retime.simplex import NetworkSimplex
from repro.sta.delay_models import make_calculator

HOST = "__ffhost__"


@dataclass(frozen=True)
class FfEdge:
    """One flop-collapsed edge of the retiming graph."""
    tail: str
    head: str
    weight: int  # flops currently on the connection


@dataclass
class FfRetimeResult:
    """Outcome of a flop-level retiming."""
    netlist: Netlist
    r_values: Dict[str, int]
    moved: int
    flops_before: int
    flops_after: int
    rounds: int
    runtime_s: float = 0.0

    @property
    def changed(self) -> bool:
        """True when any flop actually moved."""
        return self.moved > 0


def _collapse_flops(netlist: Netlist) -> Tuple[List[FfEdge], Dict[str, str]]:
    """Edges of the flop-retiming graph.

    Walking back through DFF chains from every comb gate / PO fanin
    yields edges ``(comb-or-PI, comb-or-PO, #flops)``.  Returns the
    edges plus a map from each DFF name to its ultimate comb/PI driver
    (used when rebuilding).
    """
    edges: List[FfEdge] = []
    flop_driver: Dict[str, str] = {}

    def resolve(name: str) -> Tuple[str, int]:
        count = 0
        current = name
        while netlist[current].gtype is GateType.DFF:
            count += 1
            current = netlist[current].fanins[0]
        return current, count

    for gate in netlist:
        if gate.gtype in (GateType.COMB, GateType.OUTPUT):
            for fanin in gate.fanins:
                driver, count = resolve(fanin)
                edges.append(FfEdge(driver, gate.name, count))
    for flop in netlist.flops():
        driver, _ = resolve(flop.name)
        flop_driver[flop.name] = driver
    return edges, flop_driver


def _path_constraints_for_period(
    netlist: Netlist,
    library: Library,
    edges: Sequence[FfEdge],
    r_values: Dict[str, int],
    period: float,
    model: str = "path",
) -> List[Tuple[str, str, int]]:
    """Violated-path constraints under the current labels.

    Runs a register-free-path DP over the retimed weights: the arrival
    at a gate resets to zero across an edge carrying a flop.  For every
    point where the register-free delay exceeds ``period``, the worst
    contributing path segment yields a constraint
    ``r(seg_start) - r(seg_end) <= w_original(segment) - 1``.
    """
    calc = make_calculator(model, netlist, library)

    def w_r(edge: FfEdge) -> int:
        return (
            edge.weight
            + r_values.get(edge.head, 0)
            - r_values.get(edge.tail, 0)
        )

    nodes: Set[str] = set()
    zero_in: Dict[str, List[FfEdge]] = {}
    indegree: Dict[str, int] = {}
    all_in: Dict[str, List[FfEdge]] = {}
    for edge in edges:
        nodes.add(edge.tail)
        nodes.add(edge.head)
        all_in.setdefault(edge.head, []).append(edge)
        if w_r(edge) == 0:
            zero_in.setdefault(edge.head, []).append(edge)
            indegree[edge.head] = indegree.get(edge.head, 0) + 1

    # The register-free subgraph must be acyclic; a register-free cycle
    # is a hard violation whose edges get flops forced back.
    order: List[str] = [n for n in nodes if indegree.get(n, 0) == 0]
    head = 0
    seen: Set[str] = set(order)
    zero_out: Dict[str, List[FfEdge]] = {}
    for edge in edges:
        if w_r(edge) == 0:
            zero_out.setdefault(edge.tail, []).append(edge)
    while head < len(order):
        current = order[head]
        head += 1
        for edge in zero_out.get(current, []):
            indegree[edge.head] -= 1
            if indegree[edge.head] == 0 and edge.head not in seen:
                seen.add(edge.head)
                order.append(edge.head)
    constraints: Set[Tuple[str, str, int]] = set()
    if len(order) < len(nodes):
        for edge in edges:
            if w_r(edge) == 0 and (
                edge.tail not in seen or edge.head not in seen
            ):
                constraints.add(
                    (edge.tail, edge.head, max(0, edge.weight - 1))
                )
        return sorted(constraints)

    def own_delay(name: str) -> float:
        gate = netlist[name]
        if not gate.is_comb:
            return 0.0
        return max(calc.edge_delay(d, name) for d in set(gate.fanins))

    # arrival = longest register-free delay ending at the gate output;
    # origin = the segment start realizing it plus the original flop
    # count accumulated along the realizing segment.
    arrival: Dict[str, float] = {}
    origin: Dict[str, Tuple[str, int]] = {}
    for name in order:
        delay_here = own_delay(name)
        best = delay_here
        best_origin = (name, 0)
        for edge in all_in.get(name, []):
            if w_r(edge) >= 1:
                continue  # the flop resets the register-free path
            prev = arrival.get(edge.tail)
            if prev is None:
                continue
            candidate = prev + delay_here
            if candidate > best:
                best = candidate
                prev_origin, prev_w = origin[edge.tail]
                best_origin = (prev_origin, prev_w + edge.weight)
        arrival[name] = best
        origin[name] = best_origin
        if best > period + 1e-12:
            seg_start, seg_w = best_origin
            if seg_start != name:
                constraints.add((seg_start, name, max(0, seg_w - 1)))
    return sorted(constraints)


def ff_retime_min_area(
    netlist: Netlist,
    library: Library,
    period: float,
    model: str = "path",
    max_rounds: int = 8,
    max_shift: int = 2,
) -> FfRetimeResult:
    """Min-area flop retiming subject to a max register-free delay."""
    started = time.perf_counter()
    edges, _ = _collapse_flops(netlist)
    nodes = {HOST}
    for edge in edges:
        nodes.add(edge.tail)
        nodes.add(edge.head)
    # PIs and POs stay where they are (the environment is fixed).
    fixed = {
        g.name
        for g in netlist
        if g.gtype in (GateType.INPUT, GateType.OUTPUT)
    }

    from repro.retime.simplex import InfeasibleFlowError

    extra: Set[Tuple[str, str, int]] = set()
    r_values: Dict[str, int] = {name: 0 for name in nodes}
    rounds = 0
    for round_index in range(max_rounds):
        rounds = round_index + 1
        try:
            r_values = _solve_ff_lp(edges, nodes, fixed, extra, max_shift)
        except InfeasibleFlowError:
            r_values = {name: 0 for name in nodes}
            break
        violated = _path_constraints_for_period(
            netlist, library, edges, r_values, period, model
        )
        fresh = [c for c in violated if c not in extra]
        if not fresh:
            break
        extra.update(fresh)
    else:
        # Could not close timing: fall back to the identity retiming.
        r_values = {name: 0 for name in nodes}

    moved = sum(1 for v in r_values.values() if v != 0)
    new_netlist = (
        apply_ff_retiming(netlist, library, edges, r_values)
        if moved
        else netlist.copy()
    )
    if moved and len(new_netlist.flops()) > len(netlist.flops()):
        # The tool would not accept a retiming that worsens its own
        # objective; keep the original positions.
        r_values = {name: 0 for name in nodes}
        moved = 0
        new_netlist = netlist.copy()
    return FfRetimeResult(
        netlist=new_netlist,
        r_values=r_values,
        moved=moved,
        flops_before=len(netlist.flops()),
        flops_after=len(new_netlist.flops()),
        rounds=rounds,
        runtime_s=time.perf_counter() - started,
    )


def _solve_ff_lp(
    edges: Sequence[FfEdge],
    nodes: Set[str],
    fixed: Set[str],
    extra: Set[Tuple[str, str, int]],
    max_shift: int,
) -> Dict[str, int]:
    """Min-area retiming labels via the min-cost-flow dual."""
    # Fanout sharing: breadth 1/k per driver fanout edge (no mirror
    # nodes here — flop chains are shared at rebuild time and the 1/k
    # model is the classic approximation for this substrate).
    fanout_count: Dict[str, int] = {}
    for edge in edges:
        fanout_count[edge.tail] = fanout_count.get(edge.tail, 0) + 1

    arcs: List[Tuple[str, str, int]] = []
    demands: Dict[str, Fraction] = {name: Fraction(0) for name in nodes}

    def add_arc(tail: str, head: str, cost: int, breadth: Fraction) -> None:
        arcs.append((tail, head, cost))
        demands[tail] -= breadth
        demands[head] += breadth

    for edge in edges:
        share = Fraction(1, fanout_count[edge.tail])
        add_arc(edge.tail, edge.head, edge.weight, share)
    for tail, head, bound in extra:
        add_arc(tail, head, bound, Fraction(0))
    for name in nodes:
        if name == HOST:
            continue
        upper = 0 if name in fixed else max_shift
        lower = 0 if name in fixed else -max_shift
        add_arc(name, HOST, upper, Fraction(0))
        add_arc(HOST, name, -lower, Fraction(0))

    simplex = NetworkSimplex(sorted(nodes), arcs, demands)
    result = simplex.solve()
    host_pot = result.potentials[HOST]
    return {name: result.potentials[name] - host_pot for name in nodes}


def apply_ff_retiming(
    netlist: Netlist,
    library: Library,
    edges: Sequence[FfEdge],
    r_values: Dict[str, int],
) -> Netlist:
    """Rebuild the netlist with flops at their retimed positions."""
    def w_r(edge: FfEdge) -> int:
        value = (
            edge.weight
            + r_values.get(edge.head, 0)
            - r_values.get(edge.tail, 0)
        )
        if value < 0:
            raise ValueError(
                f"illegal retiming: edge {edge.tail}->{edge.head} gets "
                f"{value} flops"
            )
        return value

    chain_depth: Dict[str, int] = {}
    for edge in edges:
        chain_depth[edge.tail] = max(
            chain_depth.get(edge.tail, 0), w_r(edge)
        )

    ff_cell = library.default_flip_flop().name
    rebuilt = Netlist(netlist.name)
    for gate in netlist.inputs():
        rebuilt.add(Gate(gate.name, GateType.INPUT))

    def tap(driver: str, depth: int) -> str:
        return driver if depth == 0 else f"{driver}__ff{depth}"

    # Combinational gates keep their cells; each fanin is resolved to
    # its original comb/PI driver and re-tapped at its retimed depth
    # (per pin, so parallel edges with different flop counts survive).
    def resolve(fanin: str) -> Tuple[str, int]:
        count = 0
        current = fanin
        while netlist[current].gtype is GateType.DFF:
            count += 1
            current = netlist[current].fanins[0]
        return current, count

    for name in netlist.topo_order():
        gate = netlist[name]
        if gate.gtype is not GateType.COMB:
            continue
        taps = []
        for fanin in gate.fanins:
            driver, count = resolve(fanin)
            depth = (
                count
                + r_values.get(name, 0)
                - r_values.get(driver, 0)
            )
            taps.append(tap(driver, depth))
        rebuilt.add(
            Gate(name, GateType.COMB, tuple(taps), cell=gate.cell)
        )

    # Flop chains.
    for driver, depth in sorted(chain_depth.items()):
        for k in range(1, depth + 1):
            rebuilt.add(
                Gate(
                    tap(driver, k),
                    GateType.DFF,
                    (tap(driver, k - 1),),
                    cell=ff_cell,
                )
            )

    for gate in netlist.outputs():
        driver, count = resolve(gate.fanins[0])
        depth = count + r_values.get(gate.name, 0) - r_values.get(driver, 0)
        rebuilt.add(
            Gate(gate.name, GateType.OUTPUT, (tap(driver, depth),))
        )
    rebuilt.topo_order()  # validate
    return rebuilt
