"""Multi-backend min-cost-flow with a resilient fallback chain.

The retiming dual (eq. 14) is solved by the in-house network simplex.
Production runs cannot afford a single solver breakdown (iteration
budget, cycling, wall-clock deadline) killing a whole table suite, so
this module wraps three interchangeable backends behind one entry
point, :func:`solve_min_cost_flow`:

* ``simplex`` — :class:`repro.retime.simplex.NetworkSimplex`, exact
  Fraction arithmetic, returns dual potentials directly;
* ``scipy`` — ``scipy.optimize.linprog`` (HiGHS) on the arc-flow LP;
  the conservation matrix is totally unimodular, so vertex solutions
  are integral in scaled units;
* ``networkx`` — ``networkx.network_simplex`` on a ``MultiDiGraph``.

The chain tries backends in order; genuine *problem* verdicts
(infeasible / unbounded) propagate immediately — a different backend
cannot fix an infeasible instance — while *solver* breakdowns fall
through to the next backend.  Every attempt is recorded in the result
for diagnosis, and ``cross_check`` mode runs all backends and demands
exact objective agreement.

Backends that only return a flow (scipy, networkx) recover the dual
potentials by a Bellman-Ford pass over the residual graph: at
optimality the residual has no negative cycle, so shortest distances
exist, are integral (integer costs), and satisfy both dual
feasibility and complementary slackness.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro import metrics
from repro.errors import (
    InfeasibleFlowError,
    SolverError,
    UnboundedFlowError,
)
from repro.retime.simplex import Arc, NetworkSimplex, Node, WarmBasis

try:  # pragma: no cover - import guard
    from scipy.optimize import linprog as _linprog
    from scipy.sparse import csr_matrix as _csr_matrix

    _HAS_SCIPY = True
except ImportError:  # pragma: no cover - scipy is baked into the image
    _HAS_SCIPY = False

try:  # pragma: no cover - import guard
    import networkx as _nx

    _HAS_NETWORKX = True
except ImportError:  # pragma: no cover
    _HAS_NETWORKX = False

#: Backend order of the default fallback chain.
BACKENDS = ("simplex", "scipy", "networkx")

#: Largest demand-denominator lcm the scaled-integer formulations
#: accept (matches :class:`NetworkSimplex`'s internal threshold).
_MAX_SCALE = 10**12


@dataclass(frozen=True)
class SolverPolicy:
    """Knobs of the fallback chain.

    ``verify`` re-checks the winning solution's primal/dual
    certificate (conservation, non-negativity, reduced costs,
    complementary slackness) before returning it — the runtime
    counterpart of the unit tests' ``NetworkSimplex.verify``.
    """

    backends: Tuple[str, ...] = BACKENDS
    max_iterations: Optional[int] = None
    deadline_s: Optional[float] = None
    cross_check: bool = False
    verify: bool = False

    def with_defaults(
        self, max_iterations: Optional[int]
    ) -> "SolverPolicy":
        """Fill an unset iteration cap from a legacy argument."""
        if max_iterations is None or self.max_iterations is not None:
            return self
        return SolverPolicy(
            backends=self.backends,
            max_iterations=max_iterations,
            deadline_s=self.deadline_s,
            cross_check=self.cross_check,
            verify=self.verify,
        )


DEFAULT_POLICY = SolverPolicy()


@dataclass
class BackendAttempt:
    """Record of one backend invocation inside the chain."""

    backend: str
    status: str  # "ok" | "failed" | "unavailable"
    time_s: float = 0.0
    error: Optional[str] = None
    error_type: Optional[str] = None
    objective: Optional[Fraction] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form for failure reports."""
        return {
            "backend": self.backend,
            "status": self.status,
            "time_s": round(self.time_s, 6),
            "error": self.error,
            "error_type": self.error_type,
            "objective": (
                str(self.objective) if self.objective is not None else None
            ),
        }


@dataclass
class MinCostFlowResult:
    """Optimal flow, potentials and provenance of the answer."""

    flows: Dict[int, Fraction]
    potentials: Dict[Node, int]
    objective: Fraction
    backend: str
    iterations: int = 0
    attempts: List[BackendAttempt] = field(default_factory=list)
    #: Optimal spanning-tree basis (simplex backend only) — feed it to
    #: the next solve of a structurally identical problem to warm-start.
    basis: Optional[WarmBasis] = None


def _scaled_demands(
    nodes: Sequence[Node], demands: Dict[Node, Fraction]
) -> Tuple[int, Dict[Node, int]]:
    """Scale (possibly fractional) demands to integers.

    The common denominator is the lcm of the fanout degrees in the
    retiming use case, hence small; anything beyond ``_MAX_SCALE`` is
    rejected rather than silently rounded.
    """
    total = Fraction(0)
    raw = {node: Fraction(demands.get(node, 0)) for node in nodes}
    scale = 1
    for value in raw.values():
        total += value
        scale = math.lcm(scale, value.denominator)
        if scale > _MAX_SCALE:
            raise SolverError(
                "demand denominators exceed the integer-scaling limit "
                f"({_MAX_SCALE})"
            )
    if total != 0:
        raise InfeasibleFlowError(f"demands do not balance (sum = {total})")
    return scale, {node: int(value * scale) for node, value in raw.items()}


def _potentials_from_flow(
    nodes: Sequence[Node],
    arcs: Sequence[Arc],
    flows: Dict[int, int],
) -> Dict[Node, int]:
    """Recover *canonical* optimal dual potentials from an optimal flow.

    Queue-based Bellman-Ford (SPFA) shortest distances from an
    implicit super-source over the residual graph (all distances start
    at 0).  Optimality of the flow means no negative residual cycle,
    so the distances exist and are integral; ``pi(v) = -dist(v)`` then
    satisfies the reduced-cost conditions exactly.

    These potentials are canonical: the optimal-dual set of a min-cost
    flow is the same for every optimal primal flow (complementary
    slackness pins the tight constraints), and the shortest distances
    are its unique pointwise-extreme element — so the result does not
    depend on which backend produced the flow, whether the simplex was
    warm-started, or which of several optimal bases it stopped at.
    Every backend routes its potentials through here, which is what
    makes sweep-cached solves bit-identical to the cold oracle.
    """
    dist = {node: 0 for node in nodes}
    adjacency: Dict[Node, List[Tuple[Node, int]]] = {
        node: [] for node in nodes
    }
    for index, (tail, head, cost) in enumerate(arcs):
        adjacency[tail].append((head, int(cost)))
        if flows.get(index, 0) > 0:
            adjacency[head].append((tail, -int(cost)))

    queue = deque(nodes)
    queued = {node: True for node in nodes}
    enqueues = {node: 1 for node in nodes}
    limit = len(nodes) + 1
    while queue:
        u = queue.popleft()
        queued[u] = False
        du = dist[u]
        for v, cost in adjacency[u]:
            candidate = du + cost
            if candidate < dist[v]:
                dist[v] = candidate
                if not queued[v]:
                    enqueues[v] += 1
                    if enqueues[v] > limit:
                        raise SolverError(
                            "potential recovery found a negative residual "
                            "cycle — the claimed-optimal flow is not optimal"
                        )
                    queued[v] = True
                    queue.append(v)
    return {node: -dist[node] for node in nodes}


def verify_solution(
    nodes: Sequence[Node],
    arcs: Sequence[Arc],
    demands: Dict[Node, Fraction],
    result: MinCostFlowResult,
) -> List[str]:
    """Primal/dual certificate check; empty list means certified."""
    problems: List[str] = []
    balance: Dict[Node, Fraction] = {node: Fraction(0) for node in nodes}
    total = Fraction(0)
    for index, value in result.flows.items():
        tail, head, cost = arcs[index]
        if value < 0:
            problems.append(f"arc {index} has negative flow {value}")
        balance[tail] -= value
        balance[head] += value
        total += value * cost
    for node in nodes:
        expected = Fraction(demands.get(node, 0))
        if balance[node] != expected:
            problems.append(
                f"node {node!r}: balance {balance[node]} != demand "
                f"{expected}"
            )
    if total != result.objective:
        problems.append(
            f"objective {result.objective} != recomputed cost {total}"
        )
    for index, (tail, head, cost) in enumerate(arcs):
        rc = cost - result.potentials[tail] + result.potentials[head]
        if rc < 0:
            problems.append(f"arc {index} has negative reduced cost {rc}")
        if rc > 0 and result.flows.get(index, Fraction(0)) != 0:
            problems.append(f"arc {index} violates complementary slackness")
    return problems


# -- backends ---------------------------------------------------------------


def _solve_simplex(
    nodes: Sequence[Node],
    arcs: Sequence[Arc],
    demands: Dict[Node, Fraction],
    policy: SolverPolicy,
    warm_basis: Optional[WarmBasis] = None,
) -> MinCostFlowResult:
    simplex = NetworkSimplex(
        nodes,
        arcs,
        demands,
        max_iterations=policy.max_iterations,
        deadline_s=policy.deadline_s,
        warm_basis=warm_basis,
    )
    result = simplex.solve()
    # Canonicalize the duals: a warm start (or any alternative optimal
    # basis) may stop at a different vertex than a cold start; routing
    # through the residual-graph shortest distances makes the returned
    # potentials a function of the *problem*, not the solve path.
    potentials = _potentials_from_flow(nodes, arcs, result.flows)
    return MinCostFlowResult(
        flows=result.flows,
        potentials=potentials,
        objective=result.objective,
        backend="simplex",
        iterations=result.iterations,
        basis=simplex.export_basis(),
    )


def _solve_scipy(
    nodes: Sequence[Node],
    arcs: Sequence[Arc],
    demands: Dict[Node, Fraction],
    policy: SolverPolicy,
    warm_basis: Optional[WarmBasis] = None,
) -> MinCostFlowResult:
    if not _HAS_SCIPY:
        raise SolverError("scipy backend unavailable")
    scale, scaled = _scaled_demands(nodes, demands)
    index = {node: i for i, node in enumerate(nodes)}
    n, m = len(nodes), len(arcs)

    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    costs: List[float] = []
    for j, (tail, head, cost) in enumerate(arcs):
        rows.extend((index[tail], index[head]))
        cols.extend((j, j))
        data.extend((-1.0, 1.0))
        costs.append(float(cost))
    a_eq = _csr_matrix((data, (rows, cols)), shape=(n, max(m, 1)))
    b_eq = [float(scaled[node]) for node in nodes]
    outcome = _linprog(
        c=costs or [0.0],
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs",
    )
    if not outcome.success:
        if outcome.status == 2:
            raise InfeasibleFlowError(
                f"scipy/HiGHS: infeasible ({outcome.message})"
            )
        if outcome.status == 3:
            raise UnboundedFlowError(
                f"scipy/HiGHS: unbounded ({outcome.message})"
            )
        raise SolverError(f"scipy/HiGHS failed: {outcome.message}")

    int_flows: Dict[int, int] = {}
    for j in range(m):
        value = float(outcome.x[j])
        snapped = round(value)
        if abs(value - snapped) > 1e-6:
            raise SolverError(
                f"scipy/HiGHS returned fractional flow {value} on arc "
                f"{j} — total unimodularity violated"
            )
        if snapped:
            int_flows[j] = snapped
    potentials = _potentials_from_flow(nodes, arcs, int_flows)
    flows = {
        j: Fraction(value, scale) for j, value in int_flows.items()
    }
    objective = sum(
        (value * arcs[j][2] for j, value in flows.items()), Fraction(0)
    )
    return MinCostFlowResult(
        flows=flows,
        potentials=potentials,
        objective=objective,
        backend="scipy",
        iterations=int(getattr(outcome, "nit", 0) or 0),
    )


def _solve_networkx(
    nodes: Sequence[Node],
    arcs: Sequence[Arc],
    demands: Dict[Node, Fraction],
    policy: SolverPolicy,
    warm_basis: Optional[WarmBasis] = None,
) -> MinCostFlowResult:
    if not _HAS_NETWORKX:
        raise SolverError("networkx backend unavailable")
    scale, scaled = _scaled_demands(nodes, demands)
    graph = _nx.MultiDiGraph()
    for node in nodes:
        graph.add_node(node, demand=scaled[node])
    for j, (tail, head, cost) in enumerate(arcs):
        graph.add_edge(tail, head, key=j, weight=int(cost))
    try:
        _, flow_dict = _nx.network_simplex(graph)
    except _nx.NetworkXUnfeasible as exc:
        raise InfeasibleFlowError(f"networkx: infeasible ({exc})") from exc
    except _nx.NetworkXUnbounded as exc:
        raise UnboundedFlowError(f"networkx: unbounded ({exc})") from exc
    except _nx.NetworkXError as exc:
        raise SolverError(f"networkx failed: {exc}") from exc

    int_flows: Dict[int, int] = {}
    for tail, sinks in flow_dict.items():
        for head, keyed in sinks.items():
            for key, value in keyed.items():
                if value:
                    int_flows[key] = int(value)
    potentials = _potentials_from_flow(nodes, arcs, int_flows)
    flows = {
        j: Fraction(value, scale) for j, value in int_flows.items()
    }
    objective = sum(
        (value * arcs[j][2] for j, value in flows.items()), Fraction(0)
    )
    return MinCostFlowResult(
        flows=flows,
        potentials=potentials,
        objective=objective,
        backend="networkx",
    )


_BACKEND_FUNCS = {
    "simplex": _solve_simplex,
    "scipy": _solve_scipy,
    "networkx": _solve_networkx,
}


# -- the chain --------------------------------------------------------------


def solve_min_cost_flow(
    nodes: Sequence[Node],
    arcs: Sequence[Arc],
    demands: Dict[Node, Fraction],
    policy: SolverPolicy = DEFAULT_POLICY,
    warm_basis: Optional[WarmBasis] = None,
) -> MinCostFlowResult:
    """Solve with the fallback chain described in the module docstring.

    ``warm_basis`` (a previous solve's optimal basis over the *same*
    arc list) is honored by the simplex backend and silently ignored
    by the flow-only fallbacks — every backend's potentials are
    canonicalized, so the answer is warm/cold-invariant either way.

    Raises :class:`InfeasibleFlowError` / :class:`UnboundedFlowError`
    as soon as any backend proves the *problem* is bad, and
    :class:`SolverError` (with every attempt recorded in its payload)
    when all backends break down.
    """
    chain_started = time.perf_counter()
    attempts: List[BackendAttempt] = []
    winner: Optional[MinCostFlowResult] = None
    last_error: Optional[SolverError] = None
    for backend in policy.backends:
        func = _BACKEND_FUNCS.get(backend)
        if func is None:
            raise SolverError(
                f"unknown solver backend {backend!r}; choose from "
                f"{sorted(_BACKEND_FUNCS)}"
            )
        started = time.perf_counter()
        try:
            result = func(nodes, arcs, demands, policy, warm_basis)
        except (InfeasibleFlowError, UnboundedFlowError) as exc:
            # A verdict about the problem itself: retrying with a
            # different backend cannot change it.
            metrics.count(f"mcf.verdict.{type(exc).__name__}")
            exc.payload.setdefault(
                "attempts", [a.to_dict() for a in attempts]
            )
            exc.payload.setdefault("backend", backend)
            raise
        except SolverError as exc:
            last_error = exc
            metrics.count(f"mcf.attempt.{backend}.failed")
            attempts.append(
                BackendAttempt(
                    backend=backend,
                    status="failed",
                    time_s=time.perf_counter() - started,
                    error=str(exc),
                    error_type=type(exc).__name__,
                )
            )
            continue
        metrics.count(f"mcf.attempt.{backend}.ok")
        attempts.append(
            BackendAttempt(
                backend=backend,
                status="ok",
                time_s=time.perf_counter() - started,
                objective=result.objective,
            )
        )
        if winner is None:
            winner = result
            if not policy.cross_check:
                break

    if winner is None:
        if len(attempts) == 1 and last_error is not None:
            # A single-backend policy: the original (more specific)
            # error is strictly more informative than an aggregate.
            last_error.payload.setdefault(
                "attempts", [a.to_dict() for a in attempts]
            )
            raise last_error
        raise SolverError(
            "all min-cost-flow backends failed: "
            + "; ".join(
                f"{a.backend}: {a.error}" for a in attempts
            ),
            payload={"attempts": [a.to_dict() for a in attempts]},
        )

    if policy.cross_check:
        answered = [a for a in attempts if a.status == "ok"]
        objectives = {a.objective for a in answered}
        if len(objectives) > 1:
            raise SolverError(
                "backend objective mismatch: "
                + ", ".join(
                    f"{a.backend}={a.objective}" for a in answered
                ),
                payload={"attempts": [a.to_dict() for a in attempts]},
            )

    if policy.verify:
        problems = verify_solution(nodes, arcs, demands, winner)
        if problems:
            raise SolverError(
                f"{winner.backend} solution failed certification: "
                + "; ".join(problems[:5]),
                payload={
                    "problems": problems,
                    "backend": winner.backend,
                },
            )

    metrics.count(f"mcf.solved.{winner.backend}")
    metrics.count("mcf.solves")
    metrics.count("mcf.wall_s", time.perf_counter() - chain_started)
    winner.attempts = attempts
    return winner
