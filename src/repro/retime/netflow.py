"""Eq. (14): the min-cost-flow dual of the retiming ILP.

Node demands come from the breadths (eq. 11/13): ``X(v) = -B(v)`` with
``B(v) = sum_out beta - sum_in beta`` over *all* edges (the pseudo-node
identities ``X(P(t)) = c`` and ``X(h) = -B(h) - c|V2|`` of the paper
fall out of this generic form).  Arc costs are the edge weights; the
[24] bound edges carry their ``U`` / ``-L`` costs.  Solving with the
network simplex yields integral node potentials; the retiming labels
are recovered as ``r(v) = pot(v) - pot(host)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.latches.placement import HOST
from repro.retime.graph import RetimingGraph
from repro.retime.simplex import NetworkSimplex, SimplexResult


@dataclass
class FlowSolution:
    """Retiming labels and diagnostics from the flow solve."""

    r_values: Dict[str, int]
    objective: Fraction
    flow_objective: Fraction
    iterations: int
    simplex: SimplexResult

    def r(self, name: str) -> int:
        """The retiming label of ``name`` (0 for unknown nodes)."""
        return self.r_values.get(name, 0)


def build_demands(graph: RetimingGraph) -> Dict[str, Fraction]:
    """Node demands ``X(v) = -B(v)`` from the breadths."""
    demands: Dict[str, Fraction] = {name: Fraction(0) for name in graph.nodes}
    for edge in graph.edges:
        # X(v) = -B(v); B(v) = sum_out beta - sum_in beta, so every
        # edge adds +beta to its tail's demand and -beta to its head's.
        demands[edge.tail] -= edge.breadth
        demands[edge.head] += edge.breadth
    return demands


def build_demands_paper_form(graph: RetimingGraph) -> Dict[str, Fraction]:
    """The demands written exactly as eq. (14) states them.

    Used by tests to confirm the generic :func:`build_demands` agrees
    with the paper's per-node-type formulas.
    """
    from repro.retime.graph import EdgeKind

    b_e1: Dict[str, Fraction] = {name: Fraction(0) for name in graph.nodes}
    for edge in graph.edges:
        if edge.kind in (EdgeKind.CUT, EdgeKind.CREDIT):
            continue
        b_e1[edge.tail] += edge.breadth
        b_e1[edge.head] -= edge.breadth

    pseudo = set(graph.pseudo_nodes.values())
    demands: Dict[str, Fraction] = {}
    for name in graph.nodes:
        if name == HOST:
            demands[name] = -b_e1[name] - graph.overhead * len(pseudo)
        elif name in pseudo:
            demands[name] = Fraction(graph.overhead)
        else:
            demands[name] = -b_e1[name]
    return demands


def solve_retiming_flow(
    graph: RetimingGraph, max_iterations: Optional[int] = None
) -> FlowSolution:
    """Solve the retiming graph via the min-cost-flow dual."""
    demands = build_demands(graph)
    arcs: List[Tuple[str, str, int]] = [
        (edge.tail, edge.head, edge.weight) for edge in graph.edges
    ]
    simplex = NetworkSimplex(
        graph.nodes, arcs, demands, max_iterations=max_iterations
    )
    result = simplex.solve()

    host_pot = result.potentials[HOST]
    r_values = {
        name: result.potentials[name] - host_pot for name in graph.nodes
    }

    violated = graph.check_feasible(r_values)
    if violated:
        raise RuntimeError(
            f"flow solution violates {len(violated)} retiming constraints; "
            f"first: {violated[0]}"
        )
    out_of_bounds = {
        name: r_values[name]
        for name, (lo, hi) in graph.bounds.items()
        if not lo <= r_values[name] <= hi
    }
    if out_of_bounds:
        raise RuntimeError(
            f"flow potentials escape their bounds: "
            f"{dict(list(out_of_bounds.items())[:5])}"
        )
    objective = graph.objective_value(r_values)
    return FlowSolution(
        r_values=r_values,
        objective=objective,
        flow_objective=result.objective,
        iterations=result.iterations,
        simplex=result,
    )
