"""Eq. (14): the min-cost-flow dual of the retiming ILP.

Node demands come from the breadths (eq. 11/13): ``X(v) = -B(v)`` with
``B(v) = sum_out beta - sum_in beta`` over *all* edges (the pseudo-node
identities ``X(P(t)) = c`` and ``X(h) = -B(h) - c|V2|`` of the paper
fall out of this generic form).  Arc costs are the edge weights; the
[24] bound edges carry their ``U`` / ``-L`` costs.  The flow is solved
through :mod:`repro.retime.mincostflow`'s fallback chain (network
simplex → scipy → networkx); whichever backend answers, its integral
node potentials yield the retiming labels as
``r(v) = pot(v) - pot(host)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.errors import SolverError
from repro.latches.placement import HOST
from repro.retime.graph import RetimingGraph
from repro.retime.mincostflow import (
    DEFAULT_POLICY,
    BackendAttempt,
    SolverPolicy,
    solve_min_cost_flow,
)
from repro.retime.simplex import SimplexResult, WarmBasis


@dataclass
class FlowSolution:
    """Retiming labels and diagnostics from the flow solve."""

    r_values: Dict[str, int]
    objective: Fraction
    flow_objective: Fraction
    iterations: int
    simplex: Optional[SimplexResult] = None
    backend: str = "simplex"
    attempts: List[BackendAttempt] = field(default_factory=list)
    #: Optimal basis for warm-starting the next sweep point (simplex
    #: backend only; ``None`` from the fallback backends).
    basis: Optional[WarmBasis] = None

    def r(self, name: str) -> int:
        """The retiming label of ``name`` (0 for unknown nodes)."""
        return self.r_values.get(name, 0)


def build_demands(graph: RetimingGraph) -> Dict[str, Fraction]:
    """Node demands ``X(v) = -B(v)`` from the breadths."""
    demands: Dict[str, Fraction] = {name: Fraction(0) for name in graph.nodes}
    for edge in graph.edges:
        # X(v) = -B(v); B(v) = sum_out beta - sum_in beta, so every
        # edge adds +beta to its tail's demand and -beta to its head's.
        demands[edge.tail] -= edge.breadth
        demands[edge.head] += edge.breadth
    return demands


def build_demands_paper_form(graph: RetimingGraph) -> Dict[str, Fraction]:
    """The demands written exactly as eq. (14) states them.

    Used by tests to confirm the generic :func:`build_demands` agrees
    with the paper's per-node-type formulas.
    """
    from repro.retime.graph import EdgeKind

    b_e1: Dict[str, Fraction] = {name: Fraction(0) for name in graph.nodes}
    for edge in graph.edges:
        if edge.kind in (EdgeKind.CUT, EdgeKind.CREDIT):
            continue
        b_e1[edge.tail] += edge.breadth
        b_e1[edge.head] -= edge.breadth

    pseudo = set(graph.pseudo_nodes.values())
    demands: Dict[str, Fraction] = {}
    for name in graph.nodes:
        if name == HOST:
            demands[name] = -b_e1[name] - graph.overhead * len(pseudo)
        elif name in pseudo:
            demands[name] = Fraction(graph.overhead)
        else:
            demands[name] = -b_e1[name]
    return demands


def solve_retiming_flow(
    graph: RetimingGraph,
    max_iterations: Optional[int] = None,
    policy: Optional[SolverPolicy] = None,
    warm_basis: Optional[WarmBasis] = None,
) -> FlowSolution:
    """Solve the retiming graph via the min-cost-flow dual.

    ``policy`` configures the solver-fallback chain; by default the
    in-house network simplex answers, with scipy and networkx standing
    by should it break down.  ``warm_basis`` — an optimal basis from a
    previous overhead of the *same compiled problem* — lets the
    simplex skip its artificial cold start; the returned solution
    carries the new optimal basis for the next sweep point.
    """
    demands = build_demands(graph)
    arcs: List[Tuple[str, str, int]] = [
        (edge.tail, edge.head, edge.weight) for edge in graph.edges
    ]
    effective = (policy or DEFAULT_POLICY).with_defaults(max_iterations)
    result = solve_min_cost_flow(
        graph.nodes, arcs, demands, effective, warm_basis=warm_basis
    )

    host_pot = result.potentials[HOST]
    r_values = {
        name: result.potentials[name] - host_pot for name in graph.nodes
    }

    violated = graph.check_feasible(r_values)
    if violated:
        raise SolverError(
            f"flow solution violates {len(violated)} retiming constraints; "
            f"first: {violated[0]}",
            payload={"backend": result.backend},
        )
    out_of_bounds = {
        name: r_values[name]
        for name, (lo, hi) in graph.bounds.items()
        if not lo <= r_values[name] <= hi
    }
    if out_of_bounds:
        raise SolverError(
            f"flow potentials escape their bounds: "
            f"{dict(list(out_of_bounds.items())[:5])}",
            payload={"backend": result.backend},
        )
    objective = graph.objective_value(r_values)
    return FlowSolution(
        r_values=r_values,
        objective=objective,
        flow_objective=result.objective,
        iterations=result.iterations,
        backend=result.backend,
        attempts=result.attempts,
        basis=result.basis,
    )
