"""Per-master cut sets ``g(t)`` (Section IV-A).

For a target master ``t``, ``g(t)`` is the frontier of gates such that
moving all slave latches beyond ``g(t)`` makes every latch position in
``t``'s fan-in cone satisfy ``A(u, v, t) <= Pi`` — so ``t`` need not be
error-detecting.

The computation walks backward from ``t`` (the paper's reverse DFS) and
maintains the *safe region* ``R``: nodes all of whose downstream latch
positions inside the cone are safe.  An edge that can never legally
carry a latch (its driver is in ``Vn``, or its sink in ``Vm``) is
vacuously safe.  ``g(t)`` is then the fan-in frontier of ``R``.  Three
outcomes per endpoint:

* ``NEVER`` — the whole cone is safe (frontier empty): the master is
  non-error-detecting wherever the slaves go;
* ``ALWAYS`` — some position adjacent to ``t`` cannot be made safe:
  the master is error-detecting regardless of retiming (as far as the
  encoding can prove — the paper's formulation is equally
  conservative);
* ``TARGET`` — the EDL status depends on the retiming: a pseudo node
  ``P(t)`` with a ``-c`` credit edge enters the retiming graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Optional, Set

from repro.latches.placement import HOST
from repro.latches.resilient import EPS, TwoPhaseCircuit
from repro.netlist.netlist import GateType
from repro.retime.regions import Regions


class EndpointClass(Enum):
    """NEVER / ALWAYS / TARGET classification of a master."""
    NEVER = "never"
    ALWAYS = "always"
    TARGET = "target"


@dataclass(frozen=True)
class CutSet:
    """Classification and cut set of one endpoint."""

    endpoint: str
    kind: EndpointClass
    gates: FrozenSet[str]

    @property
    def is_target(self) -> bool:
        """True when a pseudo node P(t) should be created."""
        return self.kind is EndpointClass.TARGET


def _edge_can_carry_latch(
    circuit: TwoPhaseCircuit, regions: Regions, driver: str, sink: str
) -> bool:
    """Whether edge ``(driver, sink)`` can hold a slave in some legal
    retiming: it needs ``r(driver) = -1`` (host edges: ``r(sink) = 0``)
    and ``r(sink) = 0``."""
    if driver == HOST:
        return sink not in regions.vm
    if driver in regions.vn:
        return False
    sink_gate = circuit.netlist[sink]
    if sink_gate.gtype in (GateType.OUTPUT, GateType.DFF):
        # The sink is a fixed master (D-endpoint role, r = 0), so the
        # edge is latchable whenever the driver can be retimed through.
        return True
    if sink in regions.vm:
        return False
    return True


def compute_cut_set(
    circuit: TwoPhaseCircuit,
    regions: Regions,
    endpoint: str,
    limit: Optional[float] = None,
) -> CutSet:
    """Compute ``g(endpoint)`` with the safe-region reverse walk.

    ``limit`` is the arrival bound a safe position must meet; it
    defaults to ``Pi`` (the resiliency-window opening), which is the
    G-RAR credit condition.  The timing-driven baseline and the VL
    constraints reuse the same walk with their own bounds.
    """
    netlist = circuit.netlist
    scheme = circuit.scheme
    if limit is None:
        limit = scheme.window_open
    limit = limit + EPS

    cone = netlist.fanin_cone(endpoint)
    cone.discard(endpoint)

    def edge_safe(driver: str, sink: str) -> bool:
        if not _edge_can_carry_latch(circuit, regions, driver, sink):
            return True  # vacuous: no latch can ever sit here
        return circuit.arrival_through(driver, sink, endpoint) <= limit

    # Safe region R, computed in reverse topological order: a node is
    # in R when every cone fanout edge is safe and leads into R.
    order = [n for n in netlist.topo_order() if n in cone]
    in_r: Dict[str, bool] = {}
    for name in reversed(order):
        ok = True
        for user in netlist.fanouts(name):
            if user == endpoint:
                if not edge_safe(name, endpoint):
                    ok = False
                    break
                continue
            if user not in cone:
                continue
            if netlist[user].gtype in (GateType.OUTPUT, GateType.DFF):
                # D-pin of a different master: another stage's edge,
                # irrelevant to this endpoint (the user is in the cone
                # only through its Q role).
                continue
            if not (edge_safe(name, user) and in_r.get(user, False)):
                ok = False
                break
        in_r[name] = ok

    # The endpoint itself must be fully covered: every fanin edge safe
    # with an R predecessor, otherwise the credit encoding cannot
    # guarantee non-EDL status and t is (conservatively) always-EDL.
    for driver in netlist[endpoint].fanins:
        if not (edge_safe(driver, endpoint) and in_r.get(driver, False)):
            return CutSet(endpoint, EndpointClass.ALWAYS, frozenset())

    frontier: Set[str] = set()
    for name in cone:
        if not in_r.get(name, False):
            continue
        gate = netlist[name]
        if gate.is_source:
            if not edge_safe(HOST, name):
                frontier.add(name)
            continue
        for driver in gate.fanins:
            if not (edge_safe(driver, name) and in_r.get(driver, False)):
                frontier.add(name)
                break

    if not frontier:
        return CutSet(endpoint, EndpointClass.NEVER, frozenset())
    if any(g in regions.vn for g in frontier):
        # The credit needs every frontier gate retimed through, but a
        # Vn member is pinned at r = 0: the credit is unreachable and
        # the master is error-detecting regardless.
        return CutSet(endpoint, EndpointClass.ALWAYS, frozenset())
    return CutSet(endpoint, EndpointClass.TARGET, frozenset(frontier))


def compute_cut_sets(
    circuit: TwoPhaseCircuit,
    regions: Regions,
    limit: Optional[float] = None,
) -> Dict[str, CutSet]:
    """Cut sets for every endpoint of the circuit.

    Endpoints whose plain combinational arrival already meets the
    bound even from the initial latch position are fast-pathed as
    ``NEVER`` without cone analysis (the common case on large
    circuits).
    """
    results: Dict[str, CutSet] = {}
    floor = circuit.scheme.slave_open + circuit.latch_ck_q
    if limit is None:
        limit = circuit.scheme.window_open
    limit = limit + EPS
    for endpoint in circuit.endpoint_names:
        plain = circuit.engine.endpoint_arrival(endpoint)
        # Quick accept: for any latch position on any path to t,
        # A <= max(floor + tail, path_delay + d_q) <= the bound below,
        # so when it meets Pi the endpoint is NEVER error-detecting and
        # the expensive cone walk can be skipped.
        bound = max(floor + plain, plain + circuit.latch_d_q)
        if bound <= limit:
            results[endpoint] = CutSet(
                endpoint, EndpointClass.NEVER, frozenset()
            )
            continue
        results[endpoint] = compute_cut_set(
            circuit, regions, endpoint, limit=limit - EPS
        )
    return results
