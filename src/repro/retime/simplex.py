"""A network-simplex solver for uncapacitated min-cost flow.

Solves::

    min   sum_a cost(a) * x(a)
    s.t.  inflow(v) - outflow(v) = demand(v)   for every node v
          x(a) >= 0

with integer arc costs and (possibly fractional) node demands — the
exact shape of the retiming dual (eq. 14), whose demands are sums of
fanout breadths ``1/k``.  Flows are kept as :class:`fractions.Fraction`
so degenerate pivots never suffer round-off, and node potentials stay
integral because all costs are integral — which is what guarantees the
recovered retiming labels are integers (Section IV-D).

The implementation is the textbook big-M artificial-root variant
[Ahuja/Magnanti/Orlin ch. 11] with incremental tree re-rooting and a
first-eligible entering rule with a Bland fallback for anti-cycling.
"""

from __future__ import annotations

import math
import random
import time
from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro import metrics
from repro.errors import (
    InfeasibleFlowError,
    SolverError,
    SolverTimeoutError,
    UnboundedFlowError,
)

Node = Hashable
Arc = Tuple[Node, Node, int]

__all__ = [
    "Arc",
    "InfeasibleFlowError",
    "NetworkSimplex",
    "Node",
    "SimplexResult",
    "UnboundedFlowError",
    "WarmBasis",
]

#: How many pivots between wall-clock deadline checks.  The first
#: pivot always checks, so ``deadline_s=0.0`` still aborts instantly.
_DEADLINE_STRIDE = 64


@dataclass(frozen=True)
class WarmBasis:
    """The real-arc part of an optimal spanning-tree basis.

    Arc ids index the *same* arc list a later solve is built from —
    valid only across problems that share their arc structure (the
    compiled-retiming sweep, where only demands change with the
    overhead ``c``).  Nodes not covered by ``real_arcs`` hang off the
    artificial root, exactly as in a cold start.
    """

    n: int
    m: int
    real_arcs: Tuple[int, ...]


@dataclass
class SimplexResult:
    """Optimal flow, node potentials, and objective value."""

    flows: Dict[int, Fraction]
    potentials: Dict[Node, int]
    objective: Fraction
    iterations: int
    degenerate_pivots: int = 0
    bland_used: bool = False

    def potential(self, node: Node) -> int:
        """The node potential (dual value) of ``node``."""
        return self.potentials[node]


class NetworkSimplex:
    """One solver instance per problem (not reusable)."""

    def __init__(
        self,
        nodes: Sequence[Node],
        arcs: Sequence[Arc],
        demands: Dict[Node, Fraction],
        max_iterations: Optional[int] = None,
        deadline_s: Optional[float] = None,
        pivot_chaos: Optional[random.Random] = None,
        warm_basis: Optional[WarmBasis] = None,
    ) -> None:
        self.node_names = list(nodes)
        self.n = len(self.node_names)
        self.index = {name: i for i, name in enumerate(self.node_names)}
        if len(self.index) != self.n:
            raise ValueError("duplicate node names")

        self.tail: List[int] = []
        self.head: List[int] = []
        self.cost: List[int] = []
        for tail, head, cost in arcs:
            self.tail.append(self.index[tail])
            self.head.append(self.index[head])
            self.cost.append(int(cost))
        self.m = len(self.tail)

        raw = [Fraction(0)] * self.n
        total = Fraction(0)
        for name, value in demands.items():
            raw[self.index[name]] = Fraction(value)
            total += Fraction(value)
        if total != 0:
            raise InfeasibleFlowError(
                f"demands do not balance (sum = {total})"
            )
        # Scale demands to integers when the common denominator is
        # small (it is the lcm of the fanout degrees): integer flow
        # arithmetic is several times faster than Fractions and stays
        # exact.  Potentials (the retiming labels) are scale-invariant.
        # ``scale`` is always an int — the overflow path keeps Fraction
        # demands at scale 1 instead of switching the type of the
        # attribute itself.
        scale = 1
        for value in raw:
            scale = math.lcm(scale, value.denominator)
            if scale > 10**12:
                scale = 0
                break
        if scale:
            self.scale: int = scale
            self.demand = [int(v * scale) for v in raw]
        else:
            self.scale = 1
            self.demand = raw
        self.max_iterations = max_iterations or max(
            200000, 50 * (self.m + self.n)
        )
        #: Optional wall-clock budget for :meth:`solve` in seconds.
        self.deadline_s = deadline_s
        #: Fault-injection hook: an RNG that randomizes entering-arc
        #: selection (see :mod:`repro.faults`), stressing the
        #: anti-cycling safeguards.  Never set in production flows.
        self.pivot_chaos = pivot_chaos
        #: Optional basis from a previous solve of a structurally
        #: identical problem; validated (and repaired to primal
        #: feasibility) in :meth:`_build_warm_tree`.
        self.warm_basis = warm_basis
        #: True once a warm basis was accepted and installed.
        self.basis_reused = False
        self.degenerate_pivots = 0
        self.bland_used = False

    # -- public API -------------------------------------------------------

    def solve(self) -> SimplexResult:
        """Run pivots to optimality; returns flows and potentials.

        Anti-cycling is layered: a long streak of consecutive
        degenerate pivots (the signature of cycling) switches to
        Bland's rule immediately, well before the coarse halfway-budget
        fallback; Bland's rule then guarantees termination.  A
        ``deadline_s`` wall-clock budget turns pathological instances
        into a typed :class:`SolverTimeoutError` instead of a hang.

        With a ``warm_basis`` the pivot loop starts from the previous
        sweep point's optimal spanning tree instead of the big-M
        artificial star: arc costs are identical across the sweep, so
        the warm tree's potentials are already dual-feasible, and only
        the primal repair of :meth:`_build_warm_tree` (plus big-M
        pricing of any re-attached artificial arcs) stands between the
        warm start and optimality — typically a handful of pivots.
        """
        if self.warm_basis is not None:
            metrics.count("simplex.warm_start")
            self.basis_reused = self._build_warm_tree(self.warm_basis)
            if self.basis_reused:
                metrics.count("simplex.basis_reused")
        if not self.basis_reused:
            self._build_initial_tree()
        iterations = 0
        cursor = 0
        bland = False
        bland_switch = self.max_iterations // 2
        degenerate_streak = 0
        cycling_threshold = max(64, 4 * (self.n + 1))
        started = time.perf_counter()
        while True:
            entering = self._find_entering(cursor, bland)
            if entering is None:
                break
            if not bland:
                cursor = (entering + 1) % self.m
            if self._pivot(entering):
                self.degenerate_pivots += 1
                degenerate_streak += 1
                if degenerate_streak > cycling_threshold and not bland:
                    bland = True  # suspected cycling: Bland terminates
            else:
                degenerate_streak = 0
            iterations += 1
            if iterations >= bland_switch:
                bland = True  # anti-cycling fallback
            if bland:
                self.bland_used = True
            if iterations > self.max_iterations:
                raise SolverTimeoutError(
                    "network simplex exceeded iteration budget "
                    f"({self.max_iterations})",
                    payload={
                        "iterations": iterations,
                        "degenerate_pivots": self.degenerate_pivots,
                    },
                )
            if self.deadline_s is not None and (
                iterations == 1 or iterations % _DEADLINE_STRIDE == 0
            ):
                # Checking every pivot costs a perf_counter syscall in
                # the hottest loop; a stride amortizes it while the
                # first-pivot check keeps even a 0-second deadline
                # honest.
                elapsed = time.perf_counter() - started
                if elapsed > self.deadline_s:
                    raise SolverTimeoutError(
                        "network simplex exceeded wall-clock deadline "
                        f"({self.deadline_s:.3f}s) after "
                        f"{iterations} pivots",
                        payload={
                            "iterations": iterations,
                            "elapsed_s": elapsed,
                        },
                    )
        metrics.count("simplex.pivots", iterations)
        return self._extract(iterations)

    # -- initial basis ------------------------------------------------------

    def _build_initial_tree(self) -> None:
        n, m = self.n, self.m
        root = n  # artificial root node
        cmax = max([abs(c) for c in self.cost], default=0)
        big_m = 1 + (n + 1) * max(1, cmax)

        # Artificial arcs: index m + v connects node v with the root.
        self.art_tail: List[int] = []
        self.art_head: List[int] = []
        self.flow: Dict[int, Fraction] = {}
        self.parent: List[int] = [root] * (n + 1)
        self.parent_arc: List[int] = [-1] * (n + 1)
        self.depth: List[int] = [1] * (n + 1)
        self.pot: List[int] = [0] * (n + 1)
        self.children: List[set] = [set() for _ in range(n + 1)]
        self.big_m = big_m

        self.parent[root] = -1
        self.parent_arc[root] = -1
        self.depth[root] = 0

        for v in range(n):
            arc_id = m + v
            if self.demand[v] >= 0:
                # Node needs inflow: artificial arc root -> v.
                self.art_tail.append(root)
                self.art_head.append(v)
                self.flow[arc_id] = self.demand[v]
                self.pot[v] = -big_m
            else:
                self.art_tail.append(v)
                self.art_head.append(root)
                self.flow[arc_id] = -self.demand[v]
                self.pot[v] = big_m
            self.parent[v] = root
            self.parent_arc[v] = arc_id
            self.children[root].add(v)
        # Arc-indexed membership mask (real arcs then artificials):
        # O(1) branch-free lookups in the pricing loop.
        self.in_tree = bytearray(m + n)
        for arc_id in range(m, m + n):
            self.in_tree[arc_id] = 1

    def _build_warm_tree(self, basis: WarmBasis) -> bool:
        """Install a previous optimal basis; returns False to cold-start.

        The basis' real arcs are validated (ids in range, acyclic);
        any failure rejects the warm start rather than guessing.  Tree
        flows are then re-derived bottom-up from the *new* demands:
        the parent arc of every subtree must carry the subtree's
        demand sum across the cut, and a real arc whose fixed
        orientation cannot carry that sum (it would need negative
        flow) has its subtree re-attached directly to the artificial
        root through the node's own artificial arc — artificial arcs
        are rebuilt fresh each solve, so their orientation is free.
        Potentials are recomputed from the final tree (zero reduced
        cost on tree arcs), which keeps them dual-feasible wherever
        the old basis survives; the ordinary pivot loop then prices
        out whatever big-M artificial flow the repair introduced.
        """
        n, m = self.n, self.m
        if basis.n != n or basis.m != m:
            return False
        root = n
        uf = list(range(n))

        def find(x: int) -> int:
            while uf[x] != x:
                uf[x] = uf[uf[x]]
                x = uf[x]
            return x

        adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for arc in basis.real_arcs:
            if not 0 <= arc < m:
                return False
            u, v = self.tail[arc], self.head[arc]
            ru, rv = find(u), find(v)
            if ru == rv:
                return False  # cycle: not a forest
            uf[ru] = rv
            adjacency[u].append((v, arc))
            adjacency[v].append((u, arc))

        cmax = max([abs(c) for c in self.cost], default=0)
        self.big_m = 1 + (n + 1) * max(1, cmax)
        self.art_tail = []
        self.art_head = []
        for v in range(n):
            # Default orientation (as in a cold start); attachment
            # points below re-orient their own artificial arc freely.
            if self.demand[v] >= 0:
                self.art_tail.append(root)
                self.art_head.append(v)
            else:
                self.art_tail.append(v)
                self.art_head.append(root)
        self.flow = {}
        self.parent = [root] * (n + 1)
        self.parent[root] = -1
        self.parent_arc = [-1] * (n + 1)
        self.depth = [0] * (n + 1)
        self.children = [set() for _ in range(n + 1)]
        self.in_tree = bytearray(m + n)

        # Each forest component hangs off the root via the artificial
        # arc of its smallest node (deterministic attachment).
        representative: Dict[int, int] = {}
        for v in range(n):
            r = find(v)
            if r not in representative or v < representative[r]:
                representative[r] = v
        queue = deque()
        visited = [False] * n
        for rep in sorted(representative.values()):
            self.parent[rep] = root
            self.parent_arc[rep] = m + rep
            self.children[root].add(rep)
            self.in_tree[m + rep] = 1
            visited[rep] = True
            queue.append(rep)
        order: List[int] = []
        while queue:
            u = queue.popleft()
            order.append(u)
            for v, arc in adjacency[u]:
                if not visited[v]:
                    visited[v] = True
                    self.parent[v] = u
                    self.parent_arc[v] = arc
                    self.children[u].add(v)
                    self.in_tree[arc] = 1
                    queue.append(v)
        if len(order) != n:  # pragma: no cover - forest check implies this
            return False

        # Bottom-up primal repair: push each subtree's demand sum
        # through its parent arc, detaching subtrees whose real parent
        # arc points the wrong way.
        subtree = list(self.demand) + [0]
        for v in reversed(order):
            s = subtree[v]
            arc = self.parent_arc[v]
            if arc < m:
                p = self.parent[v]
                value = s if self.head[arc] == v else -s
                if value < 0:
                    # Wrong orientation for the new demands: re-route
                    # this subtree through v's artificial arc.
                    self.children[p].discard(v)
                    self.in_tree[arc] = 0
                    art = m + v
                    if s >= 0:
                        self.art_tail[v], self.art_head[v] = root, v
                    else:
                        self.art_tail[v], self.art_head[v] = v, root
                    self.parent[v] = root
                    self.parent_arc[v] = art
                    self.children[root].add(v)
                    self.in_tree[art] = 1
                    self.flow[art] = s if s >= 0 else -s
                else:
                    self.flow[arc] = value
                    subtree[p] += s
            else:
                a = arc - m
                if s >= 0:
                    self.art_tail[a], self.art_head[a] = root, v
                    self.flow[arc] = s
                else:
                    self.art_tail[a], self.art_head[a] = v, root
                    self.flow[arc] = -s

        # Depth and potentials from the final tree: every tree arc
        # gets reduced cost zero.
        self.pot = [0] * (n + 1)
        stack = [root]
        while stack:
            u = stack.pop()
            for v in self.children[u]:
                arc = self.parent_arc[v]
                cost = self.cost[arc] if arc < m else self.big_m
                if self._arc_tail(arc) == u:
                    self.pot[v] = self.pot[u] - cost
                else:
                    self.pot[v] = self.pot[u] + cost
                self.depth[v] = self.depth[u] + 1
                stack.append(v)
        return True

    def export_basis(self) -> WarmBasis:
        """The current basis' real arcs (call after :meth:`solve`)."""
        return WarmBasis(
            n=self.n,
            m=self.m,
            real_arcs=tuple(
                arc for arc in range(self.m) if self.in_tree[arc]
            ),
        )

    # -- arc helpers --------------------------------------------------------

    def _arc_tail(self, arc: int) -> int:
        if arc < self.m:
            return self.tail[arc]
        return self.art_tail[arc - self.m]

    def _arc_head(self, arc: int) -> int:
        if arc < self.m:
            return self.head[arc]
        return self.art_head[arc - self.m]

    def _arc_cost(self, arc: int) -> int:
        if arc < self.m:
            return self.cost[arc]
        return self.big_m

    def _reduced_cost(self, arc: int) -> int:
        return (
            self._arc_cost(arc)
            - self.pot[self._arc_tail(arc)]
            + self.pot[self._arc_head(arc)]
        )

    # -- pivoting --------------------------------------------------------------

    def _find_entering(self, cursor: int, bland: bool) -> Optional[int]:
        """Entering-arc pricing.

        Default: block search — scan a window from the rotating cursor
        and take its most negative reduced cost (Dantzig-within-block,
        a standard network-simplex compromise between pivot count and
        pricing cost).  Bland mode: first eligible arc by index, which
        guarantees termination under degeneracy.

        Artificial arcs never re-enter: their big-M cost keeps their
        reduced cost non-negative once they leave the basis.
        """
        m = self.m
        # Local bindings: the pricing scan is the solver's hottest
        # loop, and attribute lookups dominate it otherwise.
        tail, head = self.tail, self.head
        cost, pot, in_tree = self.cost, self.pot, self.in_tree
        if bland:
            for arc in range(m):
                if not in_tree[arc] and (
                    cost[arc] - pot[tail[arc]] + pot[head[arc]] < 0
                ):
                    return arc
            return None
        if self.pivot_chaos is not None:
            # Fault injection: pick a random eligible arc instead of
            # the best one — maximizes degenerate pivots and exercises
            # the cycling detection.
            eligible = [
                arc
                for arc in range(m)
                if not in_tree[arc] and (
                    cost[arc] - pot[tail[arc]] + pot[head[arc]] < 0
                )
            ]
            if not eligible:
                return None
            return self.pivot_chaos.choice(eligible)
        block = max(64, m // 40)
        scanned = 0
        position = cursor
        while scanned < m:
            best = None
            best_rc = 0
            upper = min(block, m - scanned)
            for offset in range(upper):
                arc = (position + offset) % m
                if in_tree[arc]:
                    continue
                rc = cost[arc] - pot[tail[arc]] + pot[head[arc]]
                if rc < best_rc:
                    best_rc = rc
                    best = arc
            if best is not None:
                return best
            scanned += upper
            position = (position + upper) % m
        return None

    def _cycle(self, entering: int):
        """Arcs on the pivot cycle with their orientation.

        Returns ``(forward, backward)`` arc-id lists: forward arcs gain
        flow when pushing along the entering arc's direction, backward
        arcs lose flow.
        """
        u = self._arc_tail(entering)
        v = self._arc_head(entering)
        forward = [entering]
        backward: List[int] = []
        a, b = u, v
        # Walk both endpoints up to the least common ancestor.  On the
        # tail side the cycle runs *toward* u (down the tree); on the
        # head side it runs from v *up* the tree.
        while a != b:
            if self.depth[a] >= self.depth[b]:
                arc = self.parent_arc[a]
                if self._arc_tail(arc) == a:
                    # arc points a -> parent; cycle traverses parent -> a.
                    backward.append(arc)
                else:
                    forward.append(arc)
                a = self.parent[a]
            else:
                arc = self.parent_arc[b]
                if self._arc_tail(arc) == b:
                    forward.append(arc)
                else:
                    backward.append(arc)
                b = self.parent[b]
        return forward, backward

    def _pivot(self, entering: int) -> bool:
        """One pivot on ``entering``; True when degenerate (theta 0)."""
        forward, backward = self._cycle(entering)
        if not backward:
            raise UnboundedFlowError(
                "pivot cycle has no reverse arc — unbounded problem"
            )
        theta = None
        leaving = None
        for arc in backward:
            value = self.flow.get(arc, 0)
            if theta is None or value < theta or (
                value == theta and arc < leaving
            ):
                theta = value
                leaving = arc
        if theta is None or leaving is None:
            raise SolverError(
                "pivot found no leaving arc on a non-empty cycle — "
                "basis bookkeeping corrupted"
            )

        if theta != 0:
            for arc in forward:
                self.flow[arc] = self.flow.get(arc, 0) + theta
            for arc in backward:
                self.flow[arc] = self.flow[arc] - theta
        else:
            self.flow.setdefault(entering, 0)

        self._replace(leaving, entering)
        return theta == 0

    def _replace(self, leaving: int, entering: int) -> None:
        """Swap the leaving tree arc for the entering arc."""
        # Child endpoint of the leaving arc (the deeper one).
        lt, lh = self._arc_tail(leaving), self._arc_head(leaving)
        child = lt if self.depth[lt] > self.depth[lh] else lh
        parent = self.parent[child]
        if self.parent_arc[child] != leaving:
            raise SolverError(
                "leaving arc is not the tree arc of its deeper endpoint "
                "— spanning-tree invariants corrupted"
            )

        # Detach the T2 subtree rooted at `child`.
        self.children[parent].discard(child)
        self.in_tree[leaving] = 0
        self.flow.pop(leaving, None)

        # Entering arc endpoints: exactly one lies in T2.
        eu, ev = self._arc_tail(entering), self._arc_head(entering)
        in_t2 = self._collect_subtree(child)
        if eu in in_t2:
            attach_t2, attach_t1 = eu, ev
            delta = self._reduced_cost(entering)
        else:
            attach_t2, attach_t1 = ev, eu
            delta = -self._reduced_cost(entering)

        # Re-root T2 at attach_t2: reverse parent pointers on the path
        # attach_t2 .. child.
        path = []
        node = attach_t2
        while node != child:
            path.append(node)
            node = self.parent[node]
        path.append(child)
        # Capture the connecting arcs before mutating parent_arc.
        path_arcs = [self.parent_arc[node] for node in path[:-1]]
        for (lower, upper), arc in zip(zip(path, path[1:]), path_arcs):
            # upper was lower's parent; flip the relationship.
            self.children[upper].discard(lower)
            self.parent[upper] = lower
            self.parent_arc[upper] = arc
            self.children[lower].add(upper)

        self.parent[attach_t2] = attach_t1
        self.parent_arc[attach_t2] = entering
        self.children[attach_t1].add(attach_t2)
        self.in_tree[entering] = 1
        self.flow.setdefault(entering, 0)

        # Refresh depth and potentials of the re-rooted subtree.
        stack = [attach_t2]
        while stack:
            node = stack.pop()
            par = self.parent[node]
            self.depth[node] = self.depth[par] + 1
            self.pot[node] += delta
            stack.extend(self.children[node])

    def _collect_subtree(self, root_node: int) -> set:
        seen = {root_node}
        stack = [root_node]
        while stack:
            node = stack.pop()
            for kid in self.children[node]:
                if kid not in seen:
                    seen.add(kid)
                    stack.append(kid)
        return seen

    # -- extraction ------------------------------------------------------------

    def _extract(self, iterations: int) -> SimplexResult:
        for v in range(self.n):
            arc_id = self.m + v
            if self.in_tree[arc_id] and self.flow.get(arc_id, 0) != 0:
                raise InfeasibleFlowError(
                    f"artificial arc at node {self.node_names[v]!r} "
                    f"carries flow — demands unreachable"
                )
        # Scale flows back to the caller's (possibly fractional) units.
        flows = {
            arc: Fraction(value, 1) / self.scale
            for arc, value in self.flow.items()
            if arc < self.m and value != 0
        }
        objective = sum(
            (value * self.cost[arc] for arc, value in flows.items()),
            Fraction(0),
        )
        # Normalize potentials to the artificial root at 0; callers
        # re-normalize to their own host node.
        potentials = {
            name: self.pot[i] for i, name in enumerate(self.node_names)
        }
        return SimplexResult(
            flows=flows,
            potentials=potentials,
            objective=objective,
            iterations=iterations,
            degenerate_pivots=self.degenerate_pivots,
            bland_used=self.bland_used,
        )

    # -- verification (used by tests) -----------------------------------------

    def verify(self, result: SimplexResult) -> List[str]:
        """Check conservation and optimality conditions."""
        problems: List[str] = []
        balance = [Fraction(0)] * self.n
        for arc, value in result.flows.items():
            if value < 0:
                problems.append(f"arc {arc} has negative flow {value}")
            balance[self.tail[arc]] -= value
            balance[self.head[arc]] += value
        for v in range(self.n):
            expected = Fraction(self.demand[v], 1) / self.scale
            if balance[v] != expected:
                problems.append(
                    f"node {self.node_names[v]!r}: balance {balance[v]} "
                    f"!= demand {expected}"
                )
        for arc in range(self.m):
            rc = (
                self.cost[arc]
                - result.potentials[self.node_names[self.tail[arc]]]
                + result.potentials[self.node_names[self.head[arc]]]
            )
            if rc < 0:
                problems.append(f"arc {arc} has negative reduced cost {rc}")
            if rc > 0 and result.flows.get(arc, Fraction(0)) != 0:
                problems.append(
                    f"arc {arc} violates complementary slackness"
                )
        return problems
