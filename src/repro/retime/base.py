"""Base retiming: the resiliency-unaware commercial baseline.

The paper's comparison point is a leading synthesis tool's *built-in*
retiming run "subject to worst-case timing constraints" — a timing-
driven latch retimer that knows nothing about error-detection
overheads.  Presented with the two-phase latch design at period ``Pi``
and standard (non-EDL) latch setup, such a tool positions the slaves so
that every master it can satisfy receives its data before ``Pi``; only
masters whose combinational paths genuinely exceed ``Pi`` are left
violating (the resilient design absorbs them, and they are swapped to
error-detecting latches afterwards — Section VI-D: "master latches
whose input arrival times fall in the resiliency window are then
replaced with error-detecting counterparts").

Mechanically this is the same forced-cut machinery the VL flow uses:
for every endpoint that *can* meet ``Pi``, the gates of its cut set
``g(t)`` are pinned to ``r = -1``, and the latch count is minimized
subject to those constraints.  The result is what the paper's Table VI
shows for "Base": EDL counts near the near-critical-endpoint counts of
Table I, and noticeably more slave latches than G-RAR, which trades a
few extra error-detecting masters for far fewer latches.
"""

from __future__ import annotations

import time
from typing import Dict, Set

from repro import metrics
from repro.latches.resilient import TwoPhaseCircuit
from repro.retime.compile import compile_retiming
from repro.retime.cutset import EndpointClass, compute_cut_sets
from repro.retime.graph import build_retiming_graph
from repro.retime.grar import placement_from_r
from repro.retime.ilp import solve_retiming_lp
from repro.retime.netflow import solve_retiming_flow
from repro.retime.regions import Regions, compute_regions
from repro.retime.result import RetimingResult


def base_retime(
    circuit: TwoPhaseCircuit,
    overhead: float,
    solver: str = "flow",
    conflict_policy: str = "error",
    solver_policy=None,
    retime_cache: bool = True,
) -> RetimingResult:
    """Timing-driven min-latch retiming, EDL assigned post hoc.

    ``retime_cache`` reuses the compiled problem's regions and cut
    sets (both c-independent and shared with G-RAR on the same
    circuit); the baseline's own graph — forced ``Vm``, no pseudo
    nodes — is always built fresh.
    """
    if overhead < 0:
        raise ValueError("overhead must be non-negative")
    phases: Dict[str, float] = {}
    started = time.perf_counter()

    compiled = None
    if retime_cache and overhead > 0:
        tick = time.perf_counter()
        compiled = compile_retiming(
            circuit, overhead, conflict_policy=conflict_policy
        )
        regions = compiled.regions
        phases["compile"] = time.perf_counter() - tick
    else:
        tick = time.perf_counter()
        regions = compute_regions(circuit, conflict_policy=conflict_policy)
        phases["regions"] = time.perf_counter() - tick

    # Worst-case timing constraints: every master that can receive its
    # data before Pi must.  Delegate the "can it" question to the cut
    # sets and force the feasible ones.
    tick = time.perf_counter()
    from repro.vl.flow import forceable_gates  # local: avoids a cycle

    cut_sets = (
        compiled.cut_sets
        if compiled is not None
        else compute_cut_sets(circuit, regions)
    )
    forceable = forceable_gates(circuit, regions)
    forced: Set[str] = set()
    unmet = 0
    for endpoint, cut in cut_sets.items():
        if cut.kind is not EndpointClass.TARGET:
            if cut.kind is EndpointClass.ALWAYS:
                unmet += 1
            continue
        if all(g in forceable for g in cut.gates):
            forced.update(cut.gates)
        else:
            unmet += 1
    timing_regions = Regions(
        vm=frozenset(regions.vm | forced),
        vn=regions.vn,
        vr=frozenset(regions.vr - forced),
    )
    phases["constraints"] = time.perf_counter() - tick

    tick = time.perf_counter()
    graph = build_retiming_graph(
        circuit, timing_regions, cut_sets=None, overhead=0.0
    )
    phases["graph"] = time.perf_counter() - tick

    tick = time.perf_counter()
    if solver == "flow":
        solution = solve_retiming_flow(graph, policy=solver_policy)
        r_values = solution.r_values
        objective = solution.objective
        iterations = solution.iterations
        backend = solution.backend
    elif solver == "lp":
        lp = solve_retiming_lp(graph)
        r_values = lp.r_values
        objective = lp.objective
        iterations = 0
        backend = "lp"
    else:
        raise ValueError(f"unknown solver {solver!r}")
    phases["solve"] = time.perf_counter() - tick

    tick = time.perf_counter()
    placement = placement_from_r(circuit, r_values)
    edl = circuit.edl_endpoints(placement)
    cost = circuit.sequential_cost(placement, overhead)
    phases["apply"] = time.perf_counter() - tick

    comb_area = (
        circuit.netlist.comb_area(circuit.library)
        if circuit.library is not None
        else 0.0
    )
    runtime_s = time.perf_counter() - started
    metrics.count("retime.base.wall_s", runtime_s)
    return RetimingResult(
        method=f"base-{solver}",
        circuit_name=circuit.netlist.name,
        overhead=overhead,
        placement=placement,
        edl_endpoints=edl,
        cost=cost,
        objective=objective,
        comb_area=comb_area,
        runtime_s=runtime_s,
        phase_runtimes=phases,
        solver_iterations=iterations,
        notes={
            "unmet_endpoints": str(unmet),
            "forced_gates": str(len(forced)),
            "solver_backend": backend,
        },
    )
