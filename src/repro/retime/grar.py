"""G-RAR: graph-based resiliency-aware retiming (Section IV)."""

from __future__ import annotations

import time
from typing import Dict

from repro import metrics
from repro.latches.placement import SlavePlacement
from repro.latches.resilient import TwoPhaseCircuit
from repro.retime.compile import compile_retiming
from repro.retime.cutset import compute_cut_sets
from repro.retime.graph import build_retiming_graph
from repro.retime.ilp import solve_retiming_lp
from repro.retime.netflow import solve_retiming_flow
from repro.retime.regions import compute_regions
from repro.retime.result import RetimingResult


def placement_from_r(
    circuit: TwoPhaseCircuit, r_values: Dict[str, int]
) -> SlavePlacement:
    """Project solver labels onto the netlist nodes.

    Mirror, pseudo, and endpoint-role nodes are solver-internal; only
    sources and combinational gates carry physical retiming moves.
    """
    physical = set(circuit.source_names) | {
        g.name for g in circuit.netlist.comb_gates()
    }
    return SlavePlacement.from_r(
        {name: r_values.get(name, 0) for name in physical}
    )


def grar_retime(
    circuit: TwoPhaseCircuit,
    overhead: float,
    solver: str = "flow",
    conflict_policy: str = "error",
    solver_policy=None,
    retime_cache: bool = True,
) -> RetimingResult:
    """Run the full G-RAR pipeline on one circuit.

    ``solver`` is ``"flow"`` (network simplex, the paper's approach) or
    ``"lp"`` (scipy/HiGHS on eq. (10), the reference oracle).

    With ``retime_cache`` on (the default), regions, cut sets and the
    graph skeleton come from the compiled-problem cache keyed by the
    circuit's content fingerprint, and the flow solve warm-starts from
    the previous sweep point's optimal basis.  ``retime_cache=False``
    recomputes and cold-starts everything — the bit-parity oracle.
    """
    if overhead < 0:
        raise ValueError("overhead must be non-negative")
    phases: Dict[str, float] = {}
    started = time.perf_counter()

    compiled = None
    if retime_cache and overhead > 0:
        tick = time.perf_counter()
        compiled = compile_retiming(
            circuit, overhead, conflict_policy=conflict_policy
        )
        regions = compiled.regions
        cut_sets = compiled.cut_sets
        phases["compile"] = time.perf_counter() - tick

        tick = time.perf_counter()
        graph = compiled.graph_for(overhead)
        phases["graph"] = time.perf_counter() - tick
    else:
        tick = time.perf_counter()
        regions = compute_regions(circuit, conflict_policy=conflict_policy)
        phases["regions"] = time.perf_counter() - tick

        tick = time.perf_counter()
        cut_sets = compute_cut_sets(circuit, regions)
        phases["cut_sets"] = time.perf_counter() - tick

        tick = time.perf_counter()
        graph = build_retiming_graph(
            circuit, regions, cut_sets=cut_sets, overhead=overhead
        )
        phases["graph"] = time.perf_counter() - tick

    tick = time.perf_counter()
    if solver == "flow":
        solution = solve_retiming_flow(
            graph,
            policy=solver_policy,
            warm_basis=compiled.last_basis if compiled else None,
        )
        if compiled is not None and solution.basis is not None:
            compiled.last_basis = solution.basis
        r_values = solution.r_values
        objective = solution.objective
        iterations = solution.iterations
        backend = solution.backend
    elif solver == "lp":
        lp = solve_retiming_lp(graph)
        r_values = lp.r_values
        objective = lp.objective
        iterations = 0
        backend = "lp"
    else:
        raise ValueError(f"unknown solver {solver!r}")
    phases["solve"] = time.perf_counter() - tick

    tick = time.perf_counter()
    placement = placement_from_r(circuit, r_values)
    credited = {
        endpoint
        for endpoint, pseudo in graph.pseudo_nodes.items()
        if r_values.get(pseudo, 0) == -1
    }
    edl = circuit.edl_endpoints(placement)
    cost = circuit.sequential_cost(placement, overhead)
    phases["apply"] = time.perf_counter() - tick

    comb_area = (
        circuit.netlist.comb_area(circuit.library)
        if circuit.library is not None
        else 0.0
    )
    runtime_s = time.perf_counter() - started
    # The sweep bench reads this to isolate the G-RAR portion of a
    # flow from the (c-independent) rescue and sentinel work around it.
    metrics.count("retime.grar.wall_s", runtime_s)
    return RetimingResult(
        method=f"grar-{solver}",
        circuit_name=circuit.netlist.name,
        overhead=overhead,
        placement=placement,
        edl_endpoints=edl,
        cost=cost,
        objective=objective,
        comb_area=comb_area,
        runtime_s=runtime_s,
        phase_runtimes=phases,
        solver_iterations=iterations,
        credited_endpoints=credited,
        notes={
            "solver_backend": backend,
            "retime_cache": "on" if compiled is not None else "off",
        },
    )
