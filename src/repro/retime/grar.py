"""G-RAR: graph-based resiliency-aware retiming (Section IV)."""

from __future__ import annotations

import time
from typing import Dict

from repro.latches.placement import SlavePlacement
from repro.latches.resilient import TwoPhaseCircuit
from repro.retime.cutset import compute_cut_sets
from repro.retime.graph import build_retiming_graph
from repro.retime.ilp import solve_retiming_lp
from repro.retime.netflow import solve_retiming_flow
from repro.retime.regions import compute_regions
from repro.retime.result import RetimingResult


def placement_from_r(
    circuit: TwoPhaseCircuit, r_values: Dict[str, int]
) -> SlavePlacement:
    """Project solver labels onto the netlist nodes.

    Mirror, pseudo, and endpoint-role nodes are solver-internal; only
    sources and combinational gates carry physical retiming moves.
    """
    physical = set(circuit.source_names) | {
        g.name for g in circuit.netlist.comb_gates()
    }
    return SlavePlacement.from_r(
        {name: r_values.get(name, 0) for name in physical}
    )


def grar_retime(
    circuit: TwoPhaseCircuit,
    overhead: float,
    solver: str = "flow",
    conflict_policy: str = "error",
    solver_policy=None,
) -> RetimingResult:
    """Run the full G-RAR pipeline on one circuit.

    ``solver`` is ``"flow"`` (network simplex, the paper's approach) or
    ``"lp"`` (scipy/HiGHS on eq. (10), the reference oracle).
    """
    if overhead < 0:
        raise ValueError("overhead must be non-negative")
    phases: Dict[str, float] = {}
    started = time.perf_counter()

    tick = time.perf_counter()
    regions = compute_regions(circuit, conflict_policy=conflict_policy)
    phases["regions"] = time.perf_counter() - tick

    tick = time.perf_counter()
    cut_sets = compute_cut_sets(circuit, regions)
    phases["cut_sets"] = time.perf_counter() - tick

    tick = time.perf_counter()
    graph = build_retiming_graph(
        circuit, regions, cut_sets=cut_sets, overhead=overhead
    )
    phases["graph"] = time.perf_counter() - tick

    tick = time.perf_counter()
    if solver == "flow":
        solution = solve_retiming_flow(graph, policy=solver_policy)
        r_values = solution.r_values
        objective = solution.objective
        iterations = solution.iterations
        backend = solution.backend
    elif solver == "lp":
        lp = solve_retiming_lp(graph)
        r_values = lp.r_values
        objective = lp.objective
        iterations = 0
        backend = "lp"
    else:
        raise ValueError(f"unknown solver {solver!r}")
    phases["solve"] = time.perf_counter() - tick

    tick = time.perf_counter()
    placement = placement_from_r(circuit, r_values)
    credited = {
        endpoint
        for endpoint, pseudo in graph.pseudo_nodes.items()
        if r_values.get(pseudo, 0) == -1
    }
    edl = circuit.edl_endpoints(placement)
    cost = circuit.sequential_cost(placement, overhead)
    phases["apply"] = time.perf_counter() - tick

    comb_area = (
        circuit.netlist.comb_area(circuit.library)
        if circuit.library is not None
        else 0.0
    )
    return RetimingResult(
        method=f"grar-{solver}",
        circuit_name=circuit.netlist.name,
        overhead=overhead,
        placement=placement,
        edl_endpoints=edl,
        cost=cost,
        objective=objective,
        comb_area=comb_area,
        runtime_s=time.perf_counter() - started,
        phase_runtimes=phases,
        solver_iterations=iterations,
        credited_endpoints=credited,
        notes={"solver_backend": backend},
    )
