"""Graph-based resiliency-aware retiming (G-RAR) — the paper's core.

Pipeline (Section IV):

1. :mod:`repro.retime.regions` — pre-divide gates into ``Vm`` (must
   retime through), ``Vn`` (must not) and ``Vr`` (free), from
   constraints (6)/(7);
2. :mod:`repro.retime.cutset` — per target master ``t``, the cut set
   ``g(t)`` beyond which slaves make ``t`` non-error-detecting;
3. :mod:`repro.retime.graph` — the modified retiming graph: fanout-
   sharing mirror nodes, host, pseudo nodes ``P(t)`` with ``-c`` credit
   edges, and bound edges encoding the region limits;
4. :mod:`repro.retime.ilp` — the eq. (10) ILP solved as an LP
   (totally unimodular, so the relaxation is integral) — the reference
   solver;
5. :mod:`repro.retime.netflow` + :mod:`repro.retime.simplex` — the
   eq. (14) min-cost-flow dual solved with our network simplex; node
   potentials recover the retiming labels in polynomial time;
6. :mod:`repro.retime.grar` / :mod:`repro.retime.base` — the G-RAR and
   resiliency-unaware baseline flows.
"""

from repro.retime.regions import Regions, compute_regions
from repro.retime.cutset import CutSet, EndpointClass, compute_cut_sets
from repro.retime.graph import (
    RetimingGraph,
    GraphEdge,
    build_retiming_graph,
    recost_graph,
)
from repro.retime.simplex import NetworkSimplex, SimplexResult, WarmBasis
from repro.retime.netflow import solve_retiming_flow
from repro.retime.ilp import solve_retiming_lp
from repro.retime.result import RetimingResult
from repro.retime.compile import (
    CompiledRetiming,
    circuit_fingerprint,
    clear_cache,
    compile_retiming,
)
from repro.retime.grar import grar_retime
from repro.retime.base import base_retime

__all__ = [
    "Regions",
    "compute_regions",
    "CutSet",
    "EndpointClass",
    "compute_cut_sets",
    "RetimingGraph",
    "GraphEdge",
    "build_retiming_graph",
    "recost_graph",
    "NetworkSimplex",
    "SimplexResult",
    "WarmBasis",
    "solve_retiming_flow",
    "solve_retiming_lp",
    "RetimingResult",
    "CompiledRetiming",
    "circuit_fingerprint",
    "clear_cache",
    "compile_retiming",
    "grar_retime",
    "base_retime",
]
