"""Result container shared by all retiming flows."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Set

from repro.latches.placement import SlavePlacement
from repro.latches.resilient import SequentialCost


@dataclass
class RetimingResult:
    """Outcome of one retiming flow on one circuit."""

    method: str
    circuit_name: str
    overhead: float
    placement: SlavePlacement
    edl_endpoints: Set[str]
    cost: SequentialCost
    #: Objective value reported by the solver (latch units, including
    #: credits but excluding constants such as master base areas).
    objective: Optional[Fraction] = None
    comb_area: float = 0.0
    runtime_s: float = 0.0
    phase_runtimes: Dict[str, float] = field(default_factory=dict)
    solver_iterations: int = 0
    #: Endpoints predicted non-EDL via a taken P(t) credit.
    credited_endpoints: Set[str] = field(default_factory=set)
    notes: Dict[str, str] = field(default_factory=dict)

    @property
    def n_slaves(self) -> int:
        """Number of physical slave latches."""
        return self.cost.n_slaves

    @property
    def n_edl(self) -> int:
        """Number of error-detecting masters."""
        return self.cost.n_edl

    @property
    def sequential_area(self) -> float:
        """Sequential-logic area in library units."""
        return self.cost.area

    @property
    def total_area(self) -> float:
        """Combinational plus sequential area."""
        return self.comb_area + self.cost.area

    def summary(self) -> str:
        """One-line human-readable result summary."""
        return (
            f"{self.method}[{self.circuit_name}, c={self.overhead}]: "
            f"slaves={self.n_slaves} edl={self.n_edl} "
            f"seq_area={self.sequential_area:.2f} "
            f"total_area={self.total_area:.2f} "
            f"({self.runtime_s:.2f}s)"
        )
