"""Eq. (10): the retiming ILP, solved as an LP (reference solver).

The constraint matrix is a network (difference-constraint) matrix and
therefore totally unimodular; with integral weights and bounds the LP
relaxation has integral vertex optima, so ``scipy.optimize.linprog``
(HiGHS, which returns vertex solutions) recovers the ILP optimum
without branching.  This solver is the cross-check oracle for the
network simplex — O(n·m) memory in the constraint matrix, so use it on
small and medium graphs only.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.errors import SolverError
from repro.retime.graph import EdgeKind, RetimingGraph


@dataclass
class LpSolution:
    """Integral labels and objective from the LP oracle."""
    r_values: Dict[str, int]
    objective: Fraction


def solve_retiming_lp(graph: RetimingGraph) -> LpSolution:
    """Solve eq. (10) directly with HiGHS."""
    names = list(graph.nodes)
    index = {name: i for i, name in enumerate(names)}
    n = len(names)

    # Objective: sum_e beta_e * (w_e + r(head) - r(tail))
    #          = const + sum_v r(v) * (sum_in beta - sum_out beta).
    coeff = np.zeros(n)
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    rhs: List[float] = []
    row = 0
    for edge in graph.edges:
        if edge.kind is not EdgeKind.BOUND:
            coeff[index[edge.head]] += float(edge.breadth)
            coeff[index[edge.tail]] -= float(edge.breadth)
        # Constraint r(tail) - r(head) <= weight for every edge kind
        # (bound edges encode the region limits in the same form).
        rows.append(row)
        cols.append(index[edge.tail])
        data.append(1.0)
        rows.append(row)
        cols.append(index[edge.head])
        data.append(-1.0)
        rhs.append(float(edge.weight))
        row += 1

    a_ub = csr_matrix((data, (rows, cols)), shape=(row, n))
    bounds = [
        (float(graph.bounds[name][0]), float(graph.bounds[name][1]))
        for name in names
    ]
    result = linprog(
        c=coeff,
        A_ub=a_ub,
        b_ub=np.asarray(rhs),
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise SolverError(f"LP solve failed: {result.message}")

    r_values: Dict[str, int] = {}
    for name in names:
        value = result.x[index[name]]
        rounded = round(value)
        if abs(value - rounded) > 1e-6:
            raise SolverError(
                f"LP relaxation returned fractional r({name}) = {value}; "
                f"total unimodularity violated — malformed graph?"
            )
        r_values[name] = int(rounded)

    violated = graph.check_feasible(r_values)
    if violated:
        raise SolverError(
            f"LP solution violates {len(violated)} constraints after "
            f"rounding"
        )
    return LpSolution(
        r_values=r_values, objective=graph.objective_value(r_values)
    )
