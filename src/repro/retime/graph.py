"""The modified retiming graph (Section IV-A, Fig. 5).

Node sets:

* ``V1`` — host, sources, combinational gates, endpoints, and the
  fanout-sharing mirror nodes of [Leiserson-Saxe];
* ``V2`` — one pseudo node ``P(t)`` per target master.

Edge sets:

* ``E1`` — circuit edges (weight = slave count before retiming,
  breadth = fanout-shared latch cost), host edges, mirror edges and
  endpoint-to-host back edges;
* ``E2`` — zero-cost edges ``g -> P(t)`` for ``g ∈ g(t)`` plus the
  credit edge ``P(t) -> host`` with breadth ``-c``;
* ``BOUND`` — the [24] trick: edges ``(v, host)`` of weight ``U_v`` and
  ``(host, v)`` of weight ``-L_v`` enforce ``L_v <= r(v) <= U_v``
  inside the min-cost-flow dual without explicit variable bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.latches.placement import HOST
from repro.latches.resilient import TwoPhaseCircuit
from repro.netlist.netlist import GateType
from repro.retime.cutset import CutSet
from repro.retime.regions import Regions


class EdgeKind(Enum):
    """Edge families of the modified retiming graph."""
    CIRCUIT = "circuit"
    HOST = "host"
    MIRROR = "mirror"
    ENDPOINT = "endpoint"
    CUT = "cut"       # g -> P(t)
    CREDIT = "credit"  # P(t) -> host
    BOUND = "bound"


@dataclass(frozen=True)
class GraphEdge:
    """One edge: tail, head, weight (slaves), breadth (cost)."""
    tail: str
    head: str
    weight: int
    breadth: Fraction
    kind: EdgeKind


def mirror_name(gate: str) -> str:
    """Name of the fanout-sharing mirror node for ``gate``."""
    return f"{gate}##m"


def pseudo_name(endpoint: str) -> str:
    """Name of the resiliency pseudo node ``P(endpoint)``."""
    return f"P##{endpoint}"


def endpoint_node(flop: str) -> str:
    """Graph node for the *endpoint* (D-pin) role of a flop.

    A flop appears twice in the retiming graph: its Q is a retimable
    source (node named after the flop) and its D is a fixed endpoint
    (this node).  Primary-output markers already have distinct names
    and are used directly.
    """
    return f"{flop}##d"


@dataclass
class RetimingGraph:
    """Node/edge container consumed by the ILP and flow solvers."""

    nodes: List[str] = field(default_factory=list)
    edges: List[GraphEdge] = field(default_factory=list)
    bounds: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: endpoint -> pseudo node name, for targets only.
    pseudo_nodes: Dict[str, str] = field(default_factory=dict)
    overhead: Fraction = Fraction(0)

    def add_node(self, name: str, lower: int, upper: int) -> None:
        """Add a node with retiming bounds ``[lower, upper]``."""
        if name in self.bounds:
            raise ValueError(f"duplicate graph node {name!r}")
        if lower > upper:
            raise ValueError(f"node {name!r}: bounds [{lower},{upper}]")
        self.nodes.append(name)
        self.bounds[name] = (lower, upper)

    def add_edge(
        self,
        tail: str,
        head: str,
        weight: int,
        breadth: Fraction,
        kind: EdgeKind,
    ) -> None:
        """Add an edge between existing nodes."""
        if tail not in self.bounds or head not in self.bounds:
            raise KeyError(f"edge ({tail!r}, {head!r}) references missing node")
        self.edges.append(GraphEdge(tail, head, weight, breadth, kind))

    def constant_cost(self) -> Fraction:
        """The placement-independent part of the objective:
        ``sum_e breadth(e) * w(e)``."""
        return sum(
            (edge.breadth * edge.weight for edge in self.edges),
            Fraction(0),
        )

    def objective_value(self, r_values: Dict[str, int]) -> Fraction:
        """``sum_e breadth(e) * w_r(e)`` for a label assignment."""
        total = Fraction(0)
        for edge in self.edges:
            if edge.kind is EdgeKind.BOUND:
                continue
            w_r = edge.weight + r_values.get(edge.head, 0) - r_values.get(
                edge.tail, 0
            )
            total += edge.breadth * w_r
        return total

    def check_feasible(self, r_values: Dict[str, int]) -> List[GraphEdge]:
        """Edges violated by an assignment (should be empty)."""
        bad = []
        for edge in self.edges:
            r_head = r_values.get(edge.head, 0)
            r_tail = r_values.get(edge.tail, 0)
            # Every edge kind encodes r(tail) - r(head) <= weight.
            if r_tail - r_head > edge.weight:
                bad.append(edge)
        return bad

    def stats(self) -> Dict[str, int]:
        """Node/edge counts by kind."""
        kinds: Dict[str, int] = {}
        for edge in self.edges:
            kinds[edge.kind.value] = kinds.get(edge.kind.value, 0) + 1
        return {
            "nodes": len(self.nodes),
            "edges": len(self.edges),
            "targets": len(self.pseudo_nodes),
            **kinds,
        }


def recost_graph(
    skeleton: RetimingGraph, overhead: float
) -> RetimingGraph:
    """Re-target a built G-RAR graph to a new overhead ``c``.

    Only the CREDIT edges ``P(t) -> host`` carry ``c`` (breadth
    ``-c``); every node, bound, pseudo-node and non-credit edge of the
    graph is c-independent (the invariant the compile cache rests on,
    see ``tests/test_retime_compile.py``).  Patching the credit
    breadths therefore reproduces ``build_retiming_graph(...,
    overhead=c)`` exactly — same node order, same edge order — at a
    fraction of the cost.  The skeleton must have been built with a
    positive overhead (a circuit with no creditable endpoints then has
    no pseudo nodes, and re-costing is a no-op); the returned graph
    shares the skeleton's node/bound containers, which no consumer
    mutates.
    """
    if skeleton.overhead <= 0:
        raise ValueError(
            "recost_graph needs a resiliency-aware skeleton (built "
            "with cut sets and overhead > 0)"
        )
    c = Fraction(overhead).limit_denominator(10**6)
    if c <= 0:
        raise ValueError("recost_graph requires overhead > 0")
    if c == skeleton.overhead:
        return skeleton
    edges = [
        edge
        if edge.kind is not EdgeKind.CREDIT
        else GraphEdge(edge.tail, edge.head, edge.weight, -c, edge.kind)
        for edge in skeleton.edges
    ]
    return RetimingGraph(
        nodes=skeleton.nodes,
        edges=edges,
        bounds=skeleton.bounds,
        pseudo_nodes=skeleton.pseudo_nodes,
        overhead=c,
    )


def build_retiming_graph(
    circuit: TwoPhaseCircuit,
    regions: Regions,
    cut_sets: Optional[Dict[str, CutSet]] = None,
    overhead: float = 0.0,
) -> RetimingGraph:
    """Assemble the retiming graph.

    With ``cut_sets`` given and ``overhead > 0`` the graph is
    resiliency-aware (G-RAR); without them it is the classic min-area
    latch retiming graph (the baseline).
    """
    netlist = circuit.netlist
    graph = RetimingGraph(overhead=Fraction(overhead).limit_denominator(10**6))

    for gate in netlist:
        if "##" in gate.name:
            raise ValueError(
                f"gate name {gate.name!r} collides with the graph's "
                f"internal ## node namespace"
            )

    graph.add_node(HOST, 0, 0)
    for gate in netlist:
        if gate.gtype is GateType.OUTPUT:
            graph.add_node(gate.name, 0, 0)
            continue
        lower, upper = regions.bounds(gate.name)
        graph.add_node(gate.name, lower, upper)
        if gate.gtype is GateType.DFF:
            # Split roles: the flop name is the retimable Q source; the
            # ##d node is the fixed D endpoint.
            graph.add_node(endpoint_node(gate.name), 0, 0)

    def graph_sink(driver_to: str) -> str:
        """Map a netlist edge sink to its graph node (D-role split)."""
        if netlist[driver_to].gtype is GateType.DFF:
            return endpoint_node(driver_to)
        return driver_to

    # Host edges: one per source, weight 1 (the pre-retiming slave),
    # breadth 1 each — distinct masters cannot share slaves.
    for gate in netlist.sources():
        graph.add_edge(HOST, gate.name, 1, Fraction(1), EdgeKind.HOST)

    # Circuit edges with fanout sharing.  Parallel edges (one driver
    # feeding several pins of a gate) collapse to one graph edge.
    for gate in netlist:
        if gate.gtype is GateType.OUTPUT:
            continue
        name = gate.name
        fanouts = sorted({graph_sink(u) for u in netlist.fanouts(name)})
        if not fanouts:
            continue
        k = len(fanouts)
        if k == 1:
            graph.add_edge(
                name, fanouts[0], 0, Fraction(1), EdgeKind.CIRCUIT
            )
            continue
        share = Fraction(1, k)
        mirror = mirror_name(name)
        graph.add_node(mirror, -1, 0)
        for user in fanouts:
            graph.add_edge(name, user, 0, share, EdgeKind.CIRCUIT)
            graph.add_edge(user, mirror, 0, share, EdgeKind.MIRROR)

    # Endpoint back edges to the host (classic retiming closure).
    for gate in netlist.endpoints():
        graph.add_edge(graph_sink(gate.name), HOST, 0, Fraction(0), EdgeKind.ENDPOINT)

    # Resiliency pseudo nodes and credit edges.
    if cut_sets and graph.overhead > 0:
        for endpoint, cut in sorted(cut_sets.items()):
            if not cut.is_target:
                continue
            pseudo = pseudo_name(endpoint)
            graph.add_node(pseudo, -1, 0)
            graph.pseudo_nodes[endpoint] = pseudo
            for g in sorted(cut.gates):
                graph.add_edge(g, pseudo, 0, Fraction(0), EdgeKind.CUT)
            graph.add_edge(
                pseudo, HOST, 0, -graph.overhead, EdgeKind.CREDIT
            )

    # Bound edges ([24]): r(v) - r(h) <= U_v and r(h) - r(v) <= -L_v.
    # Most bounds are already implied by the difference constraints —
    # r >= -1 flows from the weight-1 host edges and r <= 0 from the
    # pinned endpoints — so edges are added only where they bind:
    #   Vm:         (v, h) cost -1 pins r = -1 (lower side implied);
    #   Vn:         (h, v) cost 0 pins r >= 0 (upper side implied
    #               unless the gate dangles);
    #   endpoints:  (h, v) cost 0 (upper side is the ENDPOINT edge);
    #   mirrors:    (v, h) cost 0 (no outgoing circuit edges);
    #   dangling:   (v, h) cost 0 (no path to a pinned endpoint).
    has_fanout = {edge.tail for edge in graph.edges}
    pinned_zero = {
        graph_sink(g.name) for g in netlist.endpoints()
    }
    for name in list(graph.bounds):
        if name == HOST or name in graph.pseudo_nodes.values():
            continue
        lower, upper = graph.bounds[name]
        if name in pinned_zero:
            graph.add_edge(HOST, name, 0, Fraction(0), EdgeKind.BOUND)
        elif (lower, upper) == (-1, -1):
            graph.add_edge(name, HOST, -1, Fraction(0), EdgeKind.BOUND)
        elif (lower, upper) == (0, 0):
            graph.add_edge(HOST, name, 0, Fraction(0), EdgeKind.BOUND)
            if name not in has_fanout:
                graph.add_edge(name, HOST, 0, Fraction(0), EdgeKind.BOUND)
        elif name.endswith("##m") or name not in has_fanout:
            graph.add_edge(name, HOST, 0, Fraction(0), EdgeKind.BOUND)
    return graph
