"""Retiming regions ``Vm`` / ``Vn`` / ``Vr`` (Section IV-B).

* ``Vm`` — gates with ``D^b(v, t) > phi2 + gamma2 + phi1`` for some
  endpoint ``t``: the slaves *must* be retimed through (``r = -1``),
  otherwise constraint (7) is violated;
* ``Vn`` — gates with ``D^f(v) > phi1 + gamma1 + phi2``: slaves must
  *not* be retimed through (``r = 0``), per constraint (6);
* ``Vr`` — the rest: the solver decides ``r ∈ {-1, 0}``.

Endpoints (master latches) are always pinned at 0 — masters are fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.errors import TimingError
from repro.latches.resilient import TwoPhaseCircuit


class InfeasibleRetimingError(TimingError):
    """Raised when constraints (6) and (7) cannot both be satisfied."""


@dataclass(frozen=True)
class Regions:
    """The region partition plus per-node retiming bounds."""

    vm: FrozenSet[str]
    vn: FrozenSet[str]
    vr: FrozenSet[str]

    def bounds(self, name: str) -> Tuple[int, int]:
        """Lower/upper bound of ``r(name)``."""
        if name in self.vm:
            return (-1, -1)
        if name in self.vn:
            return (0, 0)
        return (-1, 0)

    def can_retime(self, name: str) -> bool:
        """True when ``r(name) = -1`` is allowed."""
        return name not in self.vn

    def must_retime(self, name: str) -> bool:
        """True when ``r(name) = -1`` is forced (Vm)."""
        return name in self.vm

    def summary(self) -> str:
        """Region sizes as a short string."""
        return (
            f"Vm={len(self.vm)} Vn={len(self.vn)} Vr={len(self.vr)}"
        )


def compute_regions(
    circuit: TwoPhaseCircuit, conflict_policy: str = "error"
) -> Regions:
    """Partition the cloud nodes of ``circuit`` into the three regions.

    A node in both ``Vm`` and ``Vn`` means some path cannot satisfy
    constraints (6) and (7) simultaneously.  Under exact (path-based)
    timing this is a genuine infeasibility — the clock is too tight —
    and ``conflict_policy="error"`` raises.  Under the conservative
    gate-based model the conflict is usually an artifact of pessimism
    (the paper notes the model "can negatively impact the region
    calculations"); ``conflict_policy="prefer-vm"`` keeps such nodes
    in ``Vm`` — honouring the hard downstream-capture constraint (7)
    — and lets the accurate-model evaluation plus the size-only
    compile absorb any (6) overshoot.
    """
    vm = circuit.region_vm()
    vn = circuit.region_vn()
    conflict = vm & vn
    if conflict:
        if conflict_policy == "prefer-vm":
            vn = vn - conflict
        elif conflict_policy == "error":
            raise InfeasibleRetimingError(
                f"{len(conflict)} gates violate both constraints (6) and "
                f"(7); examples: {sorted(conflict)[:5]} — the clock period "
                f"is too tight for a legal slave-latch cut"
            )
        else:
            raise ValueError(
                f"unknown conflict_policy {conflict_policy!r}"
            )
    everything = set(circuit.source_names) | {
        g.name for g in circuit.netlist.comb_gates()
    }
    vr = everything - vm - vn
    return Regions(vm=frozenset(vm), vn=frozenset(vn), vr=frozenset(vr))
