"""Post-retiming latch-type fixes (Section V / VI-C).

Two directions:

* **required upgrades** — endpoints typed non-error-detecting whose
  post-retiming arrival still lands inside the resiliency window must
  become error-detecting (the paper "fix[es] timing violation after
  resynthesis by manually switching some non-error-detecting latches
  to error-detecting") — always applied, it is a correctness fix;
* **swap step** — endpoints typed error-detecting whose arrival now
  meets the extended non-EDL setup can be downgraded, reclaiming the
  ``c`` overhead.  This is the optional post-retiming step whose
  effect the paper quantifies (RVL high overhead: −0.36% → 9.6%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.latches.placement import SlavePlacement
from repro.latches.resilient import EPS, TwoPhaseCircuit


@dataclass
class SwapReport:
    """Masters upgraded/downgraded by the post-retiming swaps."""
    upgraded: List[str] = field(default_factory=list)
    downgraded: List[str] = field(default_factory=list)

    @property
    def n_changed(self) -> int:
        """Total number of masters whose type changed."""
        return len(self.upgraded) + len(self.downgraded)


def apply_required_upgrades(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    types: Dict[str, bool],
    report: SwapReport,
) -> Dict[str, bool]:
    """Switch violating non-EDL masters to error-detecting."""
    window_open = circuit.scheme.window_open
    arrivals = circuit.endpoint_arrivals(placement)
    updated = dict(types)
    for endpoint, is_edl in types.items():
        if not is_edl and arrivals.get(endpoint, 0.0) > window_open + EPS:
            updated[endpoint] = True
            report.upgraded.append(endpoint)
    return updated


def swap_unnecessary_edl(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    types: Dict[str, bool],
    report: SwapReport,
) -> Dict[str, bool]:
    """Downgrade error-detecting masters whose arrivals left the window.

    This models the observation that the synthesis tool "sometimes
    fails to actually swap the sequential cells if the resiliency
    window is avoided" — the swap happens here, outside the tool.
    """
    window_open = circuit.scheme.window_open
    arrivals = circuit.endpoint_arrivals(placement)
    updated = dict(types)
    for endpoint, is_edl in types.items():
        if is_edl and arrivals.get(endpoint, 0.0) <= window_open + EPS:
            updated[endpoint] = False
            report.downgraded.append(endpoint)
    return updated
