"""Virtual-library resiliency-aware retiming (VL-RAR, Section V).

The virtual library gives the synthesis tool three latch groups
(normal / extended-setup non-EDL / area-inflated EDL) so its stock
retiming can account for resiliency costs.  Crucially — and this is
what the paper measures — the tool keeps the latch-type decision
*decoupled* from retiming: types are fixed up front per variant (EVL /
NVL / RVL), retiming only respects the timing constraints they imply,
and a post-retiming swap step reclaims the area the decoupling leaves
on the table.
"""

from repro.vl.variants import VlVariant, initial_types
from repro.vl.swap import SwapReport, apply_required_upgrades, swap_unnecessary_edl
from repro.vl.flow import vl_retime

__all__ = [
    "VlVariant",
    "initial_types",
    "SwapReport",
    "apply_required_upgrades",
    "swap_unnecessary_edl",
    "vl_retime",
]
