"""Initial latch typing per VL variant (Section V / VI-C).

* ``EVL`` — every master latch starts error-detecting;
* ``NVL`` — every master starts non-error-detecting, regardless of
  criticality;
* ``RVL`` — masters at near-critical endpoints start error-detecting,
  the rest stay regular.  Near-critical is judged on the design the
  tool actually sees *before retiming*: the two-phase conversion with
  slaves still at the master outputs, whose eq. (5) arrivals include
  the slave-transparency floor.  (This matters: many masters are
  near-critical only because of that floor, and typing them
  error-detecting — with the relaxed virtual-library setup — is what
  frees the tool's retiming from their constraints.)
"""

from __future__ import annotations

from enum import Enum
from typing import Dict

from repro.latches.placement import SlavePlacement
from repro.latches.resilient import EPS, TwoPhaseCircuit


class VlVariant(Enum):
    """The three initial-typing variants: EVL, NVL, RVL."""
    EVL = "evl"
    NVL = "nvl"
    RVL = "rvl"


def initial_types(
    circuit: TwoPhaseCircuit, variant: VlVariant
) -> Dict[str, bool]:
    """Map each endpoint to its initial is-error-detecting flag."""
    if variant is VlVariant.EVL:
        return {name: True for name in circuit.endpoint_names}
    if variant is VlVariant.NVL:
        return {name: False for name in circuit.endpoint_names}
    window_open = circuit.scheme.window_open
    arrivals = circuit.endpoint_arrivals(SlavePlacement.initial())
    return {
        name: arrivals.get(name, 0.0) > window_open + EPS
        for name in circuit.endpoint_names
    }
