"""The VL-RAR retiming flow (Section V).

The substrate tool's retiming command minimizes latch count under the
timing constraints the virtual library implies:

* an endpoint typed **non-EDL** carries the extended setup, so every
  slave in its fan-in cone must keep its arrival out of the resiliency
  window — encoded by *forcing* the cut set ``g(t)`` to be retimed
  through (the hard-constraint version of G-RAR's optional credit);
* an endpoint typed **EDL** only needs the window-close limit that any
  legal two-phase design satisfies.

Where a non-EDL constraint is unsatisfiable (the cut set is empty or
not forceable), the tool drops it — the paper observed the same and
patches the resulting violations by switching those masters to EDL
afterwards (:func:`repro.vl.swap.apply_required_upgrades`).

The latch *types* themselves are never reconsidered during retiming —
that is the decoupling the paper blames for VL-RAR's gap to G-RAR —
until the optional post-retiming swap step runs.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set

from repro.latches.resilient import SequentialCost, TwoPhaseCircuit
from repro.netlist.netlist import GateType
from repro.retime.cutset import EndpointClass, compute_cut_sets
from repro.retime.graph import build_retiming_graph
from repro.retime.grar import placement_from_r
from repro.retime.ilp import solve_retiming_lp
from repro.retime.netflow import solve_retiming_flow
from repro.retime.regions import Regions, compute_regions
from repro.retime.result import RetimingResult
from repro.vl.swap import (
    SwapReport,
    apply_required_upgrades,
    swap_unnecessary_edl,
)
from repro.vl.variants import VlVariant, initial_types


def forceable_gates(circuit: TwoPhaseCircuit, regions: Regions) -> Set[str]:
    """Gates whose forced retiming (``r = -1``) is feasible.

    ``r(g) = -1`` cascades to every transitive fanin through the
    zero-weight edges, so it is feasible iff no ancestor sits in Vn.
    """
    result: Set[str] = set()
    for name in circuit.netlist.topo_order():
        gate = circuit.netlist[name]
        if gate.is_source:
            result.add(name)
            continue
        if gate.gtype is not GateType.COMB:
            continue
        if name in regions.vn:
            continue
        if all(fanin in result for fanin in gate.fanins):
            result.add(name)
    return result


def vl_retime(
    circuit: TwoPhaseCircuit,
    overhead: float,
    variant: VlVariant = VlVariant.RVL,
    post_swap: bool = True,
    solver: str = "flow",
    types: Optional[Dict[str, bool]] = None,
    forced_cuts: bool = True,
    solver_policy=None,
) -> RetimingResult:
    """Run one VL-RAR variant; returns a :class:`RetimingResult`.

    ``types`` lets the caller pin the initial latch typing (the flow
    layer computes it before its mandatory path speed-ups change the
    timing the RVL classification is based on).  The result's EDL set
    reflects the final latch *types* (what the virtual library
    instantiates), not the timing-derived need — the two differ
    exactly when the decoupling wastes area.
    """
    if overhead < 0:
        raise ValueError("overhead must be non-negative")
    phases: Dict[str, float] = {}
    started = time.perf_counter()

    tick = time.perf_counter()
    if types is None:
        types = initial_types(circuit, variant)
    regions = compute_regions(circuit)
    phases["typing"] = time.perf_counter() - tick

    # Hard constraints from non-EDL typings.  By default these are NOT
    # encoded as forced latch moves: the commercial tool meets the
    # extended virtual-library setups mostly by sizing ("the synthesis
    # tool tends to favor increasing combinational logic area to avoid
    # the resiliency window"), which the flow layer's size-only compile
    # models.  ``forced_cuts=True`` enables the alternative encoding —
    # forcing the g(t) cut sets to be retimed through — kept for the
    # ablation benchmark.
    tick = time.perf_counter()
    forced: Set[str] = set()
    dropped: Set[str] = set()
    if forced_cuts:
        cut_sets = compute_cut_sets(circuit, regions)
        forceable = forceable_gates(circuit, regions)
        for endpoint, is_edl in types.items():
            if is_edl:
                continue
            cut = cut_sets[endpoint]
            if cut.kind is EndpointClass.NEVER:
                continue
            if cut.kind is EndpointClass.ALWAYS or not all(
                g in forceable for g in cut.gates
            ):
                dropped.add(endpoint)  # tool cannot meet this constraint
                continue
            forced.update(cut.gates)
    constrained_regions = Regions(
        vm=frozenset(regions.vm | forced),
        vn=regions.vn,
        vr=frozenset(regions.vr - forced),
    )
    phases["constraints"] = time.perf_counter() - tick

    tick = time.perf_counter()
    graph = build_retiming_graph(
        circuit, constrained_regions, cut_sets=None, overhead=0.0
    )
    phases["graph"] = time.perf_counter() - tick

    tick = time.perf_counter()
    if solver == "flow":
        solution = solve_retiming_flow(graph, policy=solver_policy)
        r_values = solution.r_values
        objective = solution.objective
        iterations = solution.iterations
        backend = solution.backend
    elif solver == "lp":
        lp = solve_retiming_lp(graph)
        r_values = lp.r_values
        objective = lp.objective
        iterations = 0
        backend = "lp"
    else:
        raise ValueError(f"unknown solver {solver!r}")
    phases["solve"] = time.perf_counter() - tick

    tick = time.perf_counter()
    placement = placement_from_r(circuit, r_values)
    swap_report = SwapReport()
    types = apply_required_upgrades(circuit, placement, types, swap_report)
    if post_swap:
        types = swap_unnecessary_edl(circuit, placement, types, swap_report)
    n_edl = sum(1 for is_edl in types.values() if is_edl)
    cost = SequentialCost(
        n_slaves=placement.slave_count(circuit.netlist),
        n_masters=len(circuit.endpoint_names),
        n_edl=n_edl,
        overhead=overhead,
        latch_area=circuit.latch_area,
    )
    phases["apply"] = time.perf_counter() - tick

    comb_area = (
        circuit.netlist.comb_area(circuit.library)
        if circuit.library is not None
        else 0.0
    )
    edl_set = {name for name, is_edl in types.items() if is_edl}
    return RetimingResult(
        method=f"{variant.value}-rar" + ("" if post_swap else "-noswap"),
        circuit_name=circuit.netlist.name,
        overhead=overhead,
        placement=placement,
        edl_endpoints=edl_set,
        cost=cost,
        objective=objective,
        comb_area=comb_area,
        runtime_s=time.perf_counter() - started,
        phase_runtimes=phases,
        solver_iterations=iterations,
        notes={
            "dropped_constraints": str(len(dropped)),
            "forced_gates": str(len(forced)),
            "upgraded": str(len(swap_report.upgraded)),
            "downgraded": str(len(swap_report.downgraded)),
            "solver_backend": backend,
        },
    )
