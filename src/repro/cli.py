"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the benchmark circuits and their Table I profiles.
``run``
    Run one retiming flow on one circuit and print the outcome.
``tables``
    Regenerate the paper's tables on a circuit selection.
``example``
    Print the Fig. 4 worked example.

Every failure maps to a distinct nonzero exit code so shell pipelines
and CI can tell failure classes apart without parsing stderr:

====  ==========================================================
code  meaning
====  ==========================================================
2     usage error (unknown circuit, bad flag value)
3     netlist error (:class:`~repro.errors.NetlistError`)
4     timing error (:class:`~repro.errors.TimingError`)
5     solver error (:class:`~repro.errors.SolverError`)
6     flow-stage / invariant error
      (:class:`~repro.errors.FlowStageError`)
7     ``tables`` completed but isolated circuit failures occurred
8     simulation error (:class:`~repro.errors.SimulationError`)
====  ==========================================================

``--json-errors`` prints the structured ``to_dict()`` form of the
error on stderr as one JSON object, for machine consumption.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro import metrics
from repro.cells import default_library
from repro.circuits import build_benchmark, suite_names
from repro.errors import (
    FlowStageError,
    NetlistError,
    ReproError,
    SimulationError,
    SolverError,
    TimingError,
)
from repro.flows import METHODS, prepare_circuit, run_flow
from repro.harness import ExperimentSuite
from repro.harness.paper import PAPER_TABLE1
from repro.sim import estimate_error_rate

#: Exit codes per failure class (see module docstring).
EXIT_USAGE = 2
EXIT_NETLIST = 3
EXIT_TIMING = 4
EXIT_SOLVER = 5
EXIT_FLOW = 6
EXIT_PARTIAL = 7
EXIT_SIM = 8


def _exit_code(error: ReproError) -> int:
    if isinstance(error, NetlistError):
        return EXIT_NETLIST
    if isinstance(error, TimingError):
        return EXIT_TIMING
    if isinstance(error, SimulationError):
        return EXIT_SIM
    if isinstance(error, SolverError):
        return EXIT_SOLVER
    if isinstance(error, FlowStageError):
        return EXIT_FLOW
    return EXIT_FLOW


def _report_error(error: BaseException, args: argparse.Namespace) -> None:
    if getattr(args, "json_errors", False):
        if isinstance(error, ReproError):
            payload = error.to_dict()
        else:
            payload = {
                "type": type(error).__name__,
                "message": str(error),
                "stage": None,
                "circuit": None,
                "payload": {},
            }
        print(json.dumps(payload), file=sys.stderr)
    else:
        print(f"error: {error}", file=sys.stderr)


def _cmd_list(_: argparse.Namespace) -> int:
    print(f"{'circuit':>8s} {'P(ns)':>6s} {'flops':>6s} {'NCE':>5s} {'area':>9s}")
    for name in suite_names():
        period, flops, nce, area = PAPER_TABLE1[name]
        print(f"{name:>8s} {period:6.1f} {flops:6d} {nce:5d} {area:9.2f}")
    print("\n(paper Table I values; generated circuits match the flop")
    print(" counts exactly and the NCE fractions approximately)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.overhead < 0:
        raise ValueError("--overhead must be non-negative")
    library = default_library()
    netlist = build_benchmark(args.circuit, library)
    scheme, _ = prepare_circuit(netlist, library, sta_mode=args.sta_mode)
    print(f"{args.circuit}: {netlist.stats()}")
    print(
        f"clock: P={scheme.max_path_delay:.4f} Pi={scheme.period:.4f} "
        f"window={scheme.resiliency_window:.4f}"
    )
    outcome = run_flow(
        args.method, netlist, library, args.overhead, scheme=scheme,
        guard=args.guard, sta_mode=args.sta_mode,
        retime_cache=args.retime_cache == "on",
    )
    print(outcome.summary())
    if args.guard and args.guard != "off":
        for record in outcome.guard_records:
            status = "ok" if record.ok else "VIOLATED"
            line = f"guard[{record.stage}] {record.checkpoint}: {status}"
            if record.problems:
                line += f" — {record.problems[0]}"
            print(line)
    if args.error_rate:
        report = estimate_error_rate(
            outcome.circuit,
            outcome.retiming.placement,
            outcome.edl_endpoints,
            cycles=args.cycles,
            backend=args.sim_backend,
        )
        print(
            f"error rate: {report.error_rate:.2f}% over {report.cycles} "
            f"cycles ({report.non_edl_violations} non-EDL violations; "
            f"{report.backend} backend, "
            f"{report.cycles_per_sec:.0f} cycles/s)"
        )
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    circuits = args.circuits or ["s1196", "s1238", "s1423", "s1488"]
    if circuits == ["full"]:
        circuits = suite_names()
    jobs = max(1, args.jobs)
    collector = metrics.MetricsCollector()
    suite_started = time.perf_counter()
    suite = ExperimentSuite(
        circuits=circuits,
        error_rate_cycles=args.cycles,
        sim_backend=args.sim_backend,
        sta_mode=args.sta_mode,
        guard=args.guard,
        isolate=args.isolate,
        memo_path=args.memo,
        checkpoint_every=8 if jobs > 1 else 1,
        retime_cache=args.retime_cache == "on",
    )
    producers = [
        ("table i", suite.table1),
        ("table ii", suite.table2),
        ("table iii", suite.table3),
        ("table iv", suite.table4),
        ("table v", suite.table5),
        ("table vi", suite.table6),
        ("table vii", suite.table7),
        ("table viii", suite.table8),
        ("table ix", suite.table9),
        ("vi-d", suite.flop_comparison),
    ]
    wanted = [w.lower() for w in (args.tables or [])]
    parallel_summary = None
    with metrics.collect_into(collector):
        if jobs > 1:
            from repro.harness.parallel import (
                methods_for_tables,
                run_suite_parallel,
            )

            methods, need_rates = methods_for_tables(wanted or None)
            parallel_summary = run_suite_parallel(
                suite, jobs=jobs, methods=methods, error_rates=need_rates
            )
        for _, producer in producers:
            table = None
            if wanted:
                # Filter by the rendered id without computing the
                # table: producer names map 1:1 onto table ids.
                label = producer.__name__
                table_id = {
                    "table1": "table i", "table2": "table ii",
                    "table3": "table iii", "table4": "table iv",
                    "table5": "table v", "table6": "table vi",
                    "table7": "table vii", "table8": "table viii",
                    "table9": "table ix", "flop_comparison": "vi-d",
                }[label]
                if table_id not in wanted:
                    continue
            table = producer()
            print()
            print(table.render())
    suite.checkpoint(force=True)
    if args.bench_out:
        report = metrics.bench_report(
            collector,
            kind="suite",
            circuits=list(circuits),
            tables=wanted or "all",
            jobs=jobs,
            sim_backend=args.sim_backend,
            wall_s=round(time.perf_counter() - suite_started, 6),
            n_failures=len(suite.failures),
            parallel=parallel_summary,
        )
        metrics.write_bench(args.bench_out, report)
        print(f"\nbench report written to {args.bench_out}", file=sys.stderr)
    if suite.failures:
        report = suite.failure_report()
        print(
            f"\n{report['n_failures']} run(s) FAILED; partial tables "
            f"above", file=sys.stderr,
        )
        if args.json_errors:
            print(json.dumps(report), file=sys.stderr)
        else:
            for entry in report["failures"]:
                print(
                    f"  {entry['circuit']}/{entry['method']}"
                    f"[c={entry['overhead']}] in {entry['stage']}: "
                    f"{entry['error'].get('message')}",
                    file=sys.stderr,
                )
        return EXIT_PARTIAL
    return 0


def _cmd_example(_: argparse.Namespace) -> int:
    import runpy
    from pathlib import Path

    script = (
        Path(__file__).resolve().parent.parent.parent
        / "examples"
        / "worked_example.py"
    )
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    # Installed without the examples directory: run the core inline.
    from repro.circuits.fig4 import fig4_circuit
    from repro.retime import grar_retime

    result = grar_retime(fig4_circuit(), overhead=2.0)
    print(result.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Retiming of two-phase latch-based resilient circuits",
    )
    parser.add_argument(
        "--json-errors", action="store_true",
        help="print failures as one JSON object on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark circuits").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one flow on one circuit")
    run.add_argument("circuit", help="benchmark name, e.g. s1196")
    run.add_argument(
        "--method", default="grar", choices=list(METHODS)
    )
    run.add_argument("--overhead", type=float, default=1.0)
    run.add_argument("--error-rate", action="store_true")
    run.add_argument("--cycles", type=int, default=192)
    run.add_argument(
        "--sim-backend", default="compiled",
        choices=["event", "compiled"],
        help="Table VIII simulation backend: the compile-once kernel"
             " (default) or the reference event-driven simulator;"
             " both produce bit-identical reports",
    )
    run.add_argument(
        "--sta-mode", default="incremental",
        choices=["incremental", "full"],
        help="timing-update policy: event-driven cone-scoped repair"
             " (default) or whole-engine invalidation on every netlist"
             " change; results are bit-identical",
    )
    run.add_argument(
        "--guard", default="off", choices=["off", "warn", "strict"],
        help="inter-stage invariant checkpoints",
    )
    run.add_argument(
        "--retime-cache", default="on", choices=["on", "off"],
        help="reuse compiled retiming problems and simplex warm starts"
             " across overhead sweeps; 'off' recomputes everything"
             " (the bit-parity oracle)",
    )
    run.set_defaults(func=_cmd_run)

    tables = sub.add_parser("tables", help="regenerate paper tables")
    tables.add_argument(
        "circuits", nargs="*",
        help="circuit names, or 'full' for all twelve",
    )
    tables.add_argument(
        "--tables", nargs="*", default=None,
        help="filter, e.g. --tables 'table v' 'table viii'",
    )
    tables.add_argument("--cycles", type=int, default=128)
    tables.add_argument(
        "--sim-backend", default="compiled",
        choices=["event", "compiled"],
        help="Table VIII simulation backend (bit-identical reports;"
             " 'compiled' is several times faster)",
    )
    tables.add_argument(
        "--sta-mode", default="incremental",
        choices=["incremental", "full"],
        help="timing-update policy (bit-identical results;"
             " 'incremental' repairs only the changed cones)",
    )
    tables.add_argument(
        "--guard", default="off", choices=["off", "warn", "strict"],
        help="inter-stage invariant checkpoints",
    )
    tables.add_argument(
        "--isolate", action="store_true",
        help="record per-circuit failures and render partial tables",
    )
    tables.add_argument(
        "--memo", default=None, metavar="PATH",
        help="JSON memo of completed runs, for resuming a crashed suite",
    )
    tables.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the (circuit, method, c) cell sweep;"
             " results are bit-identical to the sequential run",
    )
    tables.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="write a BENCH_suite.json artifact (per-stage wall-clock,"
             " peak RSS, solver-backend and STA cache counters)",
    )
    tables.add_argument(
        "--retime-cache", default="on", choices=["on", "off"],
        help="reuse compiled retiming problems and simplex warm starts"
             " across the overhead sweep; 'off' recomputes everything"
             " (the bit-parity oracle)",
    )
    tables.set_defaults(func=_cmd_tables)

    sub.add_parser(
        "example", help="walk the paper's Fig. 4 worked example"
    ).set_defaults(func=_cmd_example)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        _report_error(exc, args)
        return _exit_code(exc)
    except (KeyError, ValueError) as exc:
        # Bad user input: unknown circuit name, negative overhead, ...
        _report_error(exc, args)
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
