"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the benchmark circuits and their Table I profiles.
``run``
    Run one retiming flow on one circuit and print the outcome.
    ``--from-bench``/``--from-verilog`` run on an external netlist
    through the two-phase conversion front end instead.
``tables``
    Regenerate the paper's tables on a circuit selection; external
    netlists join the selection via ``--from-bench``/``--from-verilog``.
``convert``
    Convert an external flop netlist (ISCAS89 ``.bench`` or structural
    Verilog) to two-phase latch-based form and print the conversion
    report; ``--out`` writes the converted design back as Verilog.
``example``
    Print the Fig. 4 worked example.
``scenarios``
    Sweep circuits × variation corners × upset models × hardening
    policies with graceful degradation: failing scenarios settle as
    typed FAILED report entries and the sweep continues.
``cache``
    Inspect or prune a persistent artifact store (``--store DIR``):
    ``ls``, ``stats``, ``gc``, ``clear``.

``run``, ``tables``, and ``scenarios`` accept ``--store DIR`` to back
their caches with an on-disk content-addressed store; results are
bit-identical with and without it (store-off is the parity oracle).

Every failure maps to a distinct nonzero exit code so shell pipelines
and CI can tell failure classes apart without parsing stderr:

====  ==========================================================
code  meaning
====  ==========================================================
2     usage error (unknown circuit, bad flag value)
3     netlist error (:class:`~repro.errors.NetlistError`)
4     timing error (:class:`~repro.errors.TimingError`)
5     solver error (:class:`~repro.errors.SolverError`)
6     flow-stage / invariant error
      (:class:`~repro.errors.FlowStageError`)
7     ``tables`` completed but isolated circuit failures occurred
8     simulation error (:class:`~repro.errors.SimulationError`)
====  ==========================================================

``--json-errors`` prints the structured ``to_dict()`` form of the
error on stderr as one JSON object, for machine consumption.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import contextmanager
from typing import List, Optional

from repro import metrics
from repro.cells import default_library
from repro.circuits import build_benchmark, suite_names
from repro.errors import (
    FlowStageError,
    NetlistError,
    ReproError,
    SimulationError,
    SolverError,
    TimingError,
)
from repro.flows import METHODS, prepare_circuit, run_flow
from repro.harness import ExperimentSuite
from repro.harness.paper import PAPER_TABLE1
from repro.sim import estimate_error_rate
from repro.store import open_store, use_store

#: Exit codes per failure class (see module docstring).
EXIT_USAGE = 2
EXIT_NETLIST = 3
EXIT_TIMING = 4
EXIT_SOLVER = 5
EXIT_FLOW = 6
EXIT_PARTIAL = 7
EXIT_SIM = 8


def _exit_code(error: ReproError) -> int:
    if isinstance(error, NetlistError):
        return EXIT_NETLIST
    if isinstance(error, TimingError):
        return EXIT_TIMING
    if isinstance(error, SimulationError):
        return EXIT_SIM
    if isinstance(error, SolverError):
        return EXIT_SOLVER
    if isinstance(error, FlowStageError):
        return EXIT_FLOW
    return EXIT_FLOW


def _report_error(error: BaseException, args: argparse.Namespace) -> None:
    if getattr(args, "json_errors", False):
        if isinstance(error, ReproError):
            payload = error.to_dict()
        else:
            payload = {
                "type": type(error).__name__,
                "message": str(error),
                "stage": None,
                "circuit": None,
                "payload": {},
            }
        print(json.dumps(payload), file=sys.stderr)
    else:
        print(f"error: {error}", file=sys.stderr)


def _open_cli_store(args: argparse.Namespace):
    """Resolve ``--store DIR`` (plus ``--store-capacity``) or None."""
    path = getattr(args, "store", None)
    if not path:
        return None
    return open_store(path, capacity=getattr(args, "store_capacity", None))


@contextmanager
def _store_scope(store):
    """Make ``store`` ambient for a command body (no-op when None)."""
    if store is None:
        yield None
    else:
        with use_store(store):
            yield store


def _cmd_list(_: argparse.Namespace) -> int:
    print(f"{'circuit':>8s} {'P(ns)':>6s} {'flops':>6s} {'NCE':>5s} {'area':>9s}")
    for name in suite_names():
        period, flops, nce, area = PAPER_TABLE1[name]
        print(f"{name:>8s} {period:6.1f} {flops:6d} {nce:5d} {area:9.2f}")
    print("\n(paper Table I values; generated circuits match the flop")
    print(" counts exactly and the NCE fractions approximately)")
    return 0


def _external_netlist(args: argparse.Namespace, library):
    """Resolve ``--from-bench``/``--from-verilog`` to a netlist, or None."""
    from repro.convert import load_netlist

    sources = [
        (path, fmt)
        for path, fmt in (
            (getattr(args, "from_bench", None), "bench"),
            (getattr(args, "from_verilog", None), "verilog"),
        )
        if path
    ]
    if not sources:
        return None
    if len(sources) > 1 or getattr(args, "circuit", None):
        raise ValueError(
            "give exactly one of: a circuit name, --from-bench, or "
            "--from-verilog"
        )
    path, fmt = sources[0]
    return load_netlist(path, library, fmt=fmt)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.overhead < 0:
        raise ValueError("--overhead must be non-negative")
    library = default_library()
    netlist = _external_netlist(args, library)
    convert = None
    if netlist is not None:
        # External designs enter through the conversion front end.
        convert = "two-phase"
    elif args.circuit:
        netlist = build_benchmark(args.circuit, library)
    else:
        raise ValueError(
            "run needs a circuit name, --from-bench, or --from-verilog"
        )
    with _store_scope(_open_cli_store(args)):
        scheme, _ = prepare_circuit(
            netlist, library, sta_mode=args.sta_mode,
            sta_engine=args.sta_engine, convert=convert,
        )
        print(f"{netlist.name}: {netlist.stats()}")
        print(
            f"clock: P={scheme.max_path_delay:.4f} Pi={scheme.period:.4f} "
            f"window={scheme.resiliency_window:.4f}"
        )
        outcome = run_flow(
            args.method, netlist, library, args.overhead, scheme=scheme,
            guard=args.guard, sta_mode=args.sta_mode,
            sta_engine=args.sta_engine,
            retime_cache=args.retime_cache == "on",
            convert=convert,
        )
    if outcome.conversion is not None:
        print(f"converted: {outcome.conversion.summary()}")
    print(outcome.summary())
    if args.guard and args.guard != "off":
        for record in outcome.guard_records:
            status = "ok" if record.ok else "VIOLATED"
            line = f"guard[{record.stage}] {record.checkpoint}: {status}"
            if record.problems:
                line += f" — {record.problems[0]}"
            print(line)
    if args.error_rate:
        report = estimate_error_rate(
            outcome.circuit,
            outcome.retiming.placement,
            outcome.edl_endpoints,
            cycles=args.cycles,
            backend=args.sim_backend,
        )
        rate = (
            "unmeasured"
            if report.cycles_per_sec is None
            else f"{report.cycles_per_sec:.0f} cycles/s"
        )
        print(
            f"error rate: {report.error_rate:.2f}% over {report.cycles} "
            f"cycles ({report.non_edl_violations} non-EDL violations; "
            f"{report.backend} backend, {rate})"
        )
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    library = default_library()
    external = []
    for path in args.from_bench or []:
        from repro.convert import load_netlist

        external.append(load_netlist(path, library, fmt="bench"))
    for path in args.from_verilog or []:
        from repro.convert import load_netlist

        external.append(load_netlist(path, library, fmt="verilog"))
    circuits = list(args.circuits)
    if circuits == ["full"]:
        circuits = suite_names()
    elif not circuits and not external:
        circuits = ["s1196", "s1238", "s1423", "s1488"]
    jobs = max(1, args.jobs)
    collector = metrics.MetricsCollector()
    suite_started = time.perf_counter()
    suite = ExperimentSuite(
        circuits=circuits + [nl.name for nl in external],
        library=library,
        error_rate_cycles=args.cycles,
        sim_backend=args.sim_backend,
        sta_mode=args.sta_mode,
        sta_engine=args.sta_engine,
        guard=args.guard,
        isolate=args.isolate,
        memo_path=args.memo,
        checkpoint_every=8 if jobs > 1 else 1,
        retime_cache=args.retime_cache == "on",
        store=_open_cli_store(args),
    )
    for nl in external:
        # Validate through the conversion front end; the derived
        # scheme is bit-identical to the suite's own recipe, so the
        # seeded clock keeps converted and native sweeps comparable.
        from repro.convert import convert_to_two_phase

        design = convert_to_two_phase(
            nl, library, sta_mode=args.sta_mode,
            sta_engine=args.sta_engine,
        )
        suite.add_netlist(nl.name, nl, scheme=design.scheme)
        print(f"converted: {design.report.summary()}", file=sys.stderr)
    producers = [
        ("table i", suite.table1),
        ("table ii", suite.table2),
        ("table iii", suite.table3),
        ("table iv", suite.table4),
        ("table v", suite.table5),
        ("table vi", suite.table6),
        ("table vii", suite.table7),
        ("table viii", suite.table8),
        ("table ix", suite.table9),
        ("vi-d", suite.flop_comparison),
    ]
    wanted = [w.lower() for w in (args.tables or [])]
    parallel_summary = None
    with metrics.collect_into(collector):
        if jobs > 1:
            from repro.harness.parallel import (
                methods_for_tables,
                run_suite_parallel,
            )

            methods, need_rates = methods_for_tables(wanted or None)
            parallel_summary = run_suite_parallel(
                suite, jobs=jobs, methods=methods, error_rates=need_rates
            )
        for _, producer in producers:
            table = None
            if wanted:
                # Filter by the rendered id without computing the
                # table: producer names map 1:1 onto table ids.
                label = producer.__name__
                table_id = {
                    "table1": "table i", "table2": "table ii",
                    "table3": "table iii", "table4": "table iv",
                    "table5": "table v", "table6": "table vi",
                    "table7": "table vii", "table8": "table viii",
                    "table9": "table ix", "flop_comparison": "vi-d",
                }[label]
                if table_id not in wanted:
                    continue
            table = producer()
            print()
            print(table.render())
    suite.checkpoint(force=True)
    if args.bench_out:
        report = metrics.bench_report(
            collector,
            kind="suite",
            circuits=list(circuits),
            tables=wanted or "all",
            jobs=jobs,
            sim_backend=args.sim_backend,
            wall_s=round(time.perf_counter() - suite_started, 6),
            n_failures=len(suite.failures),
            parallel=parallel_summary,
        )
        metrics.write_bench(args.bench_out, report)
        print(f"\nbench report written to {args.bench_out}", file=sys.stderr)
    if suite.failures:
        report = suite.failure_report()
        print(
            f"\n{report['n_failures']} run(s) FAILED; partial tables "
            f"above", file=sys.stderr,
        )
        if args.json_errors:
            print(json.dumps(report), file=sys.stderr)
        else:
            for entry in report["failures"]:
                print(
                    f"  {entry['circuit']}/{entry['method']}"
                    f"[c={entry['overhead']}] in {entry['stage']}: "
                    f"{entry['error'].get('message')}",
                    file=sys.stderr,
                )
        return EXIT_PARTIAL
    return 0


def _scenario_netlists(names: List[str], library) -> List[tuple]:
    """Resolve CLI circuit names to (name, netlist) pairs.

    ``fig4`` maps to the paper's worked example; everything else goes
    through the benchmark generator.
    """
    pairs = []
    for name in names:
        if name == "fig4":
            from repro.circuits.fig4 import fig4_netlist

            pairs.append((name, fig4_netlist()))
        else:
            pairs.append((name, build_benchmark(name, library)))
    return pairs


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios.engine import run_scenarios

    if args.overhead < 0:
        raise ValueError("--overhead must be non-negative")
    if not 0.0 <= args.harden_fraction <= 1.0:
        raise ValueError("--harden-fraction must be in [0, 1]")
    if args.deadline is not None and args.deadline <= 0:
        raise ValueError("--deadline must be positive")
    library = default_library()
    pairs = _scenario_netlists(args.circuits, library)
    collector = metrics.MetricsCollector()
    started = time.perf_counter()
    with metrics.collect_into(collector):
        report = run_scenarios(
            pairs,
            library,
            corners=args.corners,
            upsets=args.upsets,
            policies=args.policy,
            overhead=args.overhead,
            cycles=args.cycles,
            seed=args.seed,
            n_seeds=max(1, args.sim_seeds),
            sim_backend=args.sim_backend,
            guard=None if args.guard == "off" else args.guard,
            jobs=max(1, args.jobs),
            deadline_s=args.deadline,
            memo_path=args.memo,
            retry_failed=args.retry_failed,
            harden_fraction=args.harden_fraction,
            store=_open_cli_store(args),
        )
    header = (
        f"{'circuit':>8s} {'corner':>11s} {'upset':>9s} {'policy':>9s} "
        f"{'status':>7s} {'err%':>6s} {'edl':>4s} {'area':>9s}"
    )
    print(header)
    for entry in report.entries:
        if entry["status"] == "ok":
            print(
                f"{entry['circuit']:>8s} {entry['corner']:>11s} "
                f"{entry['upset']:>9s} {entry['policy']:>9s} "
                f"{'ok':>7s} {entry['error_rate']:6.2f} "
                f"{entry['n_edl']:4d} {entry['total_area']:9.2f}"
            )
        else:
            print(
                f"{entry['circuit']:>8s} {entry['corner']:>11s} "
                f"{entry['upset']:>9s} {entry['policy']:>9s} "
                f"{'FAILED':>7s} [{entry['failure_kind']}"
                f" x{entry['attempts']}] {entry['message']}"
            )
    n_ok = len(report.ok_entries)
    n_failed = len(report.failed_entries)
    print(
        f"\n{n_ok} ok, {n_failed} failed "
        f"(seed={report.seed}, backend={report.sim_backend})"
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json())
        print(f"report written to {args.out}", file=sys.stderr)
    if args.bench_out:
        bench = metrics.bench_report(
            collector,
            kind="scenarios",
            circuits=list(args.circuits),
            corners=list(args.corners),
            upsets=list(args.upsets),
            policies=list(args.policy),
            seed=args.seed,
            jobs=max(1, args.jobs),
            sim_backend=args.sim_backend,
            wall_s=round(time.perf_counter() - started, 6),
            n_ok=n_ok,
            n_failed=n_failed,
        )
        metrics.write_bench(args.bench_out, bench)
        print(f"bench report written to {args.bench_out}", file=sys.stderr)
    if n_failed and args.json_errors:
        print(
            json.dumps({"failed": report.failed_entries}),
            file=sys.stderr,
        )
    # Graceful-degradation contract: isolated failures are part of a
    # successful sweep.  Only an entirely-failed matrix is an error.
    if report.entries and not n_ok:
        return EXIT_PARTIAL
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.convert import convert_to_two_phase, load_netlist

    if args.overhead < 0:
        raise ValueError("--overhead must be non-negative")
    library = default_library()
    netlist = load_netlist(
        args.netlist, library, fmt=args.format, name=args.name
    )
    design = convert_to_two_phase(
        netlist, library,
        sta_mode=args.sta_mode, sta_engine=args.sta_engine,
        balance=not args.no_balance,
    )
    report = design.report
    print(f"{netlist.name}: {netlist.stats()}")
    print(
        f"clock: P={design.scheme.max_path_delay:.4f} "
        f"Pi={design.scheme.period:.4f} "
        f"window={design.scheme.resiliency_window:.4f}"
    )
    print(report.summary())
    print(
        f"sequential area: {report.flop_area_before:.2f} (flops) -> "
        f"{report.latch_area_after:.2f} (latches); "
        f"resilient floor at c={args.overhead}: "
        f"{report.resilient_area(library, args.overhead):.2f}"
    )
    print(f"phase legality: {design.legality.summary()}")
    if args.out:
        from repro.netlist.verilog import write_verilog

        with open(args.out, "w") as handle:
            write_verilog(design.netlist, library, handle)
        print(f"converted design written to {args.out}", file=sys.stderr)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = open_store(args.store)
    if not store.persistent:
        raise ValueError("cache needs a persistent store (--store DIR)")
    if args.op == "ls":
        rows = store.ls(args.namespace)
        if not rows:
            print("(empty)")
            return 0
        print(f"{'namespace':>14s} {'bytes':>10s} {'key':s}")
        for row in rows:
            print(
                f"{row['namespace']:>14s} {row['bytes']:>10d} {row['key']}"
            )
        return 0
    if args.op == "stats":
        print(json.dumps(store.stats(), indent=2, sort_keys=True))
        return 0
    if args.op == "gc":
        result = store.gc(
            max_bytes=args.max_bytes, max_age_s=args.max_age
        )
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    # clear
    print(json.dumps(store.clear(args.namespace), sort_keys=True))
    return 0


def _cmd_example(_: argparse.Namespace) -> int:
    import runpy
    from pathlib import Path

    script = (
        Path(__file__).resolve().parent.parent.parent
        / "examples"
        / "worked_example.py"
    )
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    # Installed without the examples directory: run the core inline.
    from repro.circuits.fig4 import fig4_circuit
    from repro.retime import grar_retime

    result = grar_retime(fig4_circuit(), overhead=2.0)
    print(result.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Retiming of two-phase latch-based resilient circuits",
    )
    parser.add_argument(
        "--json-errors", action="store_true",
        help="print failures as one JSON object on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark circuits").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one flow on one circuit")
    run.add_argument(
        "circuit", nargs="?", default=None,
        help="benchmark name, e.g. s1196 (omit when running an"
             " external netlist via --from-bench/--from-verilog)",
    )
    run.add_argument(
        "--from-bench", default=None, metavar="PATH",
        help="run an external ISCAS89 .bench netlist through the"
             " two-phase conversion front end",
    )
    run.add_argument(
        "--from-verilog", default=None, metavar="PATH",
        help="run an external structural-Verilog netlist through the"
             " two-phase conversion front end",
    )
    run.add_argument(
        "--method", default="grar", choices=list(METHODS)
    )
    run.add_argument("--overhead", type=float, default=1.0)
    run.add_argument("--error-rate", action="store_true")
    run.add_argument("--cycles", type=int, default=192)
    run.add_argument(
        "--sim-backend", default="compiled",
        choices=["event", "compiled", "vector"],
        help="Table VIII simulation backend: the compile-once kernel"
             " (default), the reference event-driven simulator, or the"
             " lane-vectorized multi-seed engine; all three produce"
             " bit-identical reports",
    )
    run.add_argument(
        "--sta-mode", default="incremental",
        choices=["incremental", "full"],
        help="timing-update policy: event-driven cone-scoped repair"
             " (default) or whole-engine invalidation on every netlist"
             " change; results are bit-identical",
    )
    run.add_argument(
        "--sta-engine", default="object",
        choices=["object", "arena"],
        help="timing-engine implementation: the object-graph reference"
             " (default) or the vectorized flat-array arena;"
             " results are bit-identical",
    )
    run.add_argument(
        "--guard", default="off", choices=["off", "warn", "strict"],
        help="inter-stage invariant checkpoints",
    )
    run.add_argument(
        "--retime-cache", default="on", choices=["on", "off"],
        help="reuse compiled retiming problems and simplex warm starts"
             " across overhead sweeps; 'off' recomputes everything"
             " (the bit-parity oracle)",
    )
    run.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store: compiled retiming problems"
             " and timing arenas are reused across invocations"
             " (results are bit-identical with and without it)",
    )
    run.add_argument(
        "--store-capacity", type=int, default=None, metavar="N",
        help="memory-tier LRU capacity per store namespace"
             " (default: 8)",
    )
    run.set_defaults(func=_cmd_run)

    tables = sub.add_parser("tables", help="regenerate paper tables")
    tables.add_argument(
        "circuits", nargs="*",
        help="circuit names, or 'full' for all twelve",
    )
    tables.add_argument(
        "--tables", nargs="*", default=None,
        help="filter, e.g. --tables 'table v' 'table viii'",
    )
    tables.add_argument(
        "--from-bench", action="append", default=None, metavar="PATH",
        help="add an external ISCAS89 .bench netlist to the circuit"
             " selection (converted to two-phase form; repeatable)",
    )
    tables.add_argument(
        "--from-verilog", action="append", default=None, metavar="PATH",
        help="add an external structural-Verilog netlist to the"
             " circuit selection (converted; repeatable)",
    )
    tables.add_argument("--cycles", type=int, default=128)
    tables.add_argument(
        "--sim-backend", default="compiled",
        choices=["event", "compiled", "vector"],
        help="Table VIII simulation backend (bit-identical reports;"
             " 'compiled' is several times faster, 'vector' batches"
             " seeds into NumPy lanes)",
    )
    tables.add_argument(
        "--sta-mode", default="incremental",
        choices=["incremental", "full"],
        help="timing-update policy (bit-identical results;"
             " 'incremental' repairs only the changed cones)",
    )
    tables.add_argument(
        "--sta-engine", default="object",
        choices=["object", "arena"],
        help="timing-engine implementation (bit-identical results;"
             " 'arena' runs the full DPs on flat arrays)",
    )
    tables.add_argument(
        "--guard", default="off", choices=["off", "warn", "strict"],
        help="inter-stage invariant checkpoints",
    )
    tables.add_argument(
        "--isolate", action="store_true",
        help="record per-circuit failures and render partial tables",
    )
    tables.add_argument(
        "--memo", default=None, metavar="PATH",
        help="JSON memo of completed runs, for resuming a crashed suite",
    )
    tables.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the (circuit, method, c) cell sweep;"
             " results are bit-identical to the sequential run",
    )
    tables.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="write a BENCH_suite.json artifact (per-stage wall-clock,"
             " peak RSS, solver-backend and STA cache counters)",
    )
    tables.add_argument(
        "--retime-cache", default="on", choices=["on", "off"],
        help="reuse compiled retiming problems and simplex warm starts"
             " across the overhead sweep; 'off' recomputes everything"
             " (the bit-parity oracle)",
    )
    tables.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store: compiled retiming problems,"
             " timing arenas, and the suite memo are reused across"
             " invocations and shared with --jobs workers"
             " (bit-identical tables with and without it)",
    )
    tables.add_argument(
        "--store-capacity", type=int, default=None, metavar="N",
        help="memory-tier LRU capacity per store namespace"
             " (default: 8)",
    )
    tables.set_defaults(func=_cmd_tables)

    convert = sub.add_parser(
        "convert",
        help="convert a flop netlist to two-phase latch-based form",
        description="Read an external flop netlist (ISCAS89 .bench or"
        " structural Verilog), split each flop into a master/slave"
        " latch pair, derive the two-phase clock from the critical"
        " path, balance the initial slave placement, and validate the"
        " phase-legality invariants.",
    )
    convert.add_argument(
        "netlist", help="path to a .bench or .v netlist file"
    )
    convert.add_argument(
        "--format", default="auto", choices=["auto", "bench", "verilog"],
        help="input format (default: by file extension)",
    )
    convert.add_argument(
        "--name", default=None,
        help="circuit name override (default: file stem)",
    )
    convert.add_argument(
        "--overhead", type=float, default=1.0,
        help="EDL overhead c for the resilient-area floor line",
    )
    convert.add_argument(
        "--no-balance", action="store_true",
        help="keep every slave at its master's output (skip the"
             " forward balancing through the mandatory region)",
    )
    convert.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the converted design as structural Verilog",
    )
    convert.add_argument(
        "--sta-mode", default="incremental",
        choices=["incremental", "full"],
        help=argparse.SUPPRESS,
    )
    convert.add_argument(
        "--sta-engine", default="object",
        choices=["object", "arena"],
        help=argparse.SUPPRESS,
    )
    convert.set_defaults(func=_cmd_convert)

    sub.add_parser(
        "example", help="walk the paper's Fig. 4 worked example"
    ).set_defaults(func=_cmd_example)

    from repro.scenarios.engine import (
        CORNERS,
        DEFAULT_CORNERS,
        DEFAULT_POLICIES,
        DEFAULT_UPSETS,
        POLICIES,
        UPSETS,
    )

    scen = sub.add_parser(
        "scenarios",
        help="sweep corners × upsets × hardening policies",
        description="Soft-error & variation scenario sweep with"
        " graceful degradation: scenarios that crash, hang past the"
        " deadline, or die settle as typed FAILED entries and the"
        " sweep continues.  The exit code is 0 whenever at least one"
        " scenario succeeded.",
    )
    scen.add_argument(
        "circuits", nargs="+",
        help="benchmark names (e.g. s1196), or 'fig4'",
    )
    scen.add_argument(
        "--corners", nargs="+", default=list(DEFAULT_CORNERS),
        choices=sorted(CORNERS), metavar="CORNER",
        help=f"variation corners (default: {' '.join(DEFAULT_CORNERS)};"
             f" all: {' '.join(sorted(CORNERS))})",
    )
    scen.add_argument(
        "--upsets", nargs="+", default=list(DEFAULT_UPSETS),
        choices=sorted(UPSETS), metavar="UPSET",
        help=f"upset models (default: {' '.join(DEFAULT_UPSETS)};"
             f" all: {' '.join(sorted(UPSETS))})",
    )
    scen.add_argument(
        "--policy", nargs="+", default=list(DEFAULT_POLICIES),
        choices=list(POLICIES), metavar="POLICY",
        help=f"hardening policies (default: {' '.join(DEFAULT_POLICIES)};"
             f" all: {' '.join(POLICIES)})",
    )
    scen.add_argument(
        "--seed", type=int, default=2017,
        help="base seed; each scenario derives its own stream from"
             " a hash of (seed, circuit, corner, upset, policy)",
    )
    scen.add_argument("--overhead", type=float, default=1.0)
    scen.add_argument("--cycles", type=int, default=96)
    scen.add_argument(
        "--harden-fraction", type=float, default=0.5,
        help="fraction of fragile endpoints the 'selective' policy"
             " hardens with EDL masters",
    )
    scen.add_argument(
        "--sim-backend", default="compiled",
        choices=["event", "compiled", "vector"],
        help="simulation backend; all honour injection plans"
             " bit-identically and render the identical report file",
    )
    scen.add_argument(
        "--sim-seeds", type=int, default=1, metavar="N",
        help="Monte-Carlo seeds per scenario (lane 0 is the legacy"
             " derived seed; entries report the mean error rate)",
    )
    scen.add_argument(
        "--guard", default="off", choices=["off", "warn", "strict"],
        help="inter-stage invariant checkpoints inside each scenario",
    )
    scen.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the scenario matrix",
    )
    scen.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-scenario wall-clock deadline; an overrunning worker"
             " is killed, retried once, then recorded as"
             " FAILED(kind=deadline)",
    )
    scen.add_argument(
        "--memo", default=None, metavar="PATH",
        help="resumable JSON memo: settled scenarios are checkpointed"
             " as they land and skipped on re-runs",
    )
    scen.add_argument(
        "--retry-failed", action="store_true",
        help="re-attempt scenarios the memo recorded as FAILED",
    )
    scen.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the scenario report as JSON (byte-identical"
             " across backends and repeated invocations)",
    )
    scen.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="write a BENCH_scenarios.json artifact",
    )
    scen.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store: compiled artifacts and the"
             " scenario memo are reused across invocations"
             " (bit-identical reports with and without it)",
    )
    scen.add_argument(
        "--store-capacity", type=int, default=None, metavar="N",
        help="memory-tier LRU capacity per store namespace"
             " (default: 8)",
    )
    scen.set_defaults(func=_cmd_scenarios)

    cache = sub.add_parser(
        "cache",
        help="inspect or prune a persistent artifact store",
        description="Operate on an on-disk artifact store written by"
        " --store: list artifacts, print usage statistics, bound the"
        " footprint (gc), or drop cached results.",
    )
    cache.add_argument(
        "op", choices=["ls", "stats", "gc", "clear"],
        help="ls: artifact rows; stats: JSON summary; gc: bound the"
             " disk tier; clear: drop artifacts",
    )
    cache.add_argument(
        "--store", required=True, metavar="DIR",
        help="artifact store directory",
    )
    cache.add_argument(
        "--namespace", default=None, metavar="NS",
        help="restrict ls/clear to one namespace (e.g. compiled-grar,"
             " arena, suite-memo, scenario-memo)",
    )
    cache.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="gc: evict oldest artifacts until the store fits N bytes",
    )
    cache.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="gc: evict artifacts older than SECONDS",
    )
    cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        _report_error(exc, args)
        return _exit_code(exc)
    except (KeyError, ValueError) as exc:
        # Bad user input: unknown circuit name, negative overhead, ...
        _report_error(exc, args)
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
