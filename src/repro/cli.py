"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the benchmark circuits and their Table I profiles.
``run``
    Run one retiming flow on one circuit and print the outcome.
``tables``
    Regenerate the paper's tables on a circuit selection.
``example``
    Print the Fig. 4 worked example.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cells import default_library
from repro.circuits import build_benchmark, suite_names
from repro.flows import METHODS, prepare_circuit, run_flow
from repro.harness import ExperimentSuite
from repro.harness.paper import PAPER_TABLE1
from repro.sim import estimate_error_rate


def _cmd_list(_: argparse.Namespace) -> int:
    print(f"{'circuit':>8s} {'P(ns)':>6s} {'flops':>6s} {'NCE':>5s} {'area':>9s}")
    for name in suite_names():
        period, flops, nce, area = PAPER_TABLE1[name]
        print(f"{name:>8s} {period:6.1f} {flops:6d} {nce:5d} {area:9.2f}")
    print("\n(paper Table I values; generated circuits match the flop")
    print(" counts exactly and the NCE fractions approximately)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    library = default_library()
    netlist = build_benchmark(args.circuit, library)
    scheme, _ = prepare_circuit(netlist, library)
    print(f"{args.circuit}: {netlist.stats()}")
    print(
        f"clock: P={scheme.max_path_delay:.4f} Pi={scheme.period:.4f} "
        f"window={scheme.resiliency_window:.4f}"
    )
    outcome = run_flow(
        args.method, netlist, library, args.overhead, scheme=scheme
    )
    print(outcome.summary())
    if args.error_rate:
        report = estimate_error_rate(
            outcome.circuit,
            outcome.retiming.placement,
            outcome.edl_endpoints,
            cycles=args.cycles,
        )
        print(
            f"error rate: {report.error_rate:.2f}% over {report.cycles} "
            f"cycles ({report.non_edl_violations} non-EDL violations)"
        )
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    circuits = args.circuits or ["s1196", "s1238", "s1423", "s1488"]
    if circuits == ["full"]:
        circuits = suite_names()
    suite = ExperimentSuite(circuits=circuits, error_rate_cycles=args.cycles)
    producers = [
        ("table i", suite.table1),
        ("table ii", suite.table2),
        ("table iii", suite.table3),
        ("table iv", suite.table4),
        ("table v", suite.table5),
        ("table vi", suite.table6),
        ("table vii", suite.table7),
        ("table viii", suite.table8),
        ("table ix", suite.table9),
        ("vi-d", suite.flop_comparison),
    ]
    wanted = [w.lower() for w in (args.tables or [])]
    for _, producer in producers:
        table = None
        if wanted:
            # Filter by the rendered id without computing the table:
            # producer names map 1:1 onto table ids.
            label = producer.__name__
            table_id = {
                "table1": "table i", "table2": "table ii",
                "table3": "table iii", "table4": "table iv",
                "table5": "table v", "table6": "table vi",
                "table7": "table vii", "table8": "table viii",
                "table9": "table ix", "flop_comparison": "vi-d",
            }[label]
            if table_id not in wanted:
                continue
        table = producer()
        print()
        print(table.render())
    return 0


def _cmd_example(_: argparse.Namespace) -> int:
    import runpy
    from pathlib import Path

    script = (
        Path(__file__).resolve().parent.parent.parent
        / "examples"
        / "worked_example.py"
    )
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    # Installed without the examples directory: run the core inline.
    from repro.circuits.fig4 import fig4_circuit
    from repro.retime import grar_retime

    result = grar_retime(fig4_circuit(), overhead=2.0)
    print(result.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Retiming of two-phase latch-based resilient circuits",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark circuits").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one flow on one circuit")
    run.add_argument("circuit", help="benchmark name, e.g. s1196")
    run.add_argument(
        "--method", default="grar", choices=list(METHODS)
    )
    run.add_argument("--overhead", type=float, default=1.0)
    run.add_argument("--error-rate", action="store_true")
    run.add_argument("--cycles", type=int, default=192)
    run.set_defaults(func=_cmd_run)

    tables = sub.add_parser("tables", help="regenerate paper tables")
    tables.add_argument(
        "circuits", nargs="*",
        help="circuit names, or 'full' for all twelve",
    )
    tables.add_argument(
        "--tables", nargs="*", default=None,
        help="filter, e.g. --tables 'table v' 'table viii'",
    )
    tables.add_argument("--cycles", type=int, default=128)
    tables.set_defaults(func=_cmd_tables)

    sub.add_parser(
        "example", help="walk the paper's Fig. 4 worked example"
    ).set_defaults(func=_cmd_example)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
