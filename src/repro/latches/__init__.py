"""Two-phase latch-based resilient circuit model (Sections II-III).

The flop-based netlist is *cut at its sequential elements*: every flop
becomes a fixed master latch (its Q launches the combinational cloud at
time 0, its D terminates it) plus a movable slave latch that starts at
the master's output.  Primary inputs are treated as outputs of fixed
environment masters — each also carrying a movable slave, as in the
paper's Fig. 4 where the host edges into I1/I2 have weight 1 — and
primary outputs as inputs of fixed masters of the next stage.

A retiming configuration is a :class:`SlavePlacement` (the ``r`` labels
of Section II-C restricted to {-1, 0}); :class:`TwoPhaseCircuit`
evaluates eq. (5) arrivals, constraints (6)/(7), error-detecting status
per master, and the sequential-area cost the paper minimizes.
"""

from repro.latches.placement import HOST, SlavePlacement
from repro.latches.resilient import (
    LegalityReport,
    SequentialCost,
    TwoPhaseCircuit,
)
from repro.latches.conversion import (
    original_flop_report,
    flop_resilient_area,
    ConversionReport,
    FlopDesignReport,
)

__all__ = [
    "HOST",
    "SlavePlacement",
    "TwoPhaseCircuit",
    "LegalityReport",
    "SequentialCost",
    "original_flop_report",
    "flop_resilient_area",
    "ConversionReport",
    "FlopDesignReport",
]
