"""Flop-design reporting and flop-to-latch conversion accounting.

Covers the Table I circuit characterization (period, flop count,
near-critical endpoints, area of the original flop-based design) and
the Section VI-D comparison against a *flop-based* resilient design,
estimated by adding the EDL overhead to every near-critical endpoint
of the original design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.library import Library
from repro.clocks import ClockScheme
from repro.netlist.netlist import Netlist
from repro.sta.engine import TimingEngine


@dataclass(frozen=True)
class FlopDesignReport:
    """Characterization of the original flop-based design (Table I)."""

    name: str
    max_path_delay: float
    n_flops: int
    n_inputs: int
    n_outputs: int
    n_comb_gates: int
    n_near_critical: int
    worst_arrival: float
    comb_area: float
    flop_area: float

    @property
    def total_area(self) -> float:
        """Combinational plus flop area of the original design."""
        return self.comb_area + self.flop_area


def original_flop_report(
    netlist: Netlist,
    scheme: ClockScheme,
    library: Library,
    model: str = "path",
) -> FlopDesignReport:
    """Table I row for a flop-based netlist.

    A *near-critical endpoint* (NCE) is a master whose data arrival
    falls inside the resiliency window, i.e. beyond ``Pi`` — these are
    the flops that would need error detection without retiming.
    """
    engine = TimingEngine(netlist, library, model=model)
    arrivals = engine.endpoint_arrivals()
    nce = [
        name
        for name, value in arrivals.items()
        if value > scheme.window_open + 1e-9
    ]
    return FlopDesignReport(
        name=netlist.name,
        max_path_delay=scheme.max_path_delay,
        n_flops=len(netlist.flops()),
        n_inputs=len(netlist.inputs()),
        n_outputs=len(netlist.outputs()),
        n_comb_gates=len(netlist.comb_gates()),
        n_near_critical=len(nce),
        worst_arrival=max(arrivals.values()) if arrivals else 0.0,
        comb_area=netlist.comb_area(library),
        flop_area=netlist.flop_area(library),
    )


@dataclass(frozen=True)
class ConversionReport:
    """Accounting for one flop-to-two-phase conversion (Section VI-D).

    Produced by :func:`repro.convert.convert_to_two_phase`; pairs the
    original flop design's characterization with the sequential state
    of the converted latch-based design *before* any retiming method
    runs — the Section VI-D comparison baselines both sides from here.
    """

    name: str
    n_flops: int
    n_inputs: int
    n_outputs: int
    n_masters: int
    n_slaves: int
    n_balanced: int
    n_forced_edl: int
    period: float
    window: float
    worst_arrival: float
    comb_area: float
    flop_area_before: float
    latch_area_after: float

    @property
    def seq_area_delta(self) -> float:
        """Sequential-area change from replacing flops with latches."""
        return self.latch_area_after - self.flop_area_before

    def resilient_area(self, library: Library, overhead: float) -> float:
        """Converted-design area with EDL overhead on the forced set.

        The conversion-time analogue of :func:`flop_resilient_area`:
        masters with a combinational path longer than ``Pi`` must be
        error-detecting no matter where retiming puts the slaves, so
        the pre-retiming resilient-area floor charges ``c`` latch
        units for each.
        """
        latch = library.default_latch().area
        return (
            self.comb_area
            + self.latch_area_after
            + self.n_forced_edl * overhead * latch
        )

    def summary(self) -> str:
        """One-line human-readable conversion summary."""
        return (
            f"{self.name}: {self.n_flops} flops -> {self.n_masters} "
            f"masters + {self.n_slaves} slaves "
            f"({self.n_balanced} balanced forward), "
            f"Pi={self.period:.4f} window={self.window:.4f}, "
            f"{self.n_forced_edl} forced-EDL masters"
        )


def flop_resilient_area(
    report: FlopDesignReport, library: Library, overhead: float
) -> float:
    """Estimated area of a *flop-based* resilient design (Section VI-D).

    The paper estimates it by adding the EDL overhead to all
    near-critical endpoints of the original flop design: each NCE flop
    is replaced with an error-detecting flop of area
    ``(1 + c) * ff_area``.
    """
    ff_area = library.default_flip_flop().area
    return (
        report.comb_area
        + report.flop_area
        + report.n_near_critical * overhead * ff_area
    )
