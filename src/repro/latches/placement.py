"""Slave-latch placements as retiming labels.

A placement assigns each cloud node ``v`` a retiming value
``r(v) ∈ {-1, 0}`` (Section IV-B: slaves start at the stage inputs, so
no other values are possible).  ``r(v) = -1`` means the slave latches
have been moved forward through gate ``v``.  After retiming, edge
``(u, v)`` carries a slave latch iff ``w(u, v) + r(v) - r(u) = 1``,
where ``w`` is 1 on host→source edges and 0 elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.netlist.netlist import GateType, Netlist

#: The host node of the retiming graph (Section II-C).
HOST = "__host__"


@dataclass
class SlavePlacement:
    """Retiming labels ``r`` over the combinational cloud.

    Only nodes with ``r = -1`` are stored; everything else (including
    endpoints and the host, which are fixed at 0) is implicitly 0.
    """

    retimed: Set[str] = field(default_factory=set)

    @staticmethod
    def initial() -> "SlavePlacement":
        """Slaves at the master outputs (pre-retiming position)."""
        return SlavePlacement(retimed=set())

    def r(self, name: str) -> int:
        """The retiming label of ``name`` (-1 or 0)."""
        return -1 if name in self.retimed else 0

    def set_r(self, name: str, value: int) -> None:
        """Assign the retiming label of ``name``."""
        if value not in (-1, 0):
            raise ValueError(f"r({name}) must be -1 or 0, got {value}")
        if value == -1:
            self.retimed.add(name)
        else:
            self.retimed.discard(name)

    @staticmethod
    def from_r(r_values: Dict[str, int]) -> "SlavePlacement":
        """Build a placement from an explicit label mapping."""
        bad = {k: v for k, v in r_values.items() if v not in (-1, 0)}
        if bad:
            raise ValueError(f"retiming values out of range: {bad}")
        return SlavePlacement(
            retimed={k for k, v in r_values.items() if v == -1}
        )

    # -- derived geometry --------------------------------------------------

    def edge_weight_after(
        self, netlist: Netlist, driver: str, sink: str
    ) -> int:
        """``w_r(u, v) = w(u, v) + r(v) - r(u)`` for a cloud edge.

        A flop plays two roles: as a *driver* it is the retimable Q
        source (its ``r`` applies); as a *sink* it is the fixed D
        endpoint (``r = 0``), as are primary-output markers.
        """
        if driver == HOST:
            # Host edges feed the *source* role of the sink (a flop's
            # Q side), which is retimable.
            return 1 + self.r(sink)
        sink_gate = netlist[sink]
        if sink_gate.gtype in (GateType.DFF, GateType.OUTPUT):
            r_v = 0  # masters are fixed (D-endpoint role)
        else:
            r_v = self.r(sink)
        return r_v - self.r(driver)

    def latch_edges(self, netlist: Netlist) -> Iterator[Tuple[str, str]]:
        """All edges carrying a slave latch after retiming.

        Host edges feed every source (PI and flop Q); the remaining
        edges are the combinational-cloud edges of the netlist.
        """
        for gate in netlist.sources():
            if self.edge_weight_after(netlist, HOST, gate.name) == 1:
                yield (HOST, gate.name)
        for driver, sink in netlist.comb_edges():
            if netlist[driver].gtype is GateType.OUTPUT:
                continue
            if self.edge_weight_after(netlist, driver, sink) == 1:
                yield (driver, sink)

    def latch_sites(self, netlist: Netlist) -> List[Tuple[str, int]]:
        """Physical slave latches with fanout sharing applied.

        One latch per *driver* suffices for all of its latched fanout
        edges (Section II-C fanout sharing), except host edges: each
        host→source edge is a distinct master's slave and cannot be
        shared.  Returns ``(driver, fanout_count)`` pairs where driver
        is the source name for host-edge latches.
        """
        sites: List[Tuple[str, int]] = []
        seen_drivers: Dict[str, int] = {}
        for driver, sink in self.latch_edges(netlist):
            if driver == HOST:
                sites.append((sink, 1))
            else:
                seen_drivers[driver] = seen_drivers.get(driver, 0) + 1
        sites.extend(sorted(seen_drivers.items()))
        return sites

    def slave_count(self, netlist: Netlist) -> int:
        """Number of physical slave latches after fanout sharing."""
        return len(self.latch_sites(netlist))

    def check_nonnegative(self, netlist: Netlist) -> List[Tuple[str, str]]:
        """Edges whose retimed weight went negative (illegal moves).

        A gate can only be retimed through (``r = -1``) when every one
        of its fanin edges still carries a latch to move; otherwise
        ``w_r`` would be negative.  Returns the offending edges.
        """
        bad: List[Tuple[str, str]] = []
        for gate in netlist.sources():
            if self.edge_weight_after(netlist, HOST, gate.name) < 0:
                bad.append((HOST, gate.name))
        for driver, sink in netlist.comb_edges():
            if netlist[driver].gtype is GateType.OUTPUT:
                continue
            if self.edge_weight_after(netlist, driver, sink) < 0:
                bad.append((driver, sink))
        return bad

    def phase_domains(
        self, netlist: Netlist
    ) -> Tuple[Dict[str, int], Dict[str, int], List[str]]:
        """Slave-latch depth of every node, plus reconvergence conflicts.

        The *phase domain* of a node is the number of slave latches
        crossed on any master-to-here path: 0 means the node is still
        in the φ1 (master-launched) half of the stage, 1 means it is
        past its slave in the φ2 half.  In a legal two-phase design the
        count is well-defined — every reconverging path agrees — and
        lies in {0, 1}; master D pins must sit at exactly 1 (one slave
        per master-to-master stage, never zero, never two).

        Returns ``(domain, endpoint_domain, conflicts)``:

        * ``domain`` — counts over the cloud (sources in their Q role
          and combinational gates), the max over fanin paths;
        * ``endpoint_domain`` — counts at the endpoints in their fixed
          D-pin role (a flop appears in both dicts: its Q side starts
          a new stage at the host edge, its D side terminates the
          previous one);
        * ``conflicts`` — nodes whose reconverging fanin paths disagree
          on the count (a same-phase path joining a crossed one).

        Counting saturates at 2, so stacked latches report 2 rather
        than growing without bound.
        """
        domain: Dict[str, int] = {}
        endpoint_domain: Dict[str, int] = {}
        conflicts: List[str] = []

        def through(driver: str, sink: str) -> int:
            crossed = domain[driver]
            if self.edge_weight_after(netlist, driver, sink) == 1:
                crossed += 1
            return min(crossed, 2)

        for name in netlist.topo_order():
            gate = netlist[name]
            if gate.is_source:
                domain[name] = self.edge_weight_after(netlist, HOST, name)
                continue
            if gate.gtype is GateType.OUTPUT:
                continue  # endpoint role, second pass
            counts = {through(driver, name) for driver in gate.fanins}
            if len(counts) > 1:
                conflicts.append(name)
            domain[name] = max(counts)
        # Endpoints in a second pass: a flop is topologically a source
        # (Q role), so its D-side fanins may only settle later.
        for gate in netlist.endpoints():
            counts = {through(driver, gate.name) for driver in gate.fanins}
            if len(counts) > 1:
                conflicts.append(gate.name)
            endpoint_domain[gate.name] = max(counts)
        return domain, endpoint_domain, conflicts

    def copy(self) -> "SlavePlacement":
        """An independent copy of this placement."""
        return SlavePlacement(retimed=set(self.retimed))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SlavePlacement):
            return NotImplemented
        return self.retimed == other.retimed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlavePlacement(retimed={len(self.retimed)} nodes)"
