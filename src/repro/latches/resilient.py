"""The two-phase latch-based resilient circuit model.

:class:`TwoPhaseCircuit` binds a netlist, a clock scheme, a library and
a timing engine, and evaluates everything Section III defines:

* ``A(u, v, t)`` — eq. (5) arrival at master ``t`` through a slave on
  edge ``(u, v)``, distinguishing the latch's CK->Q and D->Q delays;
* constraints (6) and (7) legality and the regions they induce;
* per-master error-detecting status for a given placement;
* sequential cost (slaves + masters + EDL overhead) in latch units and
  in library area units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cells.cell import LatchCell
from repro.cells.library import Library
from repro.clocks import ClockScheme
from repro.latches.placement import HOST, SlavePlacement
from repro.netlist.netlist import GateType, Netlist
from repro.core.engine import STA_ENGINES, make_timing_engine
from repro.sta.delay_models import DelayCalculator
from repro.sta.engine import NEG_INF, TimingEngine

EPS = 1e-9


@dataclass
class LegalityReport:
    """Outcome of checking a placement against constraints (6)/(7)."""

    negative_edges: List[Tuple[str, str]] = field(default_factory=list)
    forward_violations: List[str] = field(default_factory=list)
    backward_violations: List[str] = field(default_factory=list)
    retimed_endpoints: List[str] = field(default_factory=list)
    window_overflows: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Structurally legal.

        Backward (7) overshoots and window overflows are *not* fatal:
        the node-granular ``Vm`` region (the paper's formulation)
        leaves up to one gate delay of overshoot on region-boundary
        edges, which the post-retiming size-only compile removes
        (Section VI-B: "repositioning the slave latches sometimes
        causes minor timing violations ... an incremental compile step
        in which we allow only sizing of gates resolves" them).
        """
        return not (
            self.negative_edges
            or self.forward_violations
            or self.retimed_endpoints
        )

    @property
    def needs_sizing(self) -> bool:
        """True when the size-only compile has work to do."""
        return bool(self.backward_violations or self.window_overflows)

    def summary(self) -> str:
        """Human-readable one-line legality summary."""
        if self.ok and not self.window_overflows:
            return "legal"
        parts = []
        if self.negative_edges:
            parts.append(f"{len(self.negative_edges)} negative edges")
        if self.forward_violations:
            parts.append(
                f"{len(self.forward_violations)} forward (6) violations"
            )
        if self.backward_violations:
            parts.append(
                f"{len(self.backward_violations)} backward (7) violations"
            )
        if self.retimed_endpoints:
            parts.append(f"{len(self.retimed_endpoints)} retimed masters")
        if self.window_overflows:
            parts.append(
                f"{len(self.window_overflows)} window overflows (need sizing)"
            )
        return ", ".join(parts)


@dataclass(frozen=True)
class SequentialCost:
    """Sequential-logic accounting for one placement."""

    n_slaves: int
    n_masters: int
    n_edl: int
    overhead: float
    latch_area: float

    @property
    def latch_units(self) -> float:
        """Cost in latch units: slaves + masters + c per EDL master."""
        return self.n_slaves + self.n_masters + self.overhead * self.n_edl

    @property
    def area(self) -> float:
        """Sequential area in library units."""
        return self.latch_units * self.latch_area


class TwoPhaseCircuit:
    """A flop netlist viewed as a two-phase latch-based resilient design."""

    def __init__(
        self,
        netlist: Netlist,
        scheme: ClockScheme,
        library: Optional[Library] = None,
        model: str = "path",
        calculator: Optional[DelayCalculator] = None,
        latch: Optional[LatchCell] = None,
        zero_latch_delays: bool = False,
        sta_mode: str = "incremental",
        sta_engine: str = "object",
    ) -> None:
        if sta_mode not in ("incremental", "full"):
            raise ValueError(
                f"unknown sta_mode {sta_mode!r} (use 'incremental' or "
                f"'full')"
            )
        if sta_engine not in STA_ENGINES:
            raise ValueError(
                f"unknown sta_engine {sta_engine!r}; "
                f"expected one of {STA_ENGINES}"
            )
        self.netlist = netlist
        self.scheme = scheme
        self.library = library
        self.sta_mode = sta_mode
        self.sta_engine = sta_engine
        self.engine = make_timing_engine(
            sta_engine,
            netlist,
            library,
            model=model,
            calculator=calculator,
            incremental=(sta_mode == "incremental"),
        )
        if latch is None and library is not None:
            latch = library.default_latch()
        self.latch = latch
        if zero_latch_delays or latch is None:
            self.latch_ck_q = 0.0
            self.latch_d_q = 0.0
            self._latch_area = 1.0
        else:
            self.latch_ck_q = latch.ck_to_q
            self.latch_d_q = latch.d_to_q
            self._latch_area = latch.area

        self._endpoint_names = [g.name for g in netlist.endpoints()]
        self._endpoint_set = set(self._endpoint_names)
        self._source_names = [g.name for g in netlist.sources()]

    # -- basic queries -------------------------------------------------------

    @property
    def endpoint_names(self) -> List[str]:
        """Names of the master endpoints (flop Ds and POs)."""
        return list(self._endpoint_names)

    @property
    def source_names(self) -> List[str]:
        """Names of the stage sources (PIs and flop Qs)."""
        return list(self._source_names)

    @property
    def latch_area(self) -> float:
        """Area of one slave/master latch."""
        return self._latch_area

    def df(self, name: str) -> float:
        """``D^f``: forward arrival at the output of ``name``.

        ``HOST`` has ``D^f = 0`` (masters launch at time 0).
        """
        if name == HOST:
            return 0.0
        return self.engine.forward_arrival(name)

    def db(self, name: str, endpoint: str) -> float:
        """``D^b(name, endpoint)``; -inf when no path."""
        return self.engine.backward_delay(name, endpoint)

    def db_any(self, name: str) -> float:
        """``max_t D^b(name, t)`` over all endpoints."""
        return self.engine.max_backward(name)

    def edge_delay(self, driver: str, sink: str) -> float:
        """Delay of gate ``sink`` driven from ``driver`` (0 from HOST)."""
        if driver == HOST:
            return 0.0
        return self.engine.edge_delay(driver, sink)

    def invalidate_timing(self) -> None:
        """Drop timing caches after netlist mutation."""
        self.engine.invalidate()

    # -- eq. (5) --------------------------------------------------------------

    def arrival_through(self, driver: str, sink: str, endpoint: str) -> float:
        """``A(u, v, t)`` of eq. (5): arrival at master ``t`` with a
        slave latch on edge ``(u, v)``.

        The slave opens at ``phi1 + gamma1``; early data waits for the
        opening edge (CK->Q), late data flows through transparently
        (D->Q).
        """
        launch = max(
            self.scheme.slave_open + self.latch_ck_q,
            self.df(driver) + self.latch_d_q,
        )
        if sink == endpoint:
            return launch
        sink_gate = self.netlist[sink]
        if sink_gate.gtype in (GateType.DFF, GateType.OUTPUT):
            # The edge terminates at a *different* master's D pin — a
            # different stage; it cannot reach this endpoint.
            return NEG_INF
        db = self.db(sink, endpoint)
        if db == NEG_INF:
            return NEG_INF  # edge not in this endpoint's cone
        return launch + self.edge_delay(driver, sink) + db

    def endpoint_arrival(
        self, placement: SlavePlacement, endpoint: str
    ) -> float:
        """Worst arrival at ``endpoint`` for a placement: the max of
        eq. (5) over the slave latches in its fan-in cone."""
        cone = self.netlist.fanin_cone(endpoint)
        worst = NEG_INF
        for driver, sink in placement.latch_edges(self.netlist):
            if sink not in cone:
                continue
            if sink != endpoint and driver != HOST:
                sink_gate = self.netlist[sink]
                if sink_gate.gtype in (GateType.DFF, GateType.OUTPUT):
                    # The edge ends at a *different* master's D pin:
                    # it belongs to another stage (the sink is in the
                    # cone only through its Q role) and cannot reach
                    # this endpoint combinationally.
                    continue
            value = self.arrival_through(driver, sink, endpoint)
            worst = max(worst, value)
        return worst

    def endpoint_arrivals(
        self, placement: SlavePlacement
    ) -> Dict[str, float]:
        """All endpoint arrivals in one forward pass.

        Equivalent to :meth:`endpoint_arrival` per endpoint (every path
        crosses exactly one slave, so the DP over "post-latch arrival"
        realizes the max of eq. (5) over the fan-in cone) but linear in
        the netlist size.
        """
        arrivals, _ = self.arrival_details(placement)
        return arrivals

    def arrival_details(
        self, placement: SlavePlacement
    ) -> Tuple[Dict[str, float], Dict[str, float]]:
        """Endpoint arrivals plus the per-node post-latch arrivals.

        The second dict drives critical-path tracing in the size-only
        incremental compile.
        """
        launch_floor = self.scheme.slave_open + self.latch_ck_q
        post: Dict[str, float] = {}

        def edge_arrival(driver: str, sink: str) -> float:
            if placement.edge_weight_after(self.netlist, driver, sink) == 1:
                return max(launch_floor, self.df(driver) + self.latch_d_q)
            return post[driver]

        arrivals: Dict[str, float] = {}
        for name in self.netlist.topo_order():
            gate = self.netlist[name]
            if gate.is_source:
                if placement.edge_weight_after(self.netlist, HOST, name) == 1:
                    post[name] = launch_floor
                else:
                    post[name] = 0.0
                continue
            if gate.gtype is GateType.OUTPUT:
                continue
            post[name] = max(
                edge_arrival(driver, name) + self.edge_delay(driver, name)
                for driver in gate.fanins
            )
        for endpoint in self._endpoint_names:
            gate = self.netlist[endpoint]
            arrivals[endpoint] = max(
                edge_arrival(driver, endpoint) for driver in gate.fanins
            )
        return arrivals, post

    # -- EDL status ---------------------------------------------------------

    def is_edl(self, placement: SlavePlacement, endpoint: str) -> bool:
        """True when the master at ``endpoint`` must be error-detecting."""
        return (
            self.endpoint_arrival(placement, endpoint)
            > self.scheme.window_open + EPS
        )

    def edl_endpoints(self, placement: SlavePlacement) -> Set[str]:
        """Masters that must be error-detecting under ``placement``."""
        limit = self.scheme.window_open + EPS
        arrivals = self.endpoint_arrivals(placement)
        return {name for name, value in arrivals.items() if value > limit}

    def always_edl_endpoints(self) -> Set[str]:
        """Masters forced error-detecting regardless of retiming.

        These are endpoints with a combinational path longer than
        ``Pi`` even with the slave pushed as far forward as legally
        possible — equivalently, ``g(t)`` is empty while the worst path
        exceeds ``Pi`` (Section IV-A).  Approximated here by the
        fixed-path bound ``D^f(v) + D^b(v, t) > Pi`` for some fanin
        ``v`` of ``t``, which retiming cannot change.
        """
        forced: Set[str] = set()
        for endpoint in self._endpoint_names:
            arrival = self.engine.endpoint_arrival(endpoint)
            if arrival > self.scheme.window_open + EPS:
                forced.add(endpoint)
        return forced

    # -- regions (Section IV-B) ----------------------------------------------

    def region_vm(self) -> Set[str]:
        """Gates slaves *must* be retimed through (constraint (7))."""
        limit = self.scheme.backward_limit
        result: Set[str] = set()
        for name in self._source_names:
            if self.db_any(name) > limit + EPS:
                result.add(name)
        for gate in self.netlist.comb_gates():
            if self.db_any(gate.name) > limit + EPS:
                result.add(gate.name)
        return result

    def region_vn(self) -> Set[str]:
        """Gates slaves must *not* be retimed through (constraint (6)).

        Master latches are fixed too, but flops play a double role
        (source Q and endpoint D), so endpoint pinning is handled by
        the retiming-graph construction rather than by this region.
        """
        limit = self.scheme.forward_limit
        result: Set[str] = set()
        for gate in self.netlist.comb_gates():
            if self.df(gate.name) > limit + EPS:
                result.add(gate.name)
        return result

    def region_vr(self) -> Set[str]:
        """The free region: everything outside Vm and Vn."""
        vm = self.region_vm()
        vn = self.region_vn()
        everything = set(self._source_names) | {
            g.name for g in self.netlist.comb_gates()
        }
        return everything - vm - vn

    def check_regions_feasible(self) -> List[str]:
        """Nodes in both Vm and Vn — the problem is then infeasible."""
        return sorted(self.region_vm() & self.region_vn())

    # -- legality -------------------------------------------------------------

    def check_legality(self, placement: SlavePlacement) -> LegalityReport:
        """Validate ``placement`` against constraints (6)/(7)."""
        report = LegalityReport()
        report.negative_edges = placement.check_nonnegative(self.netlist)
        forward_limit = self.scheme.forward_limit
        backward_limit = self.scheme.backward_limit

        for endpoint in self._endpoint_names:
            # A flop name in the placement refers to its retimable Q
            # side; only pure endpoints (PO markers) must stay at 0.
            gate = self.netlist[endpoint]
            if gate.gtype is GateType.OUTPUT and placement.r(endpoint) == -1:
                report.retimed_endpoints.append(endpoint)

        for driver, sink in placement.latch_edges(self.netlist):
            # Constraint (6): data stabilizes at the slave input before
            # the slave goes opaque.
            if self.df(driver) > forward_limit + EPS:
                report.forward_violations.append(driver)
            # Constraint (7): slave-launched data reaches every master
            # before its window closes.
            db = self._db_from_edge(driver, sink)
            if db > backward_limit + EPS:
                report.backward_violations.append(sink)

        for endpoint in self._endpoint_names:
            arrival = self.endpoint_arrival(placement, endpoint)
            overflow = arrival - self.scheme.window_close
            if overflow > EPS:
                report.window_overflows[endpoint] = overflow
        return report

    def _db_from_edge(self, driver: str, sink: str) -> float:
        """Backward delay seen by a slave latch on edge ``(u, v)``.

        The latch output drives gate ``v``; the relevant delay is
        ``d(v) + max_t D^b(v, t)`` (the slave sits before ``v``).
        """
        if sink in self._endpoint_set:
            return 0.0
        tail = self.db_any(sink)
        if tail == NEG_INF:
            return 0.0
        return self.edge_delay(driver, sink) + tail

    # -- cost accounting -------------------------------------------------------

    def sequential_cost(
        self, placement: SlavePlacement, overhead: float
    ) -> SequentialCost:
        """Slave/master/EDL accounting for ``placement``."""
        edl = self.edl_endpoints(placement)
        return SequentialCost(
            n_slaves=placement.slave_count(self.netlist),
            n_masters=len(self._endpoint_names),
            n_edl=len(edl),
            overhead=overhead,
            latch_area=self._latch_area,
        )

    def total_area(self, placement: SlavePlacement, overhead: float) -> float:
        """Combinational plus sequential area for ``placement``."""
        if self.library is None:
            raise ValueError("total_area requires a library")
        comb = self.netlist.comb_area(self.library)
        return comb + self.sequential_cost(placement, overhead).area
