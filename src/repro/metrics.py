"""Lightweight runtime metrics: stage timers, peak RSS, counters.

Every perf claim in this repo is grounded in a ``BENCH_*.json``
artifact, and this module is the substrate that produces them.  It
deliberately has **zero** dependencies on the rest of ``repro`` (the
error taxonomy and the flow pipeline both import it) and near-zero
cost when disabled: the ambient collector lives in a
:class:`contextvars.ContextVar`, and every instrumentation hook is a
no-op while no collector is installed.

Three layers:

* :class:`MetricsCollector` — the mutable sink: named counters plus
  per-stage wall-clock / call-count / peak-RSS stats.  Collectors
  merge, so per-worker collectors from the parallel experiment engine
  fold into one suite-level view.
* the ambient API — :func:`collect_into` installs a collector for the
  current context; :func:`count` and :func:`stage_timer` are the
  hooks sprinkled through ``run_flow``, the min-cost-flow fallback
  chain, and :class:`~repro.sta.engine.TimingEngine`.
* :func:`write_bench` — atomic JSON emission of a bench report
  (the ``BENCH_suite.json`` artifact the CLI's ``--bench-out`` flag
  produces).

Peak RSS uses ``resource.getrusage`` (kilobytes on Linux); on
platforms without the ``resource`` module the RSS fields are zero and
everything else still works.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource

    def peak_rss_kb() -> float:
        """High-water-mark RSS of this process, in kilobytes."""
        usage = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kilobytes, macOS bytes.
        return usage / 1024.0 if usage > 1 << 30 else float(usage)

except ImportError:  # pragma: no cover - non-POSIX fallback

    def peak_rss_kb() -> float:
        """High-water-mark RSS; 0 when the platform cannot report it."""
        return 0.0


#: Version tag written into every bench artifact.
BENCH_SCHEMA = "repro-bench/1"


@dataclass
class StageStats:
    """Aggregated wall-clock / RSS stats of one named stage."""

    calls: int = 0
    wall_s: float = 0.0
    #: largest process high-water-mark RSS observed at any stage exit.
    peak_rss_kb: float = 0.0

    def absorb(self, other: "StageStats") -> None:
        """Fold another stage's stats into this one."""
        self.calls += other.calls
        self.wall_s += other.wall_s
        self.peak_rss_kb = max(self.peak_rss_kb, other.peak_rss_kb)

    def to_dict(self) -> Dict[str, float]:
        """JSON-friendly form."""
        return {
            "calls": self.calls,
            "wall_s": round(self.wall_s, 6),
            "peak_rss_kb": round(self.peak_rss_kb, 1),
        }


@dataclass
class ValueStats:
    """Aggregated samples of one named measurement (a gauge).

    Counters answer "how many"; this answers "how large" — wall-clock
    seconds, batch sizes, throughputs.  Keeping them separate stops a
    measurement like ``sim.wall_s`` from masquerading as an event
    count in bench artifacts.
    """

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0
    last: float = 0.0

    def add(self, value: float) -> None:
        """Record one sample."""
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.total += value
        self.last = value

    def absorb(self, other: "ValueStats") -> None:
        """Fold another series' stats into this one."""
        if other.count == 0:
            return
        if self.count == 0:
            self.min = other.min
            self.max = other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total
        self.last = other.last

    def to_dict(self) -> Dict[str, float]:
        """JSON-friendly form."""
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "last": round(self.last, 6),
        }


class MetricsCollector:
    """A sink for counters and stage timings.

    Thread-compatible for the repo's usage (each worker process owns
    its collector; the parent merges results after the fact).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.stages: Dict[str, StageStats] = {}
        self.values: Dict[str, ValueStats] = {}

    # -- recording -----------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def record_value(self, name: str, value: float) -> None:
        """Record one sample of the named measurement."""
        self.values.setdefault(name, ValueStats()).add(value)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a stage; records even when the body raises."""
        started = time.perf_counter()
        try:
            yield
        finally:
            stats = self.stages.setdefault(name, StageStats())
            stats.calls += 1
            stats.wall_s += time.perf_counter() - started
            stats.peak_rss_kb = max(stats.peak_rss_kb, peak_rss_kb())

    # -- aggregation ---------------------------------------------------

    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector (e.g. from a worker) into this one."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, stats in other.stages.items():
            self.stages.setdefault(name, StageStats()).absorb(stats)
        for name, stats in other.values.items():
            self.values.setdefault(name, ValueStats()).absorb(stats)

    def merge_dict(self, payload: Mapping[str, Any]) -> None:
        """Merge the :meth:`to_dict` form (crossed a process boundary)."""
        for name, value in payload.get("counters", {}).items():
            self.count(name, float(value))
        for name, raw in payload.get("stages", {}).items():
            self.stages.setdefault(name, StageStats()).absorb(
                StageStats(
                    calls=int(raw.get("calls", 0)),
                    wall_s=float(raw.get("wall_s", 0.0)),
                    peak_rss_kb=float(raw.get("peak_rss_kb", 0.0)),
                )
            )
        for name, raw in payload.get("values", {}).items():
            self.values.setdefault(name, ValueStats()).absorb(
                ValueStats(
                    count=int(raw.get("count", 0)),
                    total=float(raw.get("total", 0.0)),
                    min=float(raw.get("min", 0.0)),
                    max=float(raw.get("max", 0.0)),
                    last=float(raw.get("last", 0.0)),
                )
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (inverse of :meth:`merge_dict`).

        The ``values`` key is additive over the original
        ``repro-bench/1`` layout — absent when nothing was recorded,
        so existing artifacts and their consumers are untouched.
        """
        payload: Dict[str, Any] = {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "stages": {
                name: self.stages[name].to_dict()
                for name in sorted(self.stages)
            },
        }
        if self.values:
            payload["values"] = {
                name: self.values[name].to_dict()
                for name in sorted(self.values)
            }
        return payload


# -- the ambient collector --------------------------------------------------

_CURRENT: ContextVar[Optional[MetricsCollector]] = ContextVar(
    "repro_metrics_collector", default=None
)


def current() -> Optional[MetricsCollector]:
    """The collector installed for this context, if any."""
    return _CURRENT.get()


@contextmanager
def collect_into(collector: MetricsCollector) -> Iterator[MetricsCollector]:
    """Install ``collector`` as the ambient sink for the block."""
    token = _CURRENT.set(collector)
    try:
        yield collector
    finally:
        _CURRENT.reset(token)


def count(name: str, value: float = 1.0) -> None:
    """Bump a counter on the ambient collector (no-op when absent)."""
    collector = _CURRENT.get()
    if collector is not None:
        collector.count(name, value)


def record_value(name: str, value: float) -> None:
    """Record a measurement sample on the ambient collector (no-op
    when absent)."""
    collector = _CURRENT.get()
    if collector is not None:
        collector.record_value(name, value)


@contextmanager
def stage_timer(name: str) -> Iterator[None]:
    """Time a stage on the ambient collector (no-op when absent)."""
    collector = _CURRENT.get()
    if collector is None:
        yield
        return
    with collector.stage(name):
        yield


# -- bench artifacts ---------------------------------------------------------


def bench_report(
    collector: MetricsCollector, **extra: Any
) -> Dict[str, Any]:
    """A schema-tagged bench payload around a collector snapshot."""
    payload: Dict[str, Any] = {"schema": BENCH_SCHEMA}
    payload.update(extra)
    payload.update(collector.to_dict())
    return payload


def write_bench(path: str, payload: Mapping[str, Any]) -> None:
    """Atomically write a bench artifact as indented JSON."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=1, sort_keys=False)
        stream.write("\n")
    os.replace(tmp, path)
