"""Two-phase symmetric clock scheme with a timing-resiliency window.

Timing reference (Fig. 1 of the paper): a master latch launches data at
time 0.  The associated slave latches are transparent during
``[phi1 + gamma1, phi1 + gamma1 + phi2]``.  The next master stage opens
its resiliency window at ``Pi = phi1 + gamma1 + phi2 + gamma2`` and the
window closes at ``Pi + phi1``.  Data arriving inside the window raises
a timing error that stalls the next stage; data must never arrive after
the window closes, so the maximum legal path delay between master
stages is ``P = Pi + phi1``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockScheme:
    """A two-phase clock ``<phi1, gamma1, phi2, gamma2>``.

    Attributes
    ----------
    phi1:
        Transparent window of phase 1 (master latches).  Also the width
        of the timing-resiliency window.
    gamma1:
        Gap between the falling edge of phase 1 and the rising edge of
        phase 2.
    phi2:
        Transparent window of phase 2 (slave latches).
    gamma2:
        Gap between the falling edge of phase 2 and the next rising
        edge of phase 1.
    """

    phi1: float
    gamma1: float
    phi2: float
    gamma2: float

    def __post_init__(self) -> None:
        for name in ("phi1", "gamma1", "phi2", "gamma2"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.phi1 <= 0 or self.phi2 <= 0:
            raise ValueError("transparent windows phi1/phi2 must be positive")

    @property
    def period(self) -> float:
        """Clock period ``Pi = phi1 + gamma1 + phi2 + gamma2``."""
        return self.phi1 + self.gamma1 + self.phi2 + self.gamma2

    @property
    def pi(self) -> float:
        """Alias for :attr:`period` matching the paper's ``Pi``."""
        return self.period

    @property
    def resiliency_window(self) -> float:
        """Width of the timing-resiliency window (equals ``phi1``)."""
        return self.phi1

    @property
    def max_path_delay(self) -> float:
        """Maximum legal master-to-master delay ``P = Pi + phi1``."""
        return self.period + self.phi1

    @property
    def slave_open(self) -> float:
        """Time the slave latches become transparent: ``phi1 + gamma1``."""
        return self.phi1 + self.gamma1

    @property
    def slave_close(self) -> float:
        """Time the slave latches turn opaque: ``phi1 + gamma1 + phi2``."""
        return self.phi1 + self.gamma1 + self.phi2

    @property
    def forward_limit(self) -> float:
        """Constraint (6) bound: a slave at gate ``v`` needs
        ``D^f(v) <= phi1 + gamma1 + phi2``."""
        return self.phi1 + self.gamma1 + self.phi2

    @property
    def backward_limit(self) -> float:
        """Constraint (7) bound: a slave at gate ``v`` needs
        ``D^b(v, t) <= phi2 + gamma2 + phi1``."""
        return self.phi2 + self.gamma2 + self.phi1

    @property
    def window_open(self) -> float:
        """Opening time of the destination master's resiliency window.

        Data arriving before this needs no error detection; data
        arriving in ``(window_open, window_close]`` triggers an error.
        """
        return self.period

    @property
    def window_close(self) -> float:
        """Closing time of the resiliency window (= max legal arrival)."""
        return self.period + self.phi1

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        """True for the symmetric scheme ``phi1 == phi2, gamma1 == gamma2``."""
        return (
            abs(self.phi1 - self.phi2) <= tol
            and abs(self.gamma1 - self.gamma2) <= tol
        )

    def scaled(self, factor: float) -> "ClockScheme":
        """Return a copy with every interval multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return ClockScheme(
            self.phi1 * factor,
            self.gamma1 * factor,
            self.phi2 * factor,
            self.gamma2 * factor,
        )

    def waveforms(self, cycles: int = 1, resolution: int = 40) -> dict:
        """Sampled phase-1/phase-2 waveforms, for plotting Fig. 1.

        Returns a dict with keys ``time``, ``clk1``, ``clk2``,
        ``window`` — each a list of ``cycles * resolution`` samples.
        ``clk1``/``clk2`` are 0/1 levels; ``window`` marks the
        resiliency window of the *next* master stage.
        """
        if cycles < 1:
            raise ValueError("cycles must be >= 1")
        period = self.period
        time, clk1, clk2, window = [], [], [], []
        for i in range(cycles * resolution):
            t = i * (cycles * period) / (cycles * resolution)
            tm = t % period
            time.append(t)
            clk1.append(1 if tm < self.phi1 else 0)
            clk2.append(
                1 if self.slave_open <= tm < self.slave_close else 0
            )
            # The resiliency window of the next stage spans
            # [period, period + phi1], i.e. wraps to [0, phi1].
            window.append(1 if tm < self.phi1 else 0)
        return {"time": time, "clk1": clk1, "clk2": clk2, "window": window}


def scheme_from_period(max_path_delay: float) -> ClockScheme:
    """Build the paper's experimental clock scheme from ``P``.

    Section VI-A: the resiliency window ``phi1`` is 30% of the maximum
    delay ``P`` between detecting stages, ``gamma1 = 0``,
    ``gamma2 = 0.05 P`` and ``phi2 = 0.35 P``, hence ``Pi = 0.7 P`` and
    ``Pi + phi1 = P``.
    """
    if max_path_delay <= 0:
        raise ValueError("max_path_delay must be positive")
    p = float(max_path_delay)
    return ClockScheme(phi1=0.3 * p, gamma1=0.0, phi2=0.35 * p, gamma2=0.05 * p)
