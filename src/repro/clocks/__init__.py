"""Two-phase clock models for latch-based resilient circuits.

The clock model of a latch-based design with *k* phases is written
``<phi_1, gamma_1, ..., phi_k, gamma_k>`` where ``phi_i`` is the
transparent window of phase *i* and ``gamma_i`` the gap to the next
phase (Papaefthymiou/Randall, DAC'93).  This package provides the
two-phase instance used throughout the paper, including the resiliency
window bookkeeping of Fig. 1.
"""

from repro.clocks.scheme import ClockScheme, scheme_from_period

__all__ = ["ClockScheme", "scheme_from_period"]
