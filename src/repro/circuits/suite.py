"""The benchmark suite: ISCAS89 profiles + Plasma (Table I).

Flop counts and the near-critical-endpoint fractions follow the
paper's Table I; I/O counts follow the original ISCAS89 circuits; the
combinational clouds of the four largest circuits are scaled down
(roughly 3x) to keep the full-suite benchmark harness laptop-friendly
— the scaling is uniform, so every cross-approach comparison (the
content of Tables II-IX) is unaffected.  Logic depth grows with the
paper's clock period so the per-circuit timing profiles track Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cells.library import Library
from repro.circuits.generator import CloudSpec, generate_circuit
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class BenchmarkProfile:
    """Table I row parameters for one benchmark circuit."""

    name: str
    seed: int
    n_inputs: int
    n_outputs: int
    n_flops: int
    n_gates: int
    depth: int
    critical_fraction: float
    #: Paper values, recorded for EXPERIMENTS.md comparisons.
    paper_period_ns: float = 0.0
    paper_flops: int = 0
    paper_nce: int = 0
    paper_area: float = 0.0

    def spec(self) -> CloudSpec:
        """The generator parameters for this profile."""
        return CloudSpec(
            name=self.name,
            seed=self.seed,
            n_inputs=self.n_inputs,
            n_outputs=self.n_outputs,
            n_flops=self.n_flops,
            n_gates=self.n_gates,
            depth=self.depth,
            critical_fraction=self.critical_fraction,
        )


def _profile(
    name: str,
    seed: int,
    pi: int,
    po: int,
    flops: int,
    gates: int,
    depth: int,
    paper_period: float,
    paper_nce: int,
    paper_area: float,
) -> BenchmarkProfile:
    endpoints = flops + po
    fraction = min(0.9, paper_nce / max(1, endpoints))
    return BenchmarkProfile(
        name=name,
        seed=seed,
        n_inputs=pi,
        n_outputs=po,
        n_flops=flops,
        n_gates=gates,
        depth=depth,
        critical_fraction=fraction,
        paper_period_ns=paper_period,
        paper_flops=flops,
        paper_nce=paper_nce,
        paper_area=paper_area,
    )


#: Table I of the paper, as generator profiles.
BENCHMARK_PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        _profile("s1196", 1196, 14, 14, 32, 480, 10, 0.4, 6, 376.18),
        _profile("s1238", 1238, 14, 14, 32, 500, 11, 0.5, 4, 334.89),
        _profile("s1423", 1423, 17, 5, 91, 620, 13, 0.6, 54, 559.9),
        _profile("s1488", 1488, 8, 19, 14, 560, 10, 0.4, 6, 264.38),
        _profile("s5378", 5378, 35, 49, 198, 1300, 11, 0.5, 55, 1149.42),
        _profile("s9234", 9234, 36, 39, 160, 1500, 11, 0.5, 61, 893.36),
        _profile("s13207", 13207, 62, 152, 502, 2400, 11, 0.5, 188, 2670.28),
        _profile("s15850", 15850, 77, 150, 524, 2700, 15, 0.8, 174, 2980.52),
        _profile("s35932", 35932, 35, 320, 1763, 5200, 17, 1.0, 288, 9681.35),
        _profile("s38417", 38417, 28, 106, 1494, 5000, 17, 1.0, 213, 8635.73),
        _profile("s38584", 38584, 38, 304, 1271, 4800, 13, 0.7, 632, 8100.11),
        _profile("plasma", 9001, 40, 38, 1652, 5600, 24, 2.1, 217, 10371.2),
    ]
}

#: Suite order used throughout the tables.
SUITE_ORDER: List[str] = [
    "s1196",
    "s1238",
    "s1423",
    "s1488",
    "s5378",
    "s9234",
    "s13207",
    "s15850",
    "s35932",
    "s38417",
    "s38584",
    "plasma",
]

#: The small circuits used by quick tests and CI-style runs.
SMALL_SUITE: List[str] = ["s1196", "s1238", "s1423", "s1488"]


#: Largest accepted ``<base>x<factor>`` scale factor — beyond this the
#: generator's retry budget and the DP arrays stop being
#: laptop-friendly, and nothing in the bench matrix asks for more.
MAX_SCALE_FACTOR = 100


def suite_names(small_only: bool = False) -> List[str]:
    """Benchmark names in the paper's table order."""
    return list(SMALL_SUITE if small_only else SUITE_ORDER)


def scaled_profile(base: BenchmarkProfile, factor: int) -> BenchmarkProfile:
    """A Table-I profile grown ``factor``-fold for throughput benches.

    I/O, flop and gate counts scale linearly while the logic depth is
    kept — the point of the scaled circuits is wider DP levels (where
    the vectorized arena engine earns its keep), not longer critical
    paths that would change the timing profile class.  The seed is
    derived deterministically so ``s38417x10`` is the same netlist in
    every session.
    """
    if factor < 2 or factor > MAX_SCALE_FACTOR:
        raise ValueError(
            f"scale factor {factor} out of range [2, {MAX_SCALE_FACTOR}]"
        )
    return BenchmarkProfile(
        name=f"{base.name}x{factor}",
        seed=base.seed * 1000 + factor,
        n_inputs=base.n_inputs * factor,
        n_outputs=base.n_outputs * factor,
        n_flops=base.n_flops * factor,
        n_gates=base.n_gates * factor,
        depth=base.depth,
        critical_fraction=base.critical_fraction,
        paper_period_ns=base.paper_period_ns,
        paper_flops=base.paper_flops,
        paper_nce=base.paper_nce,
        paper_area=base.paper_area,
    )


def _parse_scaled(name: str) -> BenchmarkProfile:
    """Resolve a ``<base>x<factor>`` name, raising the suite KeyError."""
    base_name, sep, suffix = name.rpartition("x")
    if sep and base_name in BENCHMARK_PROFILES and suffix.isdigit():
        return scaled_profile(BENCHMARK_PROFILES[base_name], int(suffix))
    raise KeyError(
        f"unknown benchmark {name!r}; choose from {SUITE_ORDER} "
        f"or a scaled variant like 's38417x10'"
    )


def build_benchmark(name: str, library: Library) -> Netlist:
    """Generate one suite circuit by name.

    Plasma is built structurally (a real 3-stage MIPS-like datapath,
    see :mod:`repro.circuits.plasma`); the ISCAS89 circuits use the
    statistics-matched random generator.  A ``<base>x<factor>`` name
    (e.g. ``"s38417x10"``, factor 2-100) generates a circuit with the
    base profile's statistics scaled ``factor``-fold — the stress
    inputs for the arena engine benchmarks.
    """
    if name == "plasma":
        from repro.circuits.plasma import build_plasma

        return build_plasma(library)
    try:
        profile = BENCHMARK_PROFILES[name]
    except KeyError:
        profile = _parse_scaled(name)
    return generate_circuit(profile.spec(), library)
