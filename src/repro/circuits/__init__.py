"""Benchmark circuits: the paper's worked example, structured datapath
generators, the ISCAS89-profile synthetic suite, and a Plasma-like CPU.
"""

from repro.circuits.fig4 import (
    FIG4_DELAYS,
    fig4_circuit,
    fig4_netlist,
    fig4_scheme,
)
from repro.circuits.generator import CloudSpec, generate_circuit
from repro.circuits.suite import (
    BENCHMARK_PROFILES,
    BenchmarkProfile,
    build_benchmark,
    suite_names,
)

__all__ = [
    "FIG4_DELAYS",
    "fig4_circuit",
    "fig4_netlist",
    "fig4_scheme",
    "CloudSpec",
    "generate_circuit",
    "BENCHMARK_PROFILES",
    "BenchmarkProfile",
    "build_benchmark",
    "suite_names",
]
