"""The paper's Fig. 4 illustrative circuit, with exact delays.

The published figure gives per-gate delays and the derived ``D^f`` /
``D^b`` table; this module reconstructs the circuit so that *every*
number stated in Sections III-IV reproduces exactly:

* ``phi1 = gamma1 = phi2 = gamma2 = 2.5`` and latch delays ``D_l = 0``;
* ``D^f(G7) = 8``, ``D^f(G8) = 9``, endpoint arrival at ``O9`` is 9;
* ``D^b(I1, O9) = 9`` which exceeds ``phi2+gamma2+phi1 = 7.5``;
* ``A(G6,G7,O9) = 9``, ``A(G3,G6,O9) = 12``, ``A(G5,G7,O9) = 7``,
  ``A(I2,G5,O9) = 12`` — hence ``g(O9) = {G5, G6}``;
* regions ``Vm = {I1}``, ``Vn = {G7, G8}`` (plus the fixed endpoint
  O9), ``Vr = {I2, G3, G4, G5, G6}``;
* Cut1 (slaves after I1 and I2/G3) costs 5 units at ``c = 2`` while
  Cut2 (slaves after G4, G5, G6) costs 4.

``G4`` drives a second primary output ``O10`` (the paper's figure shows
G4 inside the retiming region with its own fanout; an O9-side fanout
would contradict the published ``g(O9)``), which is never
error-detecting.
"""

from __future__ import annotations

from typing import Dict

from repro.clocks import ClockScheme
from repro.latches.resilient import TwoPhaseCircuit
from repro.netlist.netlist import Gate, GateType, Netlist
from repro.sta.delay_models import FixedDelayCalculator

#: Gate delays ``d(v)`` reconstructed from the published table.
FIG4_DELAYS: Dict[str, float] = {
    "I1": 0.0,
    "I2": 0.0,
    "G3": 2.0,
    "G4": 1.0,
    "G5": 5.0,
    "G6": 5.0,
    "G7": 1.0,
    "G8": 1.0,
}


def fig4_netlist() -> Netlist:
    """Connectivity of Fig. 4 (I1/I2 are the stage inputs)."""
    netlist = Netlist("fig4")
    netlist.add(Gate("I1", GateType.INPUT))
    netlist.add(Gate("I2", GateType.INPUT))
    netlist.add(Gate("G3", GateType.COMB, ("I1",), cell="BUF_X1"))
    netlist.add(Gate("G4", GateType.COMB, ("G3", "I2"), cell="AND2_X1"))
    netlist.add(Gate("G5", GateType.COMB, ("I2",), cell="BUF_X1"))
    netlist.add(Gate("G6", GateType.COMB, ("G3",), cell="BUF_X1"))
    netlist.add(Gate("G7", GateType.COMB, ("G5", "G6"), cell="AND2_X1"))
    netlist.add(Gate("G8", GateType.COMB, ("G7",), cell="BUF_X1"))
    netlist.add(Gate("O9", GateType.OUTPUT, ("G8",)))
    netlist.add(Gate("O10", GateType.OUTPUT, ("G4",)))
    return netlist


def fig4_scheme() -> ClockScheme:
    """``phi1 = gamma1 = phi2 = gamma2 = 2.5`` so ``Pi = 10``."""
    return ClockScheme(phi1=2.5, gamma1=2.5, phi2=2.5, gamma2=2.5)


def fig4_circuit() -> TwoPhaseCircuit:
    """The worked example as a :class:`TwoPhaseCircuit` (``D_l = 0``)."""
    netlist = fig4_netlist()
    calculator = FixedDelayCalculator(netlist, FIG4_DELAYS)
    return TwoPhaseCircuit(
        netlist,
        fig4_scheme(),
        library=None,
        calculator=calculator,
        zero_latch_delays=True,
    )
