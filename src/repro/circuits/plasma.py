"""A Plasma-like 3-stage MIPS CPU built from structured datapath blocks.

The paper's largest benchmark is Plasma, an OpenCores 3-stage MIPS.
This builder composes the real structures such a core has — a PC
incrementer chain, a flop-based register file with one-hot write decode
and mux-tree read ports, an ALU with a 16-bit carry chain, a shifter,
and pipeline registers — yielding the paper's 1652 flops with CPU-like
(non-random) path distributions: the register-file-read -> ALU ->
write-back path dominates, exactly like the original.

Scaled for pure-Python tractability: 16-bit datapath, 16-entry register
file (the original is 32/32); the flop count is matched by the pipeline
and control registers.
"""

from __future__ import annotations

from typing import List

from repro.cells.library import Library
from repro.circuits.datapath import (
    alu,
    decoder,
    incrementer,
    mux2_word,
    mux_tree,
    shifter,
)
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist

WIDTH = 16
REGS = 16
REG_SEL = 4


def _flop_word(
    builder: NetlistBuilder, name: str, data_bits: List[str]
) -> List[str]:
    return [
        builder.flop(f"{name}{index}", bit)
        for index, bit in enumerate(data_bits)
    ]


def build_plasma(library: Library, name: str = "plasma") -> Netlist:
    """Build the Plasma-like core; 1652 flops like the paper's table."""
    b = NetlistBuilder(name, library)

    # External interface: instruction word and memory read data.
    instr = [b.input(f"i_instr{k}") for k in range(WIDTH)]
    mem_in = [b.input(f"i_mem{k}") for k in range(WIDTH)]
    i_stall = b.input("i_stall")

    # ---------------- fetch ----------------
    # PC register + incrementer + branch mux.
    pc_feedback = [f"pc_next{k}" for k in range(WIDTH)]
    pc = [b.flop(f"pc{k}", pc_feedback[k]) for k in range(WIDTH)]
    pc_plus = incrementer(b, "pcinc", pc)

    # Instruction register (IF/ID).
    ir = _flop_word(b, "ir", instr)

    # ---------------- decode ----------------
    # Register file: REGS x WIDTH flops, one-hot write decode,
    # two mux-tree read ports.
    waddr = ir[:REG_SEL]
    raddr_a = ir[REG_SEL : 2 * REG_SEL]
    raddr_b = ir[2 * REG_SEL : 3 * REG_SEL]
    write_sel = decoder(b, "wdec", waddr)

    wdata = [f"wb{k}" for k in range(WIDTH)]  # write-back, built later
    regs: List[List[str]] = []
    for r in range(REGS):
        row = []
        for k in range(WIDTH):
            q = f"rf_{r}_{k}"
            d = b.gate(
                f"rf_{r}_{k}_d", "MUX2", [q, wdata[k], write_sel[r]]
            )
            b.flop(q, d)
            row.append(q)
        regs.append(row)

    read_a = mux_tree(b, "rda", regs, raddr_a)
    read_b = mux_tree(b, "rdb", regs, raddr_b)

    # Immediate: low half of IR, upper bits from the sign bit.
    sign = ir[WIDTH // 2 - 1]
    imm = ir[: WIDTH // 2] + [sign] * (WIDTH // 2)
    use_imm = ir[WIDTH - 1]
    operand_b = mux2_word(b, "opb", read_b, imm, use_imm)

    # ID/EX pipeline registers.
    ex_a = _flop_word(b, "exa", read_a)
    ex_b = _flop_word(b, "exb", operand_b)
    ex_op = _flop_word(b, "exop", [ir[12], ir[13], ir[14], ir[15]])

    # ---------------- execute ----------------
    alu_out = alu(b, "alu", ex_a, ex_b, ex_op[:3])
    shift_out = shifter(b, "sh", ex_a, ex_b[:3])
    ex_result = mux2_word(b, "exres", alu_out, shift_out, ex_op[3])
    mem_or_alu = mux2_word(b, "wbsel", ex_result, mem_in, ex_op[2])

    # Write-back register (feeds the register file D muxes above).
    for k in range(WIDTH):
        b.flop(wdata[k], mem_or_alu[k])

    # Branch target and PC selection (stall holds the PC).
    branch_taken = b.gate("br_take", "AND", [ex_op[0], alu_out[0]])
    target = mux2_word(b, "btgt", pc_plus, ex_result, branch_taken)
    held = mux2_word(b, "pchold", target, pc, i_stall)
    for k in range(WIDTH):
        b.gate(pc_feedback[k], "BUF", [held[k]])

    # Control / CSR-ish registers to reach Plasma's flop count: the
    # original's coprocessor-0, interrupt and bus-interface state.
    # Datapath flops: pc + ir + exa + exb (4 words), the register
    # file, the write-back word, and the 4 exop bits.
    ctrl_bits = 1652 - (4 * WIDTH + REGS * WIDTH + WIDTH + 4)
    # Roughly Plasma's share of near-critical endpoints (Table I: 217
    # of 1652): a slice of the control state toggles off the *late*
    # bits of the write-back path (the top of the ALU carry chain);
    # the rest follows shallow decode signals.
    deep_bits = 200
    late = mem_or_alu[WIDTH // 2 :]
    for index in range(ctrl_bits):
        if index < deep_bits:
            source = late[index % len(late)]
        else:
            source = ir[index % WIDTH]
        toggle = b.gate(
            f"csr{index}_d", "XOR", [source, f"csr{index}"]
        )
        b.flop(f"csr{index}", toggle)

    # Primary outputs: memory address/data and a trace port.
    for k in range(WIDTH):
        b.output(f"o_addr{k}", ex_result[k])
        b.output(f"o_data{k}", ex_b[k])
    b.output("o_branch", branch_taken)

    return b.build()
