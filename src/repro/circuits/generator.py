"""Seeded synthetic sequential-circuit generator.

The ISCAS89 netlists themselves are not redistributable inside this
offline environment, so the benchmark suite is generated: deterministic
random FSM clouds whose *statistics* — flop count, I/O counts, gate
count, logic depth, and the fraction of near-critical endpoints — are
matched per circuit to the paper's Table I.  Those statistics are what
the retiming evaluation actually exercises (they fix the size of the
flow problem, the Vm/Vn/Vr split, and how many masters are targets).

Construction: gates are placed on ``depth`` levels; each gate takes its
first fanin from the previous level (pinning its depth) and the rest
from lower levels, biased toward gates that are still unused.
Endpoints are split into a *critical* group driven from the deepest
levels (arrivals land inside the resiliency window, i.e. beyond
``0.7 P``) and a shallow group (arrivals below it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cells.library import Library
from repro.errors import NetlistError
from repro.netlist.netlist import Gate, GateType, Netlist

#: (function, n_inputs, sampling weight) for the random cloud.
_GATE_MENU: Sequence[Tuple[str, int, float]] = (
    ("NAND", 2, 0.22),
    ("NOR", 2, 0.14),
    ("INV", 1, 0.12),
    ("AND", 2, 0.10),
    ("OR", 2, 0.08),
    ("NAND", 3, 0.08),
    ("NOR", 3, 0.05),
    ("XOR", 2, 0.07),
    ("XNOR", 2, 0.04),
    ("AOI21", 3, 0.05),
    ("OAI21", 3, 0.03),
    ("MUX2", 3, 0.02),
)

_CELL_FOR = {
    ("NAND", 2): "NAND2",
    ("NAND", 3): "NAND3",
    ("NOR", 2): "NOR2",
    ("NOR", 3): "NOR3",
    ("INV", 1): "INV",
    ("AND", 2): "AND2",
    ("OR", 2): "OR2",
    ("XOR", 2): "XOR2",
    ("XNOR", 2): "XNOR2",
    ("AOI21", 3): "AOI21",
    ("OAI21", 3): "OAI21",
    ("MUX2", 3): "MUX2",
}


@dataclass(frozen=True)
class CloudSpec:
    """Parameters of one synthetic circuit."""

    name: str
    seed: int
    n_inputs: int
    n_outputs: int
    n_flops: int
    n_gates: int
    depth: int
    #: Fraction of endpoints (flop Ds + POs) that should be
    #: near-critical (arrival inside the resiliency window).
    critical_fraction: float = 0.25

    def __post_init__(self) -> None:
        if min(self.n_inputs, self.n_flops) < 1:
            raise ValueError("need at least one input and one flop")
        if self.depth < 2:
            raise ValueError("depth must be >= 2")
        if not 0.0 <= self.critical_fraction <= 1.0:
            raise ValueError("critical_fraction must be in [0, 1]")
        if self.n_gates < self.depth:
            raise ValueError("n_gates must cover at least one gate per level")


def _level_sizes(n_gates: int, depth: int, rng: random.Random) -> List[int]:
    """Distribute the gate budget over levels: wide middle, narrow top."""
    weights = []
    for level in range(depth):
        x = (level + 1) / depth
        weights.append(0.35 + 1.3 * x * (1.35 - x))
    total = sum(weights)
    sizes = [max(1, int(round(n_gates * w / total))) for w in weights]
    # Adjust rounding drift on a middle level.
    drift = n_gates - sum(sizes)
    sizes[depth // 2] = max(1, sizes[depth // 2] + drift)
    return sizes


def generate_circuit(spec: CloudSpec, library: Library) -> Netlist:
    """Build the synthetic netlist for ``spec`` (deterministic).

    Gates whose cones never reach an endpoint are pruned (a synthesis
    tool would sweep them too); the gate budget is re-inflated until
    the surviving count lands near ``spec.n_gates``.
    """
    budget = spec.n_gates
    netlist: Optional[Netlist] = None
    for attempt in range(4):
        netlist = _generate_once(spec, budget, seed_offset=attempt)
        _prune_dead(netlist)
        alive = len(netlist.comb_gates())
        if alive >= 0.9 * spec.n_gates:
            break
        budget = int(budget * spec.n_gates / max(1, alive)) + 1
    if netlist is None:
        raise NetlistError(
            [f"generator produced no netlist for spec {spec.name!r}"],
            circuit=spec.name,
        )
    _upsize_heavy_drivers(netlist, library)
    netlist.topo_order()  # validate
    return netlist


def _prune_dead(netlist: Netlist) -> None:
    """Remove combinational gates with no path to any endpoint.

    The dead set is fanin-closed (anything a dead gate reads that is
    only read by dead gates is dead too), so one bulk removal suffices.
    """
    alive = set()
    stack = [g.name for g in netlist.endpoints()]
    while stack:
        name = stack.pop()
        if name in alive:
            continue
        alive.add(name)
        stack.extend(netlist[name].fanins)
    doomed = [
        gate.name
        for gate in netlist.comb_gates()
        if gate.name not in alive
    ]
    if doomed:
        netlist.remove_many(doomed)


def _generate_once(
    spec: CloudSpec, n_gates: int, seed_offset: int = 0
) -> Netlist:
    rng = random.Random(spec.seed * 7919 + seed_offset)
    netlist = Netlist(spec.name)

    sources: List[str] = []
    for i in range(spec.n_inputs):
        name = f"pi{i}"
        netlist.add(Gate(name, GateType.INPUT))
        sources.append(name)
    flop_names = [f"ff{i}" for i in range(spec.n_flops)]
    sources.extend(flop_names)

    menu = list(_GATE_MENU)
    menu_weights = [w for _, _, w in menu]

    by_level: List[List[str]] = [list(sources)]
    fanout_count: Dict[str, int] = {name: 0 for name in sources}
    pending_flops: Dict[str, str] = {}

    sizes = _level_sizes(n_gates, spec.depth, rng)
    gate_id = 0
    for level, size in enumerate(sizes, start=1):
        current: List[str] = []
        previous = by_level[level - 1]
        lower_pool: List[str] = [n for lev in by_level for n in lev]
        for _ in range(size):
            function, n_in, _ = rng.choices(menu, weights=menu_weights)[0]
            # First fanin pins the gate's depth to this level.
            first = self_biased_choice(rng, previous, fanout_count)
            fanins = [first]
            while len(fanins) < n_in:
                candidate = self_biased_choice(rng, lower_pool, fanout_count)
                if candidate not in fanins or len(lower_pool) <= n_in:
                    fanins.append(candidate)
            name = f"g{gate_id}"
            gate_id += 1
            # Synthesized netlists carry a drive distribution (the
            # tool upsizes along once-critical paths); this headroom is
            # what area recovery and incremental sizing later trade.
            drive = rng.choices((1, 2, 4), weights=(0.55, 0.35, 0.10))[0]
            cell = f"{_CELL_FOR[(function, n_in)]}_X{drive}"
            netlist.add(
                Gate(name, GateType.COMB, tuple(fanins), cell=cell)
            )
            for fanin in fanins:
                fanout_count[fanin] = fanout_count.get(fanin, 0) + 1
            fanout_count[name] = 0
            current.append(name)
        by_level.append(current)

    # Endpoints: flop Ds and POs, split into critical / shallow groups.
    endpoints: List[Tuple[str, bool]] = [(n, True) for n in flop_names]
    endpoints.extend((f"po{i}", False) for i in range(spec.n_outputs))
    rng.shuffle(endpoints)
    n_critical = int(round(spec.critical_fraction * len(endpoints)))

    deep_levels = by_level[max(1, int(spec.depth * 0.85)):]
    deep_pool = [n for lev in deep_levels for n in lev]
    shallow_levels = by_level[1 : max(2, int(spec.depth * 0.60))]
    shallow_pool = [n for lev in shallow_levels for n in lev]
    if not deep_pool:
        deep_pool = by_level[-1]
    if not shallow_pool:
        shallow_pool = by_level[1]

    for index, (name, is_flop) in enumerate(endpoints):
        pool = deep_pool if index < n_critical else shallow_pool
        driver = self_biased_choice(rng, pool, fanout_count)
        fanout_count[driver] += 1
        if is_flop:
            netlist.add(Gate(name, GateType.DFF, (driver,), cell="DFF_X1"))
        else:
            netlist.add(Gate(name, GateType.OUTPUT, (driver,)))
    return netlist


def self_biased_choice(
    rng: random.Random, pool: Sequence[str], fanout_count: Dict[str, int]
) -> str:
    """Pick from ``pool`` preferring nodes that are still unused.

    Keeps the number of dangling gates low without a fix-up pass that
    would distort the level structure.
    """
    if not pool:
        raise ValueError("empty candidate pool")
    for _ in range(3):
        candidate = rng.choice(pool)
        if fanout_count.get(candidate, 0) == 0:
            return candidate
    return rng.choice(pool)


def _upsize_heavy_drivers(netlist: Netlist, library: Library) -> None:
    """Give high-fanout gates stronger drive, as a mapper would."""
    for gate in netlist.comb_gates():
        fanout = len(netlist.fanouts(gate.name))
        if fanout >= 8:
            drive = 4
        elif fanout >= 4:
            drive = 2
        else:
            continue
        base = gate.cell.rsplit("_X", 1)[0]
        candidate = f"{base}_X{drive}"
        if candidate in library:
            netlist.replace_cell(gate.name, candidate)
