"""Structured datapath generators: adders, muxes, decoders, ALUs.

Random clouds get the statistics right; datapath blocks get the path
*structure* right — long carry chains, wide reconvergent mux trees,
one-hot decoders — which is what a CPU benchmark like Plasma stresses.
All blocks are built through :class:`NetlistBuilder`, so they map onto
library cells and compose into ordinary netlists.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.netlist.builder import NetlistBuilder


def full_adder(
    builder: NetlistBuilder, name: str, a: str, b: str, cin: str
) -> Tuple[str, str]:
    """One full adder; returns (sum, carry_out)."""
    axb = builder.gate(f"{name}_axb", "XOR", [a, b])
    total = builder.gate(f"{name}_s", "XOR", [axb, cin])
    ab = builder.gate(f"{name}_ab", "AND", [a, b])
    cx = builder.gate(f"{name}_cx", "AND", [axb, cin])
    cout = builder.gate(f"{name}_co", "OR", [ab, cx])
    return total, cout


def ripple_adder(
    builder: NetlistBuilder,
    name: str,
    a_bits: Sequence[str],
    b_bits: Sequence[str],
    cin: Optional[str] = None,
) -> Tuple[List[str], str]:
    """Ripple-carry adder; returns (sum_bits, carry_out).

    The carry chain is the classic long path a CPU's critical timing
    follows — exactly the structure the retiming regions must split.
    """
    if len(a_bits) != len(b_bits):
        raise ValueError("adder operands must have equal width")
    if not a_bits:
        raise ValueError("adder needs at least one bit")
    if cin is None:
        # Constant-0 carry-in: a & !a.
        na = builder.gate(f"{name}_nc", "INV", [a_bits[0]])
        cin = builder.gate(f"{name}_c0", "AND", [a_bits[0], na])
    carry = cin
    sums: List[str] = []
    for index, (a, b) in enumerate(zip(a_bits, b_bits)):
        s, carry = full_adder(builder, f"{name}_fa{index}", a, b, carry)
        sums.append(s)
    return sums, carry


def incrementer(
    builder: NetlistBuilder, name: str, bits: Sequence[str]
) -> List[str]:
    """bits + 1 (a PC+4-style chain without the second operand)."""
    out: List[str] = []
    carry: Optional[str] = None
    for index, bit in enumerate(bits):
        if carry is None:
            out.append(builder.gate(f"{name}_s{index}", "INV", [bit]))
            carry = bit
        else:
            out.append(
                builder.gate(f"{name}_s{index}", "XOR", [bit, carry])
            )
            carry = builder.gate(f"{name}_c{index}", "AND", [bit, carry])
    return out


def mux2_word(
    builder: NetlistBuilder,
    name: str,
    a_bits: Sequence[str],
    b_bits: Sequence[str],
    select: str,
) -> List[str]:
    """Word-wide 2:1 mux (select ? b : a)."""
    if len(a_bits) != len(b_bits):
        raise ValueError("mux operands must have equal width")
    return [
        builder.gate(f"{name}_m{index}", "MUX2", [a, b, select])
        for index, (a, b) in enumerate(zip(a_bits, b_bits))
    ]


def mux_tree(
    builder: NetlistBuilder,
    name: str,
    words: Sequence[Sequence[str]],
    selects: Sequence[str],
) -> List[str]:
    """N:1 word mux from a balanced tree of 2:1 muxes.

    ``len(words)`` must be ``2 ** len(selects)``.
    """
    if len(words) != 2 ** len(selects):
        raise ValueError(
            f"need {2 ** len(selects)} words for {len(selects)} selects"
        )
    level = [list(word) for word in words]
    for depth, select in enumerate(selects):
        merged = []
        for index in range(0, len(level), 2):
            merged.append(
                mux2_word(
                    builder,
                    f"{name}_d{depth}_{index // 2}",
                    level[index],
                    level[index + 1],
                    select,
                )
            )
        level = merged
    return level[0]


def decoder(
    builder: NetlistBuilder, name: str, selects: Sequence[str]
) -> List[str]:
    """One-hot decoder: 2**n outputs from n select bits."""
    inverted = [
        builder.gate(f"{name}_n{index}", "INV", [bit])
        for index, bit in enumerate(selects)
    ]
    outputs = []
    for code in range(2 ** len(selects)):
        terms = [
            selects[bit] if (code >> bit) & 1 else inverted[bit]
            for bit in range(len(selects))
        ]
        outputs.append(builder.gate(f"{name}_o{code}", "AND", terms))
    return outputs


def logic_unit(
    builder: NetlistBuilder,
    name: str,
    a_bits: Sequence[str],
    b_bits: Sequence[str],
    op0: str,
    op1: str,
) -> List[str]:
    """AND / OR / XOR / pass-a, selected by two op bits."""
    out = []
    for index, (a, b) in enumerate(zip(a_bits, b_bits)):
        and_ = builder.gate(f"{name}_and{index}", "AND", [a, b])
        or_ = builder.gate(f"{name}_or{index}", "OR", [a, b])
        xor_ = builder.gate(f"{name}_xor{index}", "XOR", [a, b])
        low = builder.gate(f"{name}_l{index}", "MUX2", [and_, or_, op0])
        high = builder.gate(f"{name}_h{index}", "MUX2", [xor_, a, op0])
        out.append(builder.gate(f"{name}_m{index}", "MUX2", [low, high, op1]))
    return out


def alu(
    builder: NetlistBuilder,
    name: str,
    a_bits: Sequence[str],
    b_bits: Sequence[str],
    op_bits: Sequence[str],
) -> List[str]:
    """A small ALU: adder + logic unit behind an op mux.

    ``op_bits``: [0] picks within the logic unit, [1] picks logic
    high/low group, [2] picks arithmetic vs logic.
    """
    if len(op_bits) < 3:
        raise ValueError("alu needs three op bits")
    sums, _ = ripple_adder(builder, f"{name}_add", a_bits, b_bits)
    logical = logic_unit(
        builder, f"{name}_log", a_bits, b_bits, op_bits[0], op_bits[1]
    )
    return mux2_word(builder, f"{name}_sel", logical, sums, op_bits[2])


def shifter(
    builder: NetlistBuilder,
    name: str,
    bits: Sequence[str],
    amount_bits: Sequence[str],
) -> List[str]:
    """Logarithmic left shifter (shift in the lsb's complement)."""
    current = list(bits)
    fill = builder.gate(f"{name}_fill", "INV", [bits[0]])
    zero = builder.gate(f"{name}_zero", "AND", [bits[0], fill])
    for stage, amount in enumerate(amount_bits):
        distance = 1 << stage
        shifted = [zero] * min(distance, len(current)) + list(
            current[: max(0, len(current) - distance)]
        )
        current = mux2_word(
            builder, f"{name}_st{stage}", current, shifted, amount
        )
    return current
