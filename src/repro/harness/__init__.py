"""Experiment harness: regenerates every table and figure of the paper."""

from repro.harness.tables import TableResult, render_table
from repro.harness.paper import PAPER_AVERAGES, PAPER_TABLE1
from repro.harness.experiments import ExperimentSuite
from repro.harness.parallel import (
    plan_cells,
    run_cell,
    run_suite_parallel,
)

__all__ = [
    "TableResult",
    "render_table",
    "PAPER_AVERAGES",
    "PAPER_TABLE1",
    "ExperimentSuite",
    "plan_cells",
    "run_cell",
    "run_suite_parallel",
]
