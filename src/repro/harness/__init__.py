"""Experiment harness: regenerates every table and figure of the paper."""

from repro.harness.tables import TableResult, render_table
from repro.harness.paper import PAPER_AVERAGES, PAPER_TABLE1
from repro.harness.experiments import ExperimentSuite

__all__ = [
    "TableResult",
    "render_table",
    "PAPER_AVERAGES",
    "PAPER_TABLE1",
    "ExperimentSuite",
]
