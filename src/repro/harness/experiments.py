"""Experiment drivers: one method per paper table/figure.

:class:`ExperimentSuite` lazily generates the benchmark circuits,
memoizes flow outcomes across tables (Tables IV-VII share the same
runs), and renders each table in the paper's layout.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.compare import average, improvement
from repro.cells import default_library
from repro.cells.library import Library
from repro.circuits import build_benchmark, suite_names
from repro.clocks import ClockScheme
from repro.flows import FlowOutcome, prepare_circuit, run_flow
from repro.harness.paper import OVERHEAD_LEVELS, PAPER_TABLE1
from repro.harness.tables import TableResult
from repro.latches.conversion import flop_resilient_area, original_flop_report
from repro.netlist.netlist import Netlist
from repro.sim import estimate_error_rate

LEVELS: Sequence[Tuple[str, float]] = tuple(OVERHEAD_LEVELS.items())


class ExperimentSuite:
    """Shared state and drivers for all experiments."""

    def __init__(
        self,
        circuits: Optional[Sequence[str]] = None,
        library: Optional[Library] = None,
        error_rate_cycles: int = 192,
        sim_seed: int = 2017,
    ) -> None:
        self.circuit_names = list(circuits or suite_names())
        self.library = library or default_library()
        self.error_rate_cycles = error_rate_cycles
        self.sim_seed = sim_seed
        self._netlists: Dict[str, Netlist] = {}
        self._schemes: Dict[str, ClockScheme] = {}
        self._outcomes: Dict[Tuple[str, str, float], FlowOutcome] = {}
        self._error_rates: Dict[Tuple[str, str, float], float] = {}

    # -- shared state ------------------------------------------------------

    def netlist(self, name: str) -> Netlist:
        """The (memoized) generated netlist for ``name``."""
        if name not in self._netlists:
            self._netlists[name] = build_benchmark(name, self.library)
        return self._netlists[name]

    def scheme(self, name: str) -> ClockScheme:
        """The (memoized) derived clock scheme for ``name``."""
        if name not in self._schemes:
            scheme, _ = prepare_circuit(self.netlist(name), self.library)
            self._schemes[name] = scheme
        return self._schemes[name]

    #: Methods whose retiming, sizing, and EDL decisions do not read
    #: the overhead at all — ``c`` only enters their cost arithmetic.
    #: (G-RAR variants are genuinely c-dependent: credits and rescue
    #: budgets scale with the overhead.)
    C_INDEPENDENT = frozenset(
        {"base", "evl", "nvl", "rvl", "rvl-noswap", "rvl-movable"}
    )

    def outcome(self, name: str, method: str, overhead: float) -> FlowOutcome:
        """The (memoized) flow outcome for (circuit, method, c).

        For c-independent methods the flow runs once and other
        overheads are derived by re-costing (same placement, same EDL
        set) — a 3x saving on the full-suite tables.
        """
        key = (name, method, overhead)
        if key in self._outcomes:
            return self._outcomes[key]
        if method in self.C_INDEPENDENT:
            canonical = (name, method, 1.0)
            if canonical not in self._outcomes:
                self._outcomes[canonical] = run_flow(
                    method,
                    self.netlist(name),
                    self.library,
                    1.0,
                    scheme=self.scheme(name),
                )
            base = self._outcomes[canonical]
            if overhead == 1.0:
                return base
            self._outcomes[key] = self._recost(base, overhead)
            return self._outcomes[key]
        self._outcomes[key] = run_flow(
            method,
            self.netlist(name),
            self.library,
            overhead,
            scheme=self.scheme(name),
        )
        return self._outcomes[key]

    @staticmethod
    def _recost(outcome: FlowOutcome, overhead: float) -> FlowOutcome:
        """Clone an outcome under a different EDL overhead."""
        from dataclasses import replace

        return replace(
            outcome,
            overhead=overhead,
            cost=replace(outcome.cost, overhead=overhead),
        )

    def error_rate(self, name: str, method: str, overhead: float) -> float:
        """The (memoized) simulated error rate in percent.

        c-independent methods share one simulation (identical
        placements and EDL sets across overheads).
        """
        if method in self.C_INDEPENDENT and overhead != 1.0:
            return self.error_rate(name, method, 1.0)
        key = (name, method, overhead)
        if key not in self._error_rates:
            out = self.outcome(name, method, overhead)
            report = estimate_error_rate(
                out.circuit,
                out.retiming.placement,
                out.edl_endpoints,
                cycles=self.error_rate_cycles,
                seed=self.sim_seed,
            )
            self._error_rates[key] = report.error_rate
        return self._error_rates[key]

    # -- Table I ----------------------------------------------------------

    def table1(self) -> TableResult:
        """Circuit information of the original flop-based designs."""
        table = TableResult(
            "Table I",
            "circuit info of original flop-based designs",
            ["circuit", "P(ns)", "flop#", "NCE#", "gates", "area",
             "paper_P", "paper_flop#", "paper_NCE#"],
        )
        for name in self.circuit_names:
            netlist = self.netlist(name)
            scheme = self.scheme(name)
            report = original_flop_report(netlist, scheme, self.library)
            paper = PAPER_TABLE1.get(name, (0, 0, 0, 0))
            table.add_row(
                name,
                round(scheme.max_path_delay, 3),
                report.n_flops,
                report.n_near_critical,
                report.n_comb_gates,
                round(report.total_area, 2),
                paper[0],
                paper[1],
                paper[2],
            )
        table.add_note(
            "synthetic circuits matched to the paper's flop counts and "
            "NCE fractions; areas use the repro library's units"
        )
        return table

    # -- Table II -----------------------------------------------------------

    def table2(self) -> TableResult:
        """Gate-based vs path-based delay model G-RAR (total area)."""
        table = TableResult(
            "Table II",
            "total area: gate-based vs path-based G-RAR",
            ["circuit"]
            + [f"{lvl}:{col}" for lvl, _ in LEVELS
               for col in ("gate", "path", "impr%")],
        )
        for name in self.circuit_names:
            row: List = [name]
            for _, c in LEVELS:
                gate = self.outcome(name, "grar-gate", c).total_area
                path = self.outcome(name, "grar", c).total_area
                row += [round(gate, 1), round(path, 1),
                        round(improvement(gate, path), 2)]
            table.add_row(*row)
        for index, (lvl, _) in enumerate(LEVELS):
            col = f"{lvl}:impr%"
            table.add_note(
                f"average {lvl} improvement: "
                f"{average(table.column(col)):.2f}%"
            )
        return table

    # -- Table III -----------------------------------------------------------

    def table3(self) -> TableResult:
        """Area comparison of the virtual-library variants."""
        table = TableResult(
            "Table III",
            "total area of NVL / EVL / RVL",
            ["circuit"]
            + [f"{lvl}:{v}" for lvl, _ in LEVELS
               for v in ("NVL", "EVL", "RVL")],
        )
        for name in self.circuit_names:
            row: List = [name]
            for _, c in LEVELS:
                row += [
                    round(self.outcome(name, "nvl", c).total_area, 1),
                    round(self.outcome(name, "evl", c).total_area, 1),
                    round(self.outcome(name, "rvl", c).total_area, 1),
                ]
            table.add_row(*row)
        for lvl, _ in LEVELS:
            avgs = {
                v: average(table.column(f"{lvl}:{v}"))
                for v in ("NVL", "EVL", "RVL")
            }
            table.add_note(
                f"{lvl} averages: "
                + " ".join(f"{k}={v:.1f}" for k, v in avgs.items())
            )
        return table

    # -- Tables IV & V ---------------------------------------------------------

    def _comparison_table(
        self, table_id: str, title: str, metric: str
    ) -> TableResult:
        table = TableResult(
            table_id,
            title,
            ["circuit"]
            + [f"{lvl}:{col}" for lvl, _ in LEVELS
               for col in ("base", "rvl", "rvl%", "grar", "grar%")],
        )
        for name in self.circuit_names:
            row: List = [name]
            for _, c in LEVELS:
                base = getattr(self.outcome(name, "base", c), metric)
                rvl = getattr(self.outcome(name, "rvl", c), metric)
                grar = getattr(self.outcome(name, "grar", c), metric)
                row += [
                    round(base, 1),
                    round(rvl, 1),
                    round(improvement(base, rvl), 2),
                    round(grar, 1),
                    round(improvement(base, grar), 2),
                ]
            table.add_row(*row)
        for lvl, _ in LEVELS:
            table.add_note(
                f"{lvl} average improvement: "
                f"RVL {average(table.column(f'{lvl}:rvl%')):.2f}% "
                f"G-RAR {average(table.column(f'{lvl}:grar%')):.2f}%"
            )
        return table

    def table4(self) -> TableResult:
        """Sequential logic area: base vs RVL-RAR vs G-RAR."""
        return self._comparison_table(
            "Table IV",
            "sequential logic area: base / RVL / G-RAR",
            "sequential_area",
        )

    def table5(self) -> TableResult:
        """Total area: base vs RVL-RAR vs G-RAR."""
        return self._comparison_table(
            "Table V", "total area: base / RVL / G-RAR", "total_area"
        )

    # -- Table VI -----------------------------------------------------------

    def table6(self) -> TableResult:
        """Slave-latch and EDL-master counts per approach."""
        table = TableResult(
            "Table VI",
            "slave and error-detecting master counts",
            ["circuit", "approach"]
            + [f"{lvl}:{col}" for lvl, _ in LEVELS
               for col in ("slave#", "EDL#")],
        )
        for name in self.circuit_names:
            for method, label in (
                ("base", "Base"), ("rvl", "RVL"), ("grar", "G"),
            ):
                row: List = [name, label]
                for _, c in LEVELS:
                    out = self.outcome(name, method, c)
                    row += [out.n_slaves, out.n_edl]
                table.add_row(*row)
        return table

    # -- Table VII -----------------------------------------------------------

    def table7(self) -> TableResult:
        """Flow run-times (seconds)."""
        table = TableResult(
            "Table VII",
            "run-time (s) per approach",
            ["circuit"]
            + [f"{lvl}:{m}" for lvl, _ in LEVELS
               for m in ("base", "rvl", "grar")],
        )
        for name in self.circuit_names:
            row: List = [name]
            for _, c in LEVELS:
                row += [
                    round(self.outcome(name, "base", c).runtime_s, 2),
                    round(self.outcome(name, "rvl", c).runtime_s, 2),
                    round(self.outcome(name, "grar", c).runtime_s, 2),
                ]
            table.add_row(*row)
        return table

    # -- Table VIII -----------------------------------------------------------

    def table8(self) -> TableResult:
        """Error rates (%) per approach."""
        table = TableResult(
            "Table VIII",
            "error rate (%) per approach",
            ["circuit"]
            + [f"{lvl}:{m}" for lvl, _ in LEVELS
               for m in ("base", "rvl", "grar")],
        )
        for name in self.circuit_names:
            row: List = [name]
            for _, c in LEVELS:
                row += [
                    round(self.error_rate(name, "base", c), 2),
                    round(self.error_rate(name, "rvl", c), 2),
                    round(self.error_rate(name, "grar", c), 2),
                ]
            table.add_row(*row)
        for lvl, _ in LEVELS:
            table.add_note(
                f"{lvl} averages: base "
                f"{average(table.column(f'{lvl}:base')):.2f}% rvl "
                f"{average(table.column(f'{lvl}:rvl')):.2f}% grar "
                f"{average(table.column(f'{lvl}:grar')):.2f}%"
            )
        return table

    # -- Table IX -----------------------------------------------------------

    def table9(self) -> TableResult:
        """Fixed- vs movable-master RVL total area."""
        table = TableResult(
            "Table IX",
            "total area: fixed vs movable-master RVL",
            ["circuit"]
            + [f"{lvl}:{col}" for lvl, _ in LEVELS
               for col in ("fixed", "movable", "diff%")],
        )
        for name in self.circuit_names:
            row: List = [name]
            for _, c in LEVELS:
                fixed = self.outcome(name, "rvl", c).total_area
                movable = self.outcome(name, "rvl-movable", c).total_area
                row += [
                    round(fixed, 1),
                    round(movable, 1),
                    round(improvement(fixed, movable), 2),
                ]
            table.add_row(*row)
        for lvl, _ in LEVELS:
            table.add_note(
                f"{lvl} average diff: "
                f"{average(table.column(f'{lvl}:diff%')):.2f}%"
            )
        return table

    # -- Section VI-D flop-resilient comparison ---------------------------------

    def flop_comparison(self) -> TableResult:
        """Latch-based resilient vs flop-based resilient area."""
        table = TableResult(
            "VI-D",
            "latch-based (G-RAR) vs flop-based resilient area",
            ["circuit", "flop_design"]
            + [f"{lvl}:{col}" for lvl, _ in LEVELS
               for col in ("flop_res", "latch_res", "saving%")],
        )
        for name in self.circuit_names:
            netlist = self.netlist(name)
            scheme = self.scheme(name)
            report = original_flop_report(netlist, scheme, self.library)
            row: List = [name, round(report.total_area, 1)]
            for _, c in LEVELS:
                flop_res = flop_resilient_area(report, self.library, c)
                latch_res = self.outcome(name, "grar", c).total_area
                row += [
                    round(flop_res, 1),
                    round(latch_res, 1),
                    round(improvement(flop_res, latch_res), 2),
                ]
            table.add_row(*row)
        for lvl, _ in LEVELS:
            table.add_note(
                f"{lvl} average saving vs flop-resilient: "
                f"{average(table.column(f'{lvl}:saving%')):.2f}%"
            )
        return table

    # -- everything -------------------------------------------------------------

    def all_tables(self) -> List[TableResult]:
        """Every table, computed in order."""
        return [
            self.table1(),
            self.table2(),
            self.table3(),
            self.table4(),
            self.table5(),
            self.table6(),
            self.table7(),
            self.table8(),
            self.table9(),
            self.flop_comparison(),
        ]
