"""Experiment drivers: one method per paper table/figure.

:class:`ExperimentSuite` lazily generates the benchmark circuits,
memoizes flow outcomes across tables (Tables IV-VII share the same
runs), and renders each table in the paper's layout.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.compare import average, improvement
from repro.cells import default_library
from repro.cells.library import Library
from repro.circuits import build_benchmark, suite_names
from repro.clocks import ClockScheme
from repro.errors import ReproError, stage_scope
from repro.flows import FlowOutcome, prepare_circuit, run_flow
from repro.harness.paper import OVERHEAD_LEVELS, PAPER_TABLE1
from repro.harness.tables import TableResult
from repro.latches.conversion import flop_resilient_area, original_flop_report
from repro.netlist.netlist import Netlist
from repro.sim import estimate_error_rate_batched
from repro.store import (
    ArtifactStore,
    atomic_write_text,
    config_fingerprint,
    decode_memo_cell_key,
    library_fingerprint,
    memo_cell_key,
    open_store,
)

LEVELS: Sequence[Tuple[str, float]] = tuple(OVERHEAD_LEVELS.items())

_NAN = float("nan")


@dataclass
class FailedOutcome:
    """Placeholder for a (circuit, method, c) run that raised.

    Exposes the same table-facing metrics as :class:`FlowOutcome`, all
    NaN, so every table renders a ``FAILED`` cell instead of crashing
    or reporting a silently wrong number.
    """

    method: str
    circuit_name: str
    overhead: float
    stage: Optional[str]
    error: Dict[str, object]

    failed = True

    @property
    def n_slaves(self) -> float:
        return _NAN

    @property
    def n_edl(self) -> float:
        return _NAN

    @property
    def sequential_area(self) -> float:
        return _NAN

    @property
    def total_area(self) -> float:
        return _NAN

    @property
    def runtime_s(self) -> float:
        return _NAN

    def summary(self) -> str:
        """One-line failure summary."""
        return (
            f"{self.method}[{self.circuit_name}, c={self.overhead}]: "
            f"FAILED in {self.stage or '?'}: {self.error.get('message')}"
        )


@dataclass
class FlowRecord:
    """Numbers a completed run contributes to the tables.

    This is what the resumable memo persists — enough to re-render
    every table (including re-costing under a different overhead)
    without re-running the flow.
    """

    method: str
    circuit_name: str
    overhead: float
    n_slaves: int
    n_masters: int
    n_edl: int
    latch_area: float
    comb_area: float
    runtime_s: float
    solver_backend: str = ""

    failed = False

    @property
    def sequential_area(self) -> float:
        """Same arithmetic as :class:`SequentialCost.area`."""
        return (
            self.n_slaves + self.n_masters + self.overhead * self.n_edl
        ) * self.latch_area

    @property
    def total_area(self) -> float:
        return self.comb_area + self.sequential_area

    @staticmethod
    def from_outcome(outcome: FlowOutcome) -> "FlowRecord":
        return FlowRecord(
            method=outcome.method,
            circuit_name=outcome.circuit_name,
            overhead=outcome.overhead,
            n_slaves=outcome.cost.n_slaves,
            n_masters=outcome.cost.n_masters,
            n_edl=outcome.cost.n_edl,
            latch_area=outcome.cost.latch_area,
            comb_area=outcome.comb_area,
            runtime_s=outcome.runtime_s,
            solver_backend=outcome.solver_backend,
        )


#: Anything `outcome()` may hand to the tables.
AnyOutcome = Union[FlowOutcome, FlowRecord, FailedOutcome]


class ExperimentSuite:
    """Shared state and drivers for all experiments."""

    def __init__(
        self,
        circuits: Optional[Sequence[str]] = None,
        library: Optional[Library] = None,
        error_rate_cycles: int = 192,
        sim_seed: int = 2017,
        sim_seeds: Optional[Sequence[int]] = None,
        sim_backend: str = "compiled",
        sta_mode: str = "incremental",
        sta_engine: str = "object",
        guard: Optional[str] = None,
        isolate: bool = False,
        memo_path: Optional[str] = None,
        solver_policy=None,
        checkpoint_every: int = 1,
        checkpoint_interval_s: float = 0.0,
        retime_cache: bool = True,
        store: Union[ArtifactStore, str, None] = None,
    ) -> None:
        self.circuit_names = list(circuits or suite_names())
        self.library = library or default_library()
        self.error_rate_cycles = error_rate_cycles
        self.sim_seed = sim_seed
        #: Monte-Carlo seed sweep: every seed simulates through one
        #: shared compile (:func:`estimate_error_rate_batched`), and
        #: the reported error rate is the mean over seeds.  Defaults
        #: to ``(sim_seed,)``, which is report-identical to the
        #: legacy single-seed path.
        self.sim_seeds: Tuple[int, ...] = (
            tuple(sim_seeds) if sim_seeds else (sim_seed,)
        )
        self.sim_backend = sim_backend
        self.sta_mode = sta_mode
        self.sta_engine = sta_engine
        self.guard = guard
        self.isolate = isolate
        self.memo_path = memo_path
        self.solver_policy = solver_policy
        #: reuse compiled retiming problems + simplex warm starts when
        #: sweeping overheads; ``False`` is the bit-parity oracle.
        self.retime_cache = retime_cache
        #: batched checkpointing: rewrite the memo only every N dirty
        #: cells (or after ``checkpoint_interval_s`` seconds), instead
        #: of a full JSON rewrite per cell.  1 = write every time.
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.checkpoint_interval_s = float(checkpoint_interval_s)
        #: artifact store the flows run against (compiled problems and
        #: arenas); a *persistent* store additionally carries the memo
        #: as a ``"suite-memo"`` artifact, so suites sharing the store
        #: directory resume each other's runs without a ``memo_path``.
        self.store = open_store(store)
        self.failures: List[FailedOutcome] = []
        self._netlists: Dict[str, Netlist] = {}
        self._schemes: Dict[str, ClockScheme] = {}
        self._outcomes: Dict[Tuple[str, str, float], AnyOutcome] = {}
        self._error_rates: Dict[Tuple[str, str, float], float] = {}
        self._dirty_cells = 0
        self._last_checkpoint = time.monotonic()
        if self._store_memo_enabled():
            payload = self.store.get("suite-memo", self._store_memo_key())
            if isinstance(payload, dict):
                self._ingest_memo(payload)
        if memo_path:
            # The legacy file memo loads second: an explicit path is
            # the closer authority when both carry the same cell.
            self._load_memo(memo_path)

    # -- shared state ------------------------------------------------------

    def netlist(self, name: str) -> Netlist:
        """The (memoized) generated netlist for ``name``."""
        if name not in self._netlists:
            self._netlists[name] = build_benchmark(name, self.library)
        return self._netlists[name]

    def add_netlist(
        self,
        name: str,
        netlist: Netlist,
        scheme: Optional[ClockScheme] = None,
    ) -> None:
        """Register an external netlist as a suite circuit.

        Converted designs (ISCAS89 ``.bench`` files, exported Verilog)
        enter the suite here instead of through the generator; every
        table producer, the overhead sweep, and the parallel harness
        then treat ``name`` exactly like a built-in benchmark.  An
        explicit ``scheme`` (e.g. the one the conversion front end
        derived) pre-seeds the clock memo; omitted, the suite derives
        it with the standard recipe — the two are bit-identical for
        :func:`repro.convert.convert_to_two_phase` output.
        """
        self._netlists[name] = netlist
        if scheme is not None:
            self._schemes[name] = scheme
        if name not in self.circuit_names:
            self.circuit_names.append(name)

    def scheme(self, name: str) -> ClockScheme:
        """The (memoized) derived clock scheme for ``name``."""
        if name not in self._schemes:
            scheme, _ = prepare_circuit(
                self.netlist(name), self.library,
                sta_engine=self.sta_engine,
            )
            self._schemes[name] = scheme
        return self._schemes[name]

    #: Methods whose retiming, sizing, and EDL decisions do not read
    #: the overhead at all — ``c`` only enters their cost arithmetic.
    #: (G-RAR variants are genuinely c-dependent: credits and rescue
    #: budgets scale with the overhead.)
    C_INDEPENDENT = frozenset(
        {"base", "evl", "nvl", "rvl", "rvl-noswap", "rvl-movable",
         "selective"}
    )

    #: c-dependent G-RAR variants: each overhead is a fresh solve, but
    #: the compiled problem + warm basis are shared across the sweep.
    GRAR_METHODS = frozenset({"grar", "grar-gate", "grar-lp"})

    def outcome(self, name: str, method: str, overhead: float) -> AnyOutcome:
        """The (memoized) flow outcome for (circuit, method, c).

        For c-independent methods the flow runs once and other
        overheads are derived by re-costing (same placement, same EDL
        set) — a 3x saving on the full-suite tables.

        With ``isolate=True`` a run that raises a
        :class:`~repro.errors.ReproError` yields a
        :class:`FailedOutcome` (NaN metrics, rendered ``FAILED``)
        instead of killing the whole suite; with a ``memo_path``,
        completed runs resume from disk.
        """
        key = (name, method, overhead)
        if key in self._outcomes:
            return self._outcomes[key]
        if method in self.C_INDEPENDENT:
            canonical = (name, method, 1.0)
            if canonical not in self._outcomes:
                self._outcomes[canonical] = self._run(name, method, 1.0)
                self.checkpoint(force=False)
            base = self._outcomes[canonical]
            if overhead == 1.0:
                return base
            self._outcomes[key] = self._recost(base, overhead)
            return self._outcomes[key]
        if method in self.GRAR_METHODS and self.retime_cache:
            # Group the sweep per circuit: solving every overhead now,
            # back to back, keeps the compiled problem and the warm
            # basis hot instead of interleaving circuits between them.
            for _, level in LEVELS:
                level_key = (name, method, level)
                if level_key not in self._outcomes:
                    self._outcomes[level_key] = self._run(
                        name, method, level
                    )
                    self.checkpoint(force=False)
            if key in self._outcomes:
                return self._outcomes[key]
        self._outcomes[key] = self._run(name, method, overhead)
        self.checkpoint(force=False)
        return self._outcomes[key]

    def _run(self, name: str, method: str, overhead: float) -> AnyOutcome:
        """One isolated flow invocation (plus memo bookkeeping)."""
        try:
            with stage_scope("prepare", circuit=name):
                netlist = self.netlist(name)
                scheme = self.scheme(name)
            outcome = run_flow(
                method,
                netlist,
                self.library,
                overhead,
                scheme=scheme,
                guard=self.guard,
                solver_policy=self.solver_policy,
                sta_mode=self.sta_mode,
                sta_engine=self.sta_engine,
                retime_cache=self.retime_cache,
                store=self.store,
            )
        except ReproError as exc:
            if not self.isolate:
                raise
            exc.annotate(circuit=name)
            failed = FailedOutcome(
                method=method,
                circuit_name=name,
                overhead=overhead,
                stage=exc.stage,
                error=exc.to_dict(),
            )
            self.failures.append(failed)
            self.checkpoint(force=False)
            return failed
        return outcome

    @staticmethod
    def _recost(outcome: AnyOutcome, overhead: float) -> AnyOutcome:
        """Clone an outcome under a different EDL overhead."""
        if isinstance(outcome, FailedOutcome):
            return replace(outcome, overhead=overhead)
        if isinstance(outcome, FlowRecord):
            return replace(outcome, overhead=overhead)
        return replace(
            outcome,
            overhead=overhead,
            cost=replace(outcome.cost, overhead=overhead),
            # The nested retiming result carries its own overhead and
            # cost copy; leaving them at the canonical c = 1.0 made
            # `outcome.retiming.sequential_area` (and summary lines)
            # report canonical areas under every other overhead.
            retiming=replace(
                outcome.retiming,
                overhead=overhead,
                cost=replace(outcome.retiming.cost, overhead=overhead),
            ),
        )

    def error_rate(self, name: str, method: str, overhead: float) -> float:
        """The (memoized) simulated error rate in percent.

        c-independent methods share one simulation (identical
        placements and EDL sets across overheads).  Failed circuits
        report NaN (rendered ``FAILED``).
        """
        if method in self.C_INDEPENDENT and overhead != 1.0:
            return self.error_rate(name, method, 1.0)
        key = (name, method, overhead)
        if key not in self._error_rates:
            out = self.outcome(name, method, overhead)
            if isinstance(out, FailedOutcome):
                return _NAN
            if isinstance(out, FlowRecord):
                # The memo resumed this run without the live circuit;
                # re-run the flow once to simulate on it.
                out = self._run(name, method, overhead)
                if not isinstance(out, FlowOutcome):
                    return _NAN
                self._outcomes[(name, method, overhead)] = out
            try:
                with stage_scope("simulate", circuit=name):
                    # One compile serves the whole seed sweep; for a
                    # single seed the reports are byte-identical to
                    # the sequential estimate_error_rate call.
                    reports = estimate_error_rate_batched(
                        out.circuit,
                        out.retiming.placement,
                        out.edl_endpoints,
                        cycles=self.error_rate_cycles,
                        seeds=self.sim_seeds,
                        backend=self.sim_backend,
                    )
            except ReproError as exc:
                if not self.isolate:
                    raise
                self.failures.append(
                    FailedOutcome(
                        method=method,
                        circuit_name=name,
                        overhead=overhead,
                        stage=exc.stage,
                        error=exc.to_dict(),
                    )
                )
                self._error_rates[key] = _NAN
                return _NAN
            self._error_rates[key] = sum(
                r.error_rate for r in reports
            ) / len(reports)
            self.checkpoint(force=False)
        return self._error_rates[key]

    # -- failure reporting and resumability --------------------------------

    def failure_report(self) -> Dict[str, object]:
        """Machine-readable account of every isolated failure."""
        return {
            "n_failures": len(self.failures),
            "failures": [
                {
                    "circuit": f.circuit_name,
                    "method": f.method,
                    "overhead": f.overhead,
                    "stage": f.stage,
                    "error": f.error,
                }
                for f in self.failures
            ],
        }

    @staticmethod
    def _memo_key(key: Tuple[str, str, float]) -> str:
        """Injective memo key via :func:`repro.store.memo_cell_key`: a
        JSON array, immune to ``|`` in names, round-tripping the float
        overhead exactly (``repr`` semantics)."""
        return memo_cell_key(key)

    @staticmethod
    def _decode_memo_key(memo_key: str) -> Tuple[str, str, float]:
        """Decode a memo key, accepting the legacy ``|`` format.

        Legacy memos are migrated transparently: they decode here and
        the next :meth:`checkpoint` rewrites them JSON-encoded.
        """
        name, method, overhead = decode_memo_cell_key(memo_key)
        return (str(name), str(method), float(overhead))

    def _store_memo_enabled(self) -> bool:
        """Whether the memo also lives in the artifact store.

        Only a *persistent* store carries the ``"suite-memo"``
        namespace: in a memory-only store the artifact would just
        alias this process's ``_outcomes`` (and leak runs between
        unrelated in-process suites).
        """
        return self.store is not None and self.store.persistent

    def _store_memo_key(self) -> str:
        """The suite's memo artifact key: a config fingerprint.

        Covers exactly the knobs that change memoized *values* —
        library content, simulated cycles, seed, and the solver
        policy.  Bit-identical-by-contract switches (simulation
        backend, STA mode/engine, retime cache, jobs) stay out, so a
        warm store serves any of their combinations.
        """
        config = {
            "library": library_fingerprint(self.library),
            "error_rate_cycles": self.error_rate_cycles,
            "sim_seed": self.sim_seed,
            "solver_policy": repr(self.solver_policy),
        }
        # Multi-seed sweeps change memoized values, so they key the
        # memo; the single-seed layout keeps the legacy fingerprint
        # (warm stores stay valid).
        if len(self.sim_seeds) > 1:
            config["sim_seeds"] = list(self.sim_seeds)
        return config_fingerprint("suite-memo", config)

    def checkpoint(self, force: bool = True) -> bool:
        """Persist completed runs so a crashed suite can resume.

        ``force=False`` marks one cell dirty and only rewrites the
        memo once ``checkpoint_every`` cells accumulated (or
        ``checkpoint_interval_s`` elapsed) — the batching that keeps a
        parallel suite from serializing on full-JSON rewrites.  The
        payload goes to ``memo_path`` (when set) and to a persistent
        artifact store's ``"suite-memo"`` namespace (when attached).
        Returns True when the memo was written.
        """
        to_store = self._store_memo_enabled()
        if not self.memo_path and not to_store:
            return False
        if not force:
            self._dirty_cells += 1
            due = self._dirty_cells >= self.checkpoint_every
            if not due and self.checkpoint_interval_s > 0:
                due = (
                    time.monotonic() - self._last_checkpoint
                    >= self.checkpoint_interval_s
                )
            if not due:
                return False
        runs = {}
        for key, out in self._outcomes.items():
            if isinstance(out, FailedOutcome):
                continue
            record = (
                out
                if isinstance(out, FlowRecord)
                else FlowRecord.from_outcome(out)
            )
            runs[self._memo_key(key)] = record.__dict__
        payload = {
            "runs": runs,
            "error_rates": {
                self._memo_key(k): v
                for k, v in self._error_rates.items()
                if v == v
            },
            "failures": self.failure_report()["failures"],
        }
        if self.memo_path:
            # Unique-tmp atomic write: two suites sharing a memo path
            # used to race on one fixed ``{path}.tmp`` name.
            atomic_write_text(
                self.memo_path, json.dumps(payload, indent=1)
            )
        if to_store:
            self.store.put("suite-memo", self._store_memo_key(), payload)
        self._dirty_cells = 0
        self._last_checkpoint = time.monotonic()
        return True

    def _ingest_memo(self, payload: Dict[str, object]) -> None:
        """Merge one memo payload (file or store artifact) into state."""
        for memo_key, fields_ in payload.get("runs", {}).items():
            key = self._decode_memo_key(memo_key)
            self._outcomes[key] = FlowRecord(**fields_)
        for memo_key, rate in payload.get("error_rates", {}).items():
            self._error_rates[self._decode_memo_key(memo_key)] = rate

    def _load_memo(self, path: str) -> None:
        if not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as stream:
            payload = json.load(stream)
        self._ingest_memo(payload)

    # -- parallel-engine merge hooks ---------------------------------------

    def record_outcome(
        self, key: Tuple[str, str, float], outcome: AnyOutcome
    ) -> None:
        """Merge one completed (possibly remote) cell into the memo."""
        self._outcomes[key] = outcome
        if isinstance(outcome, FailedOutcome):
            self.failures.append(outcome)
        self.checkpoint(force=False)

    def record_error_rate(
        self, key: Tuple[str, str, float], rate: float
    ) -> None:
        """Merge one simulated error rate into the memo."""
        self._error_rates[key] = rate

    # -- Table I ----------------------------------------------------------

    def table1(self) -> TableResult:
        """Circuit information of the original flop-based designs."""
        table = TableResult(
            "Table I",
            "circuit info of original flop-based designs",
            ["circuit", "P(ns)", "flop#", "NCE#", "gates", "area",
             "paper_P", "paper_flop#", "paper_NCE#"],
        )
        for name in self.circuit_names:
            paper = PAPER_TABLE1.get(name, (0, 0, 0, 0))
            try:
                with stage_scope("prepare", circuit=name):
                    netlist = self.netlist(name)
                    scheme = self.scheme(name)
                    report = original_flop_report(
                        netlist, scheme, self.library
                    )
            except ReproError as exc:
                if not self.isolate:
                    raise
                self.failures.append(
                    FailedOutcome(
                        method="table1",
                        circuit_name=name,
                        overhead=0.0,
                        stage=exc.stage,
                        error=exc.to_dict(),
                    )
                )
                table.add_row(
                    name, _NAN, _NAN, _NAN, _NAN, _NAN,
                    paper[0], paper[1], paper[2],
                )
                continue
            table.add_row(
                name,
                round(scheme.max_path_delay, 3),
                report.n_flops,
                report.n_near_critical,
                report.n_comb_gates,
                round(report.total_area, 2),
                paper[0],
                paper[1],
                paper[2],
            )
        table.add_note(
            "synthetic circuits matched to the paper's flop counts and "
            "NCE fractions; areas use the repro library's units"
        )
        return table

    # -- Table II -----------------------------------------------------------

    def table2(self) -> TableResult:
        """Gate-based vs path-based delay model G-RAR (total area)."""
        table = TableResult(
            "Table II",
            "total area: gate-based vs path-based G-RAR",
            ["circuit"]
            + [f"{lvl}:{col}" for lvl, _ in LEVELS
               for col in ("gate", "path", "impr%")],
        )
        for name in self.circuit_names:
            row: List = [name]
            for _, c in LEVELS:
                gate = self.outcome(name, "grar-gate", c).total_area
                path = self.outcome(name, "grar", c).total_area
                row += [round(gate, 1), round(path, 1),
                        round(improvement(gate, path), 2)]
            table.add_row(*row)
        for index, (lvl, _) in enumerate(LEVELS):
            col = f"{lvl}:impr%"
            table.add_note(
                f"average {lvl} improvement: "
                f"{average(table.column(col)):.2f}%"
            )
        return table

    # -- Table III -----------------------------------------------------------

    def table3(self) -> TableResult:
        """Area comparison of the virtual-library variants."""
        table = TableResult(
            "Table III",
            "total area of NVL / EVL / RVL",
            ["circuit"]
            + [f"{lvl}:{v}" for lvl, _ in LEVELS
               for v in ("NVL", "EVL", "RVL")],
        )
        for name in self.circuit_names:
            row: List = [name]
            for _, c in LEVELS:
                row += [
                    round(self.outcome(name, "nvl", c).total_area, 1),
                    round(self.outcome(name, "evl", c).total_area, 1),
                    round(self.outcome(name, "rvl", c).total_area, 1),
                ]
            table.add_row(*row)
        for lvl, _ in LEVELS:
            avgs = {
                v: average(table.column(f"{lvl}:{v}"))
                for v in ("NVL", "EVL", "RVL")
            }
            table.add_note(
                f"{lvl} averages: "
                + " ".join(f"{k}={v:.1f}" for k, v in avgs.items())
            )
        return table

    # -- Tables IV & V ---------------------------------------------------------

    def _comparison_table(
        self, table_id: str, title: str, metric: str
    ) -> TableResult:
        table = TableResult(
            table_id,
            title,
            ["circuit"]
            + [f"{lvl}:{col}" for lvl, _ in LEVELS
               for col in ("base", "rvl", "rvl%", "grar", "grar%")],
        )
        for name in self.circuit_names:
            row: List = [name]
            for _, c in LEVELS:
                base = getattr(self.outcome(name, "base", c), metric)
                rvl = getattr(self.outcome(name, "rvl", c), metric)
                grar = getattr(self.outcome(name, "grar", c), metric)
                row += [
                    round(base, 1),
                    round(rvl, 1),
                    round(improvement(base, rvl), 2),
                    round(grar, 1),
                    round(improvement(base, grar), 2),
                ]
            table.add_row(*row)
        for lvl, _ in LEVELS:
            table.add_note(
                f"{lvl} average improvement: "
                f"RVL {average(table.column(f'{lvl}:rvl%')):.2f}% "
                f"G-RAR {average(table.column(f'{lvl}:grar%')):.2f}%"
            )
        return table

    def table4(self) -> TableResult:
        """Sequential logic area: base vs RVL-RAR vs G-RAR."""
        return self._comparison_table(
            "Table IV",
            "sequential logic area: base / RVL / G-RAR",
            "sequential_area",
        )

    def table5(self) -> TableResult:
        """Total area: base vs RVL-RAR vs G-RAR."""
        return self._comparison_table(
            "Table V", "total area: base / RVL / G-RAR", "total_area"
        )

    # -- Table VI -----------------------------------------------------------

    def table6(self) -> TableResult:
        """Slave-latch and EDL-master counts per approach."""
        table = TableResult(
            "Table VI",
            "slave and error-detecting master counts",
            ["circuit", "approach"]
            + [f"{lvl}:{col}" for lvl, _ in LEVELS
               for col in ("slave#", "EDL#")],
        )
        for name in self.circuit_names:
            for method, label in (
                ("base", "Base"), ("rvl", "RVL"), ("grar", "G"),
            ):
                row: List = [name, label]
                for _, c in LEVELS:
                    out = self.outcome(name, method, c)
                    row += [out.n_slaves, out.n_edl]
                table.add_row(*row)
        return table

    # -- Table VII -----------------------------------------------------------

    def table7(self) -> TableResult:
        """Flow run-times (seconds)."""
        table = TableResult(
            "Table VII",
            "run-time (s) per approach",
            ["circuit"]
            + [f"{lvl}:{m}" for lvl, _ in LEVELS
               for m in ("base", "rvl", "grar")],
        )
        for name in self.circuit_names:
            row: List = [name]
            for _, c in LEVELS:
                row += [
                    round(self.outcome(name, "base", c).runtime_s, 2),
                    round(self.outcome(name, "rvl", c).runtime_s, 2),
                    round(self.outcome(name, "grar", c).runtime_s, 2),
                ]
            table.add_row(*row)
        return table

    # -- Table VIII -----------------------------------------------------------

    def table8(self) -> TableResult:
        """Error rates (%) per approach."""
        table = TableResult(
            "Table VIII",
            "error rate (%) per approach",
            ["circuit"]
            + [f"{lvl}:{m}" for lvl, _ in LEVELS
               for m in ("base", "rvl", "grar")],
        )
        for name in self.circuit_names:
            row: List = [name]
            for _, c in LEVELS:
                row += [
                    round(self.error_rate(name, "base", c), 2),
                    round(self.error_rate(name, "rvl", c), 2),
                    round(self.error_rate(name, "grar", c), 2),
                ]
            table.add_row(*row)
        for lvl, _ in LEVELS:
            table.add_note(
                f"{lvl} averages: base "
                f"{average(table.column(f'{lvl}:base')):.2f}% rvl "
                f"{average(table.column(f'{lvl}:rvl')):.2f}% grar "
                f"{average(table.column(f'{lvl}:grar')):.2f}%"
            )
        return table

    # -- Table IX -----------------------------------------------------------

    def table9(self) -> TableResult:
        """Fixed- vs movable-master RVL total area."""
        table = TableResult(
            "Table IX",
            "total area: fixed vs movable-master RVL",
            ["circuit"]
            + [f"{lvl}:{col}" for lvl, _ in LEVELS
               for col in ("fixed", "movable", "diff%")],
        )
        for name in self.circuit_names:
            row: List = [name]
            for _, c in LEVELS:
                fixed = self.outcome(name, "rvl", c).total_area
                movable = self.outcome(name, "rvl-movable", c).total_area
                row += [
                    round(fixed, 1),
                    round(movable, 1),
                    round(improvement(fixed, movable), 2),
                ]
            table.add_row(*row)
        for lvl, _ in LEVELS:
            table.add_note(
                f"{lvl} average diff: "
                f"{average(table.column(f'{lvl}:diff%')):.2f}%"
            )
        return table

    # -- Section VI-D flop-resilient comparison ---------------------------------

    def flop_comparison(self) -> TableResult:
        """Latch-based resilient vs flop-based resilient area."""
        table = TableResult(
            "VI-D",
            "latch-based (G-RAR) vs flop-based resilient area",
            ["circuit", "flop_design"]
            + [f"{lvl}:{col}" for lvl, _ in LEVELS
               for col in ("flop_res", "latch_res", "saving%")],
        )
        for name in self.circuit_names:
            try:
                with stage_scope("prepare", circuit=name):
                    netlist = self.netlist(name)
                    scheme = self.scheme(name)
                    report = original_flop_report(
                        netlist, scheme, self.library
                    )
            except ReproError:
                if not self.isolate:
                    raise
                table.add_row(
                    name, _NAN, *([_NAN] * (3 * len(LEVELS)))
                )
                continue
            row: List = [name, round(report.total_area, 1)]
            for _, c in LEVELS:
                flop_res = flop_resilient_area(report, self.library, c)
                latch_res = self.outcome(name, "grar", c).total_area
                row += [
                    round(flop_res, 1),
                    round(latch_res, 1),
                    round(improvement(flop_res, latch_res), 2),
                ]
            table.add_row(*row)
        for lvl, _ in LEVELS:
            table.add_note(
                f"{lvl} average saving vs flop-resilient: "
                f"{average(table.column(f'{lvl}:saving%')):.2f}%"
            )
        return table

    # -- everything -------------------------------------------------------------

    def all_tables(self) -> List[TableResult]:
        """Every table, computed in order."""
        return [
            self.table1(),
            self.table2(),
            self.table3(),
            self.table4(),
            self.table5(),
            self.table6(),
            self.table7(),
            self.table8(),
            self.table9(),
            self.flop_comparison(),
        ]
