"""Published values the reproduction compares against.

Only the *shapes* are expected to transfer — the substrate is a
synthetic library plus generated circuits, so absolute areas differ —
but the averages below anchor every comparison EXPERIMENTS.md makes.
All values are transcribed from the paper's tables.
"""

from __future__ import annotations

from typing import Dict

#: Table I — circuit info of the original flop-based designs.
#: name -> (P_ns, flops, NCE, area)
PAPER_TABLE1: Dict[str, tuple] = {
    "s1196": (0.4, 32, 6, 376.18),
    "s1238": (0.5, 32, 4, 334.89),
    "s1423": (0.6, 91, 54, 559.9),
    "s1488": (0.4, 14, 6, 264.38),
    "s5378": (0.5, 198, 55, 1149.42),
    "s9234": (0.5, 160, 61, 893.36),
    "s13207": (0.5, 502, 188, 2670.28),
    "s15850": (0.8, 524, 174, 2980.52),
    "s35932": (1.0, 1763, 288, 9681.35),
    "s38417": (1.0, 1494, 213, 8635.73),
    "s38584": (0.7, 1271, 632, 8100.11),
    "plasma": (2.1, 1652, 217, 10371.2),
}

#: Average improvements (%) the paper reports, keyed by
#: (table, metric, overhead-level).
PAPER_AVERAGES: Dict[str, Dict[str, float]] = {
    # Table II: path-based over gate-based G-RAR, total area.
    "table2_path_over_gate": {"low": 4.89, "medium": 5.69, "high": 7.59},
    # Table IV: sequential-area improvement over base retiming.
    "table4_grar_seq": {"low": 20.41, "medium": 23.87, "high": 29.62},
    "table4_rvl_seq": {"low": 8.71, "medium": 13.42, "high": 21.61},
    # Table V: total-area improvement over base retiming.
    "table5_grar_total": {"low": 6.96, "medium": 9.52, "high": 14.73},
    "table5_rvl_total": {"low": -0.29, "medium": 2.85, "high": 9.59},
    # Table VIII: average error rates (%).
    "table8_error_rate_base": {"low": 21.02, "medium": 21.02, "high": 21.02},
    "table8_error_rate_rvl": {"low": 1.96, "medium": 1.95, "high": 1.96},
    "table8_error_rate_grar": {"low": 14.84, "medium": 9.04, "high": 9.05},
    # Table IX: movable-master RVL over fixed-master RVL (avg diff %).
    "table9_movable_diff": {"low": -0.73, "medium": 0.01, "high": -0.28},
    # Section VI-D: latch-based resilient vs flop-based resilient.
    "flop_vs_latch": {"low": 12.4, "medium": 18.2, "high": 28.2},
}

#: Overhead levels used throughout (the paper's c values).
OVERHEAD_LEVELS: Dict[str, float] = {"low": 0.5, "medium": 1.0, "high": 2.0}
