"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


@dataclass
class TableResult:
    """A rendered experiment table plus its raw rows."""

    table_id: str
    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row of cell values."""
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Append a footnote line."""
        self.notes.append(note)

    def column(self, header: str) -> List[Any]:
        """All values under ``header``."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_for(self, key: Any) -> List[Any]:
        """The first row whose key column equals ``key``."""
        for row in self.rows:
            if row and row[0] == key:
                return row
        raise KeyError(f"no row keyed {key!r} in {self.table_id}")

    def render(self) -> str:
        """The table as aligned ASCII text."""
        return render_table(self)

    def to_csv(self) -> str:
        """The table as CSV (for plotting pipelines)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _format(value: Any) -> str:
    if isinstance(value, float):
        # NaN marks a circuit whose flow failed; the harness records
        # the failure and renders a partial table (never a bogus 0.0).
        if value != value:
            return "FAILED"
        return f"{value:.2f}"
    return str(value)


def render_table(table: TableResult) -> str:
    """Column-aligned ASCII rendering."""
    cells = [[_format(v) for v in row] for row in table.rows]
    widths = [len(h) for h in table.headers]
    for row in cells:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def line(values: Sequence[str]) -> str:
        parts = [
            value.rjust(widths[index]) if index else value.ljust(widths[index])
            for index, value in enumerate(values)
        ]
        return "  ".join(parts)

    out = [f"{table.table_id}: {table.title}"]
    out.append(line(table.headers))
    out.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in cells:
        out.append(line(row))
    for note in table.notes:
        out.append(f"  note: {note}")
    return "\n".join(out)
