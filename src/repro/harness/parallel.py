"""Parallel experiment engine: fan suite cells out over processes.

The paper's table sweep is embarrassingly parallel — every
(circuit, method, overhead) cell is an independent flow run — yet
:class:`~repro.harness.experiments.ExperimentSuite` computes cells
lazily, one at a time, as the tables pull on them.  This module adds
the production-scale path: :func:`run_suite_parallel` plans the cells
a table selection needs, fans the *canonical* ones out over a
:class:`concurrent.futures.ProcessPoolExecutor`, and merges the
results back into the suite's memo so the tables render from warm
cache.

Design points:

* **c-independent re-costing is respected** — methods in
  ``ExperimentSuite.C_INDEPENDENT`` run once at the canonical
  overhead ``c = 1.0``; the other overheads are derived in-process by
  re-costing, so derived cells never spawn a worker
  (:func:`plan_cells` emits canonical cells only).
* **bit-identical results** — each worker rebuilds nothing: it
  receives the parent's exact :class:`~repro.netlist.netlist.Netlist`
  copy, clock scheme, and library, and runs the same deterministic
  ``run_flow`` / ``estimate_error_rate`` code the sequential path
  runs.  A parity test pins this down.
* **cells that need error rates simulate in the worker** — Table VIII
  methods carry the simulation along, so a resumed
  :class:`~repro.harness.experiments.FlowRecord` never forces a
  sequential re-run.
* **batched checkpoints** — merging bumps the suite's memo through
  :meth:`ExperimentSuite.record_outcome` (throttled writes) and
  flushes once at the end, instead of a full JSON rewrite per cell.
* **metrics ride along** — every worker collects per-stage wall-clock
  / peak-RSS counters (:mod:`repro.metrics`) and the parent merges
  them into the ambient collector, so ``--bench-out`` sees the whole
  fleet.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import errors as errors_mod
from repro import metrics
from repro.cells.library import Library
from repro.clocks import ClockScheme
from repro.errors import ReproError, stage_scope
from repro.flows import run_flow
from repro.harness.experiments import (
    ExperimentSuite,
    FailedOutcome,
    FlowRecord,
    LEVELS,
)
from repro.netlist.netlist import Netlist
from repro.sim import estimate_error_rate

#: Methods whose cells the full table set (I-IX + VI-D) reads.
TABLE_METHODS: Tuple[str, ...] = (
    "base",
    "evl",
    "nvl",
    "rvl",
    "rvl-movable",
    "grar",
    "grar-gate",
)

#: Methods Table VIII simulates error rates for.
ERROR_RATE_METHODS = frozenset({"base", "rvl", "grar"})

#: Flow methods each table pulls on (table ids as the CLI spells them).
TABLE_METHOD_NEEDS: Dict[str, Tuple[str, ...]] = {
    "table i": (),
    "table ii": ("grar-gate", "grar"),
    "table iii": ("nvl", "evl", "rvl"),
    "table iv": ("base", "rvl", "grar"),
    "table v": ("base", "rvl", "grar"),
    "table vi": ("base", "rvl", "grar"),
    "table vii": ("base", "rvl", "grar"),
    "table viii": ("base", "rvl", "grar"),
    "table ix": ("rvl", "rvl-movable"),
    "vi-d": ("grar",),
}

#: Tables that additionally need simulated error rates.
ERROR_RATE_TABLES = frozenset({"table viii"})


def methods_for_tables(
    wanted: Optional[Iterable[str]],
) -> Tuple[Tuple[str, ...], bool]:
    """(methods, need_error_rates) for a table selection (None = all)."""
    if not wanted:
        return TABLE_METHODS, True
    methods: List[str] = []
    need_rates = False
    for table_id in wanted:
        table_id = table_id.lower()
        for method in TABLE_METHOD_NEEDS.get(table_id, ()):
            if method not in methods:
                methods.append(method)
        if table_id in ERROR_RATE_TABLES:
            need_rates = True
    return tuple(methods), need_rates


@dataclass(frozen=True)
class CellTask:
    """One canonical (circuit, method, overhead) unit of work.

    Ships the parent's exact inputs so the worker reproduces the
    sequential run bit for bit.
    """

    circuit: str
    method: str
    overhead: float
    netlist: Netlist
    scheme: ClockScheme
    library: Library
    guard: Optional[str]
    solver_policy: Any
    error_rate: bool
    cycles: int
    seed: int
    sim_backend: str = "compiled"
    sta_mode: str = "incremental"
    retime_cache: bool = True
    #: sweep points this task covers (empty = just ``overhead``).
    #: G-RAR tasks ship one sweep per circuit so the worker's compiled
    #: problem and warm basis are reused across overheads.
    overheads: Tuple[float, ...] = ()
    #: subset of ``overheads`` that still owes a simulated error rate.
    rate_overheads: Tuple[float, ...] = ()

    @property
    def key(self) -> Tuple[str, str, float]:
        return (self.circuit, self.method, self.overhead)

    @property
    def sweep(self) -> Tuple[float, ...]:
        """The overheads this task actually runs."""
        return self.overheads or (self.overhead,)


@dataclass
class CellResult:
    """What a worker sends back: a record or a structured failure."""

    circuit: str
    method: str
    overhead: float
    record: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    error_type: Optional[str] = None
    error_rate: Optional[float] = None
    wall_s: float = 0.0
    metrics: Optional[Dict[str, Any]] = None
    #: which simulation backend produced the error rate (when one ran).
    sim_backend: Optional[str] = None
    #: simulation throughput of this cell's Table VIII run.
    sim_cycles_per_sec: float = 0.0

    @property
    def key(self) -> Tuple[str, str, float]:
        return (self.circuit, self.method, self.overhead)

    @property
    def failed(self) -> bool:
        return self.record is None


def plan_cells(
    suite: ExperimentSuite,
    methods: Sequence[str] = TABLE_METHODS,
    error_rates: bool = True,
) -> List[CellTask]:
    """The canonical cells the suite still needs, ready to ship.

    c-independent methods contribute only their ``c = 1.0`` canonical
    cell (derived overheads re-cost in-process); cells already memoized
    — including from a resumed memo — are skipped unless they still
    owe an error rate.
    """
    tasks: List[CellTask] = []
    for name in suite.circuit_names:
        try:
            # Same prepare scope as ExperimentSuite._run: a broken
            # netlist surfaces as a typed error (strict) or FAILED
            # cells (isolate), never a bare KeyError during planning.
            with stage_scope("prepare", circuit=name):
                netlist = suite.netlist(name)
                scheme = suite.scheme(name)
        except ReproError as exc:
            if not suite.isolate:
                raise
            exc.annotate(circuit=name)
            for method in methods:
                levels = (
                    (1.0,)
                    if method in suite.C_INDEPENDENT
                    else tuple(c for _, c in LEVELS)
                )
                for overhead in levels:
                    key = (name, method, overhead)
                    if key in suite._outcomes and not isinstance(
                        suite._outcomes[key], FailedOutcome
                    ):
                        continue
                    suite.record_outcome(
                        key,
                        FailedOutcome(
                            method=method,
                            circuit_name=name,
                            overhead=overhead,
                            stage=exc.stage,
                            error=exc.to_dict(),
                        ),
                    )
            continue
        for method in methods:
            if method in suite.C_INDEPENDENT:
                levels: Tuple[float, ...] = (1.0,)
            else:
                levels = tuple(c for _, c in LEVELS)
            pending: List[float] = []
            pending_rates: List[float] = []
            for overhead in levels:
                key = (name, method, overhead)
                have_outcome = key in suite._outcomes and not isinstance(
                    suite._outcomes[key], FailedOutcome
                )
                need_rate = (
                    error_rates
                    and method in ERROR_RATE_METHODS
                    and key not in suite._error_rates
                )
                if have_outcome and not need_rate:
                    continue
                pending.append(overhead)
                if need_rate:
                    pending_rates.append(overhead)
            if not pending:
                continue
            group = (
                method in ExperimentSuite.GRAR_METHODS
                and suite.retime_cache
            )
            if group:
                # One task per circuit covering the whole overhead
                # sweep: the worker compiles the problem once and
                # warm-starts each subsequent solve.
                batches = [tuple(pending)]
            else:
                batches = [(overhead,) for overhead in pending]
            for batch in batches:
                tasks.append(
                    CellTask(
                        circuit=name,
                        method=method,
                        overhead=batch[0],
                        netlist=netlist,
                        scheme=scheme,
                        library=suite.library,
                        guard=suite.guard,
                        solver_policy=suite.solver_policy,
                        error_rate=batch[0] in pending_rates,
                        cycles=suite.error_rate_cycles,
                        seed=suite.sim_seed,
                        sim_backend=suite.sim_backend,
                        sta_mode=suite.sta_mode,
                        retime_cache=suite.retime_cache,
                        overheads=batch,
                        rate_overheads=tuple(
                            c for c in batch if c in pending_rates
                        ),
                    )
                )
    return tasks


def run_cell(task: CellTask) -> List[CellResult]:
    """Execute one task's overhead sweep; the worker entry point.

    Single-overhead tasks return one result; grouped G-RAR tasks run
    the circuit's whole sweep in-process, so the compiled retiming
    problem and warm basis carry from point to point.
    """
    return [_run_point(task, overhead) for overhead in task.sweep]


def _run_point(task: CellTask, overhead: float) -> CellResult:
    """One (circuit, method, overhead) cell of a task (also inline).

    Mirrors ``ExperimentSuite._run`` plus the Table VIII simulation:
    failures come back as structured :class:`ReproError` dictionaries
    so the parent can either isolate them (``FailedOutcome``) or
    re-raise the typed error.
    """
    if task.overheads:
        need_rate = overhead in task.rate_overheads
    else:
        need_rate = task.error_rate
    collector = metrics.MetricsCollector()
    started = time.perf_counter()
    result = CellResult(
        circuit=task.circuit, method=task.method, overhead=overhead
    )
    with metrics.collect_into(collector):
        try:
            outcome = run_flow(
                task.method,
                task.netlist,
                task.library,
                overhead,
                scheme=task.scheme,
                guard=task.guard,
                solver_policy=task.solver_policy,
                sta_mode=task.sta_mode,
                retime_cache=task.retime_cache,
            )
        except ReproError as exc:
            exc.annotate(circuit=task.circuit)
            result.error = exc.to_dict()
            result.error_type = type(exc).__name__
        else:
            result.record = dict(FlowRecord.from_outcome(outcome).__dict__)
            if need_rate:
                try:
                    with stage_scope("simulate", circuit=task.circuit):
                        report = estimate_error_rate(
                            outcome.circuit,
                            outcome.retiming.placement,
                            outcome.edl_endpoints,
                            cycles=task.cycles,
                            seed=task.seed,
                            backend=task.sim_backend,
                        )
                except ReproError as exc:
                    exc.annotate(circuit=task.circuit)
                    result.error = exc.to_dict()
                    result.error_type = type(exc).__name__
                    result.error_rate = float("nan")
                    result.sim_backend = task.sim_backend
                else:
                    result.error_rate = report.error_rate
                    result.sim_backend = report.backend
                    result.sim_cycles_per_sec = report.cycles_per_sec
    result.wall_s = time.perf_counter() - started
    result.metrics = collector.to_dict()
    return result


def _rebuild_error(result: CellResult) -> ReproError:
    """Reconstruct the worker's typed error on the parent side."""
    payload = result.error or {}
    cls = getattr(errors_mod, result.error_type or "", None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = errors_mod.FlowStageError
    exc = cls(str(payload.get("message", "parallel worker failure")))
    exc.stage = payload.get("stage")
    exc.circuit = payload.get("circuit") or result.circuit
    exc.payload = dict(payload.get("payload") or {})
    return exc


def _merge_result(suite: ExperimentSuite, result: CellResult) -> None:
    """Fold one worker result into the suite exactly like a local run."""
    if result.failed:
        error = result.error or {}
        suite.record_outcome(
            result.key,
            FailedOutcome(
                method=result.method,
                circuit_name=result.circuit,
                overhead=result.overhead,
                stage=error.get("stage"),
                error=error,
            ),
        )
        return
    suite.record_outcome(result.key, FlowRecord(**result.record))
    if result.error_rate is not None:
        suite.record_error_rate(result.key, result.error_rate)
        if result.error is not None:
            # Flow succeeded but the simulation failed: mirror the
            # sequential path, which records the failure and NaN.
            suite.failures.append(
                FailedOutcome(
                    method=result.method,
                    circuit_name=result.circuit,
                    overhead=result.overhead,
                    stage=(result.error or {}).get("stage"),
                    error=result.error or {},
                )
            )


def run_suite_parallel(
    suite: ExperimentSuite,
    jobs: int,
    methods: Optional[Sequence[str]] = None,
    error_rates: bool = True,
    checkpoint_every: Optional[int] = None,
) -> Dict[str, Any]:
    """Prewarm the suite's memo with ``jobs`` worker processes.

    Returns a bench summary (cells, wall clock, per-cell timings,
    merged worker metrics); the suite afterwards renders every table
    from the warm memo.  With ``jobs <= 1`` the cells run inline
    through the same code path, which is what the parity test
    exploits.

    Failures honour ``suite.isolate``: isolated suites record
    ``FailedOutcome`` cells, strict suites re-raise the first worker
    error as its original :class:`ReproError` type.
    """
    if checkpoint_every is None:
        checkpoint_every = max(suite.checkpoint_every, 8)
    suite.checkpoint_every = max(1, int(checkpoint_every))

    tasks = plan_cells(
        suite, methods=tuple(methods or TABLE_METHODS),
        error_rates=error_rates,
    )
    started = time.perf_counter()
    results: List[CellResult] = []
    if jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            results.extend(run_cell(task))
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            pending = {pool.submit(run_cell, task) for task in tasks}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    results.extend(future.result())
    # Merge in a deterministic order so memo files and failure lists
    # do not depend on completion timing.
    results.sort(key=lambda r: (r.circuit, r.method, r.overhead))
    first_failure: Optional[CellResult] = None
    ambient = metrics.current()
    for result in results:
        if result.metrics and ambient is not None:
            ambient.merge_dict(result.metrics)
        if result.failed and not suite.isolate:
            if first_failure is None:
                first_failure = result
            continue
        _merge_result(suite, result)
    suite.checkpoint(force=True)
    wall_s = time.perf_counter() - started
    if first_failure is not None:
        raise _rebuild_error(first_failure)

    busy_s = sum(r.wall_s for r in results)
    sim_rates = [
        r.sim_cycles_per_sec for r in results if r.sim_cycles_per_sec > 0
    ]
    summary: Dict[str, Any] = {
        "jobs": jobs,
        "sim_backend": suite.sim_backend,
        "sim_cells": len(sim_rates),
        "sim_cycles_per_sec": round(
            sum(sim_rates) / len(sim_rates), 2
        ) if sim_rates else 0.0,
        "n_cells": len(results),
        "n_failed": sum(1 for r in results if r.failed),
        "wall_s": round(wall_s, 6),
        "cells_wall_s": round(busy_s, 6),
        "parallel_efficiency": round(
            busy_s / (wall_s * jobs), 4
        ) if wall_s > 0 and jobs > 0 else 0.0,
        "cells": [
            {
                "circuit": r.circuit,
                "method": r.method,
                "overhead": r.overhead,
                "wall_s": round(r.wall_s, 6),
                "failed": r.failed,
                "solver_backend": (
                    (r.record or {}).get("solver_backend", "")
                ),
                "sim_backend": r.sim_backend,
                "sim_cycles_per_sec": round(r.sim_cycles_per_sec, 2),
            }
            for r in results
        ],
    }
    metrics.count("parallel.cells", len(results))
    metrics.count("parallel.wall_s", wall_s)
    return summary
