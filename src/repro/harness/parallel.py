"""Parallel experiment engine: fan suite cells out over processes.

The paper's table sweep is embarrassingly parallel — every
(circuit, method, overhead) cell is an independent flow run — yet
:class:`~repro.harness.experiments.ExperimentSuite` computes cells
lazily, one at a time, as the tables pull on them.  This module adds
the production-scale path: :func:`run_suite_parallel` plans the cells
a table selection needs, fans the *canonical* ones out over a
:class:`concurrent.futures.ProcessPoolExecutor`, and merges the
results back into the suite's memo so the tables render from warm
cache.

Design points:

* **c-independent re-costing is respected** — methods in
  ``ExperimentSuite.C_INDEPENDENT`` run once at the canonical
  overhead ``c = 1.0``; the other overheads are derived in-process by
  re-costing, so derived cells never spawn a worker
  (:func:`plan_cells` emits canonical cells only).
* **bit-identical results** — each worker rebuilds nothing: it
  receives the parent's exact :class:`~repro.netlist.netlist.Netlist`
  copy, clock scheme, and library, and runs the same deterministic
  ``run_flow`` / ``estimate_error_rate`` code the sequential path
  runs.  A parity test pins this down.
* **cells that need error rates simulate in the worker** — Table VIII
  methods carry the simulation along, so a resumed
  :class:`~repro.harness.experiments.FlowRecord` never forces a
  sequential re-run.
* **batched checkpoints** — merging bumps the suite's memo through
  :meth:`ExperimentSuite.record_outcome` (throttled writes) and
  flushes once at the end, instead of a full JSON rewrite per cell.
* **metrics ride along** — every worker collects per-stage wall-clock
  / peak-RSS counters (:mod:`repro.metrics`) and the parent merges
  them into the ambient collector, so ``--bench-out`` sees the whole
  fleet.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import errors as errors_mod
from repro import metrics
from repro.cells.library import Library
from repro.clocks import ClockScheme
from repro.errors import DeadlineError, ReproError, stage_scope
from repro.flows import run_flow
from repro.harness.experiments import (
    ExperimentSuite,
    FailedOutcome,
    FlowRecord,
    LEVELS,
)
from repro.netlist.netlist import Netlist
from repro.sim import estimate_error_rate_batched
from repro.store import open_store, use_store

#: Methods whose cells the full table set (I-IX + VI-D) reads.
TABLE_METHODS: Tuple[str, ...] = (
    "base",
    "evl",
    "nvl",
    "rvl",
    "rvl-movable",
    "grar",
    "grar-gate",
)

#: Methods Table VIII simulates error rates for.
ERROR_RATE_METHODS = frozenset({"base", "rvl", "grar"})

#: Flow methods each table pulls on (table ids as the CLI spells them).
TABLE_METHOD_NEEDS: Dict[str, Tuple[str, ...]] = {
    "table i": (),
    "table ii": ("grar-gate", "grar"),
    "table iii": ("nvl", "evl", "rvl"),
    "table iv": ("base", "rvl", "grar"),
    "table v": ("base", "rvl", "grar"),
    "table vi": ("base", "rvl", "grar"),
    "table vii": ("base", "rvl", "grar"),
    "table viii": ("base", "rvl", "grar"),
    "table ix": ("rvl", "rvl-movable"),
    "vi-d": ("grar",),
}

#: Tables that additionally need simulated error rates.
ERROR_RATE_TABLES = frozenset({"table viii"})


def methods_for_tables(
    wanted: Optional[Iterable[str]],
) -> Tuple[Tuple[str, ...], bool]:
    """(methods, need_error_rates) for a table selection (None = all)."""
    if not wanted:
        return TABLE_METHODS, True
    methods: List[str] = []
    need_rates = False
    for table_id in wanted:
        table_id = table_id.lower()
        for method in TABLE_METHOD_NEEDS.get(table_id, ()):
            if method not in methods:
                methods.append(method)
        if table_id in ERROR_RATE_TABLES:
            need_rates = True
    return tuple(methods), need_rates


@dataclass(frozen=True)
class CellTask:
    """One canonical (circuit, method, overhead) unit of work.

    Ships the parent's exact inputs so the worker reproduces the
    sequential run bit for bit.
    """

    circuit: str
    method: str
    overhead: float
    netlist: Netlist
    scheme: ClockScheme
    library: Library
    guard: Optional[str]
    solver_policy: Any
    error_rate: bool
    cycles: int
    seed: int
    #: Monte-Carlo seed sweep for the Table VIII simulation — every
    #: seed runs through one shared compile
    #: (:func:`~repro.sim.batch.estimate_error_rate_batched`) and the
    #: cell reports the mean error rate.  Empty = ``(seed,)``.
    seeds: Tuple[int, ...] = ()
    sim_backend: str = "compiled"
    sta_mode: str = "incremental"
    sta_engine: str = "object"
    retime_cache: bool = True
    #: persistent artifact-store directory the worker opens and runs
    #: under — compiled problems and arenas are shared through it
    #: across the whole worker fleet (and later invocations).
    store_dir: Optional[str] = None
    #: sweep points this task covers (empty = just ``overhead``).
    #: G-RAR tasks ship one sweep per circuit so the worker's compiled
    #: problem and warm basis are reused across overheads.
    overheads: Tuple[float, ...] = ()
    #: subset of ``overheads`` that still owes a simulated error rate.
    rate_overheads: Tuple[float, ...] = ()

    @property
    def key(self) -> Tuple[str, str, float]:
        return (self.circuit, self.method, self.overhead)

    @property
    def sweep(self) -> Tuple[float, ...]:
        """The overheads this task actually runs."""
        return self.overheads or (self.overhead,)


@dataclass
class CellResult:
    """What a worker sends back: a record or a structured failure."""

    circuit: str
    method: str
    overhead: float
    record: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    error_type: Optional[str] = None
    error_rate: Optional[float] = None
    wall_s: float = 0.0
    metrics: Optional[Dict[str, Any]] = None
    #: which simulation backend produced the error rate (when one ran).
    sim_backend: Optional[str] = None
    #: simulation throughput of this cell's Table VIII run (``None``
    #: when no simulation ran or the wall clock read zero).
    sim_cycles_per_sec: Optional[float] = None

    @property
    def key(self) -> Tuple[str, str, float]:
        return (self.circuit, self.method, self.overhead)

    @property
    def failed(self) -> bool:
        return self.record is None


def plan_cells(
    suite: ExperimentSuite,
    methods: Sequence[str] = TABLE_METHODS,
    error_rates: bool = True,
) -> List[CellTask]:
    """The canonical cells the suite still needs, ready to ship.

    c-independent methods contribute only their ``c = 1.0`` canonical
    cell (derived overheads re-cost in-process); cells already memoized
    — including from a resumed memo — are skipped unless they still
    owe an error rate.
    """
    tasks: List[CellTask] = []
    store_dir = (
        str(suite.store.root)
        if suite.store is not None and suite.store.persistent
        else None
    )
    for name in suite.circuit_names:
        try:
            # Same prepare scope as ExperimentSuite._run: a broken
            # netlist surfaces as a typed error (strict) or FAILED
            # cells (isolate), never a bare KeyError during planning.
            with stage_scope("prepare", circuit=name):
                netlist = suite.netlist(name)
                scheme = suite.scheme(name)
        except ReproError as exc:
            if not suite.isolate:
                raise
            exc.annotate(circuit=name)
            for method in methods:
                levels = (
                    (1.0,)
                    if method in suite.C_INDEPENDENT
                    else tuple(c for _, c in LEVELS)
                )
                for overhead in levels:
                    key = (name, method, overhead)
                    if key in suite._outcomes and not isinstance(
                        suite._outcomes[key], FailedOutcome
                    ):
                        continue
                    suite.record_outcome(
                        key,
                        FailedOutcome(
                            method=method,
                            circuit_name=name,
                            overhead=overhead,
                            stage=exc.stage,
                            error=exc.to_dict(),
                        ),
                    )
            continue
        for method in methods:
            if method in suite.C_INDEPENDENT:
                levels: Tuple[float, ...] = (1.0,)
            else:
                levels = tuple(c for _, c in LEVELS)
            pending: List[float] = []
            pending_rates: List[float] = []
            for overhead in levels:
                key = (name, method, overhead)
                have_outcome = key in suite._outcomes and not isinstance(
                    suite._outcomes[key], FailedOutcome
                )
                need_rate = (
                    error_rates
                    and method in ERROR_RATE_METHODS
                    and key not in suite._error_rates
                )
                if have_outcome and not need_rate:
                    continue
                pending.append(overhead)
                if need_rate:
                    pending_rates.append(overhead)
            if not pending:
                continue
            group = (
                method in ExperimentSuite.GRAR_METHODS
                and suite.retime_cache
            )
            if group:
                # One task per circuit covering the whole overhead
                # sweep: the worker compiles the problem once and
                # warm-starts each subsequent solve.
                batches = [tuple(pending)]
            else:
                batches = [(overhead,) for overhead in pending]
            for batch in batches:
                tasks.append(
                    CellTask(
                        circuit=name,
                        method=method,
                        overhead=batch[0],
                        netlist=netlist,
                        scheme=scheme,
                        library=suite.library,
                        guard=suite.guard,
                        solver_policy=suite.solver_policy,
                        error_rate=batch[0] in pending_rates,
                        cycles=suite.error_rate_cycles,
                        seed=suite.sim_seed,
                        seeds=suite.sim_seeds,
                        sim_backend=suite.sim_backend,
                        sta_mode=suite.sta_mode,
                        sta_engine=suite.sta_engine,
                        retime_cache=suite.retime_cache,
                        store_dir=store_dir,
                        overheads=batch,
                        rate_overheads=tuple(
                            c for c in batch if c in pending_rates
                        ),
                    )
                )
    return tasks


def run_cell(task: CellTask) -> List[CellResult]:
    """Execute one task's overhead sweep; the worker entry point.

    Single-overhead tasks return one result; grouped G-RAR tasks run
    the circuit's whole sweep in-process, so the compiled retiming
    problem and warm basis carry from point to point.  A task with a
    ``store_dir`` opens the shared artifact store *once* for its whole
    sweep (per-point opens would discard the memory tier between
    points) and runs under it.
    """
    if task.store_dir:
        with use_store(open_store(task.store_dir)):
            return [_run_point(task, overhead) for overhead in task.sweep]
    return [_run_point(task, overhead) for overhead in task.sweep]


def _run_point(task: CellTask, overhead: float) -> CellResult:
    """One (circuit, method, overhead) cell of a task (also inline).

    Mirrors ``ExperimentSuite._run`` plus the Table VIII simulation:
    failures come back as structured :class:`ReproError` dictionaries
    so the parent can either isolate them (``FailedOutcome``) or
    re-raise the typed error.
    """
    if task.overheads:
        need_rate = overhead in task.rate_overheads
    else:
        need_rate = task.error_rate
    collector = metrics.MetricsCollector()
    started = time.perf_counter()
    result = CellResult(
        circuit=task.circuit, method=task.method, overhead=overhead
    )
    with metrics.collect_into(collector):
        try:
            outcome = run_flow(
                task.method,
                task.netlist,
                task.library,
                overhead,
                scheme=task.scheme,
                guard=task.guard,
                solver_policy=task.solver_policy,
                sta_mode=task.sta_mode,
                sta_engine=task.sta_engine,
                retime_cache=task.retime_cache,
            )
        except ReproError as exc:
            exc.annotate(circuit=task.circuit)
            result.error = exc.to_dict()
            result.error_type = type(exc).__name__
        else:
            result.record = dict(FlowRecord.from_outcome(outcome).__dict__)
            if need_rate:
                try:
                    with stage_scope("simulate", circuit=task.circuit):
                        # One compile serves the whole seed sweep;
                        # single-seed reports are byte-identical to
                        # the sequential per-seed call.
                        reports = estimate_error_rate_batched(
                            outcome.circuit,
                            outcome.retiming.placement,
                            outcome.edl_endpoints,
                            cycles=task.cycles,
                            seeds=task.seeds or (task.seed,),
                            backend=task.sim_backend,
                        )
                except ReproError as exc:
                    exc.annotate(circuit=task.circuit)
                    result.error = exc.to_dict()
                    result.error_type = type(exc).__name__
                    result.error_rate = float("nan")
                    result.sim_backend = task.sim_backend
                else:
                    result.error_rate = sum(
                        r.error_rate for r in reports
                    ) / len(reports)
                    result.sim_backend = reports[0].backend
                    result.sim_cycles_per_sec = reports[0].cycles_per_sec
    result.wall_s = time.perf_counter() - started
    result.metrics = collector.to_dict()
    return result


def _rebuild_error(result: CellResult) -> ReproError:
    """Reconstruct the worker's typed error on the parent side."""
    payload = result.error or {}
    cls = getattr(errors_mod, result.error_type or "", None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = errors_mod.FlowStageError
    exc = cls(str(payload.get("message", "parallel worker failure")))
    exc.stage = payload.get("stage")
    exc.circuit = payload.get("circuit") or result.circuit
    exc.payload = dict(payload.get("payload") or {})
    return exc


def _merge_result(suite: ExperimentSuite, result: CellResult) -> None:
    """Fold one worker result into the suite exactly like a local run."""
    if result.failed:
        error = result.error or {}
        suite.record_outcome(
            result.key,
            FailedOutcome(
                method=result.method,
                circuit_name=result.circuit,
                overhead=result.overhead,
                stage=error.get("stage"),
                error=error,
            ),
        )
        return
    suite.record_outcome(result.key, FlowRecord(**result.record))
    if result.error_rate is not None:
        suite.record_error_rate(result.key, result.error_rate)
        if result.error is not None:
            # Flow succeeded but the simulation failed: mirror the
            # sequential path, which records the failure and NaN.
            suite.failures.append(
                FailedOutcome(
                    method=result.method,
                    circuit_name=result.circuit,
                    overhead=result.overhead,
                    stage=(result.error or {}).get("stage"),
                    error=result.error or {},
                )
            )


# -- deadline-enforcing task runner ------------------------------------------

#: Failure kinds worth a second attempt: a killed-at-deadline or dead
#: worker may have been a transient resource blip; a worker that
#: *reported* an exception is deterministic and retrying cannot help.
RETRYABLE_KINDS = frozenset({"deadline", "worker-death"})


@dataclass
class TaskFailure:
    """Typed outcome of a task that could not produce a result."""

    #: ``"deadline"`` (killed at the per-task deadline),
    #: ``"worker-death"`` (process died without reporting), or
    #: ``"crash"`` (the worker reported an exception).
    kind: str
    message: str
    attempts: int
    wall_s: float = 0.0
    #: structured ``ReproError`` dict when the worker reported one.
    error: Optional[Dict[str, Any]] = None
    error_type: Optional[str] = None
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_error(self) -> ReproError:
        """The failure as a raisable typed error."""
        cls = DeadlineError if self.kind == "deadline" else (
            getattr(errors_mod, self.error_type or "", None)
            or errors_mod.FlowStageError
        )
        if not (isinstance(cls, type) and issubclass(cls, ReproError)):
            cls = errors_mod.FlowStageError
        exc = cls(self.message)
        exc.stage = (self.error or {}).get("stage") or "parallel"
        exc.circuit = (self.error or {}).get("circuit")
        exc.payload = dict((self.error or {}).get("payload") or {})
        exc.payload.update(self.payload)
        exc.payload["failure_kind"] = self.kind
        exc.payload["attempts"] = self.attempts
        return exc


def _deadline_entry(conn, worker, task) -> None:
    """Child-process entry: run the task, report over the pipe."""
    try:
        result = worker(task)
    except (KeyboardInterrupt, SystemExit):
        raise
    except ReproError as exc:
        conn.send(
            (
                "crash",
                {
                    "message": str(exc),
                    "error": exc.to_dict(),
                    "type": type(exc).__name__,
                },
            )
        )
    except BaseException as exc:  # noqa: BLE001 - crosses a process
        conn.send(
            (
                "crash",
                {
                    "message": f"{type(exc).__name__}: {exc}",
                    "error": None,
                    "type": type(exc).__name__,
                },
            )
        )
    else:
        conn.send(("ok", result))
    finally:
        conn.close()


def run_tasks_with_deadline(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: int = 1,
    deadline_s: Optional[float] = None,
    backoff_s: float = 0.25,
    retry_kinds: frozenset = RETRYABLE_KINDS,
    max_attempts: int = 2,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> List[Union[Any, TaskFailure]]:
    """Run ``worker(task)`` per task in killable worker processes.

    The executor-based path cannot enforce per-task deadlines — a
    :class:`~concurrent.futures.ProcessPoolExecutor` has no way to
    kill one hung worker without tearing down the pool — so this
    runner owns its processes: one :class:`multiprocessing.Process`
    plus pipe per attempt, at most ``jobs`` live at a time.  A task
    that exceeds ``deadline_s`` is terminated and recorded as
    ``TaskFailure(kind="deadline")``; a worker that dies without
    reporting (OOM kill, segfault) as ``kind="worker-death"``.  Kinds
    in ``retry_kinds`` are retried after a ``backoff_s`` pause (scaled
    by the attempt number) up to ``max_attempts`` total attempts;
    reported exceptions (``kind="crash"``) are deterministic and fail
    immediately.

    Returns one entry per task, in task order: the worker's return
    value or a :class:`TaskFailure`.  The caller decides whether a
    failure degrades gracefully (a FAILED report entry) or raises
    (:meth:`TaskFailure.to_error`).

    ``on_result`` is invoked as ``on_result(task_index, outcome)`` the
    moment each task settles (result or final failure, not interim
    retries) — the hook resumable sweeps use to checkpoint their memo
    while later tasks are still running.
    """
    if deadline_s is not None and deadline_s <= 0:
        raise ValueError("deadline_s must be positive")
    jobs = max(1, int(jobs))
    results: List[Union[Any, TaskFailure]] = [None] * len(tasks)
    queue = deque((index, 1) for index in range(len(tasks)))
    #: retries waiting out their backoff: (not_before, index, attempt).
    delayed: List[Tuple[float, int, int]] = []
    #: conn -> (task index, attempt, process, start time).
    live: Dict[Any, Tuple[int, int, Any, float]] = {}

    def settle(index: int, attempt: int, failure: TaskFailure) -> None:
        if failure.kind in retry_kinds and attempt < max_attempts:
            metrics.count("parallel.deadline.retries")
            delayed.append(
                (time.monotonic() + backoff_s * attempt, index, attempt + 1)
            )
        else:
            results[index] = failure
            if on_result is not None:
                on_result(index, failure)

    while queue or delayed or live:
        now = time.monotonic()
        still_delayed: List[Tuple[float, int, int]] = []
        for not_before, index, attempt in delayed:
            if now >= not_before:
                queue.append((index, attempt))
            else:
                still_delayed.append((not_before, index, attempt))
        delayed = still_delayed

        while queue and len(live) < jobs:
            index, attempt = queue.popleft()
            parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
            process = multiprocessing.Process(
                target=_deadline_entry,
                args=(child_conn, worker, tasks[index]),
                daemon=True,
            )
            process.start()
            child_conn.close()
            live[parent_conn] = (index, attempt, process, time.monotonic())

        if not live:
            if delayed:
                pause = min(nb for nb, _, _ in delayed) - time.monotonic()
                if pause > 0:
                    time.sleep(pause)
            continue

        now = time.monotonic()
        bounds: List[float] = [nb - now for nb, _, _ in delayed]
        if deadline_s is not None:
            bounds.extend(
                started + deadline_s - now
                for (_, _, _, started) in live.values()
            )
        timeout = max(0.0, min(bounds)) if bounds else None
        ready = connection_wait(list(live), timeout=timeout)

        for conn in ready:
            index, attempt, process, started = live.pop(conn)
            wall_s = time.monotonic() - started
            try:
                tag, body = conn.recv()
            except EOFError:
                process.join()
                settle(
                    index,
                    attempt,
                    TaskFailure(
                        kind="worker-death",
                        message=(
                            f"worker died without reporting a result "
                            f"(exit code {process.exitcode})"
                        ),
                        attempts=attempt,
                        wall_s=wall_s,
                        payload={"exitcode": process.exitcode},
                    ),
                )
            else:
                process.join()
                if tag == "ok":
                    results[index] = body
                    if on_result is not None:
                        on_result(index, body)
                else:
                    settle(
                        index,
                        attempt,
                        TaskFailure(
                            kind="crash",
                            message=body["message"],
                            attempts=attempt,
                            wall_s=wall_s,
                            error=body.get("error"),
                            error_type=body.get("type"),
                        ),
                    )
            finally:
                conn.close()

        if deadline_s is not None:
            ready_set = set(ready)
            now = time.monotonic()
            for conn in [
                c
                for c, (_, _, _, started) in live.items()
                if c not in ready_set and now - started > deadline_s
            ]:
                index, attempt, process, started = live.pop(conn)
                process.terminate()
                process.join(5.0)
                if process.is_alive():  # pragma: no cover - stuck kill
                    process.kill()
                    process.join()
                conn.close()
                metrics.count("parallel.deadline.kills")
                settle(
                    index,
                    attempt,
                    TaskFailure(
                        kind="deadline",
                        message=(
                            f"task exceeded its {deadline_s:g}s deadline "
                            f"and was killed (attempt {attempt})"
                        ),
                        attempts=attempt,
                        wall_s=time.monotonic() - started,
                        payload={"deadline_s": deadline_s},
                    ),
                )
    return results


def _failure_results(
    task: CellTask, failure: TaskFailure
) -> List[CellResult]:
    """One FAILED :class:`CellResult` per sweep point of a dead task."""
    error = dict(failure.error or {})
    error.setdefault("message", failure.message)
    error.setdefault("stage", "parallel")
    payload = dict(error.get("payload") or {})
    payload.update(failure.payload)
    payload["failure_kind"] = failure.kind
    payload["attempts"] = failure.attempts
    error["payload"] = payload
    if failure.kind == "deadline":
        error_type = "DeadlineError"
    else:
        error_type = failure.error_type or "FlowStageError"
    error.setdefault("type", error_type)
    return [
        CellResult(
            circuit=task.circuit,
            method=task.method,
            overhead=overhead,
            error=error,
            error_type=error_type,
            wall_s=failure.wall_s if position == 0 else 0.0,
        )
        for position, overhead in enumerate(task.sweep)
    ]


def run_suite_parallel(
    suite: ExperimentSuite,
    jobs: int,
    methods: Optional[Sequence[str]] = None,
    error_rates: bool = True,
    checkpoint_every: Optional[int] = None,
    deadline_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Prewarm the suite's memo with ``jobs`` worker processes.

    Returns a bench summary (cells, wall clock, per-cell timings,
    merged worker metrics); the suite afterwards renders every table
    from the warm memo.  With ``jobs <= 1`` the cells run inline
    through the same code path, which is what the parity test
    exploits.

    ``deadline_s`` enforces a per-task wall-clock deadline through
    :func:`run_tasks_with_deadline` (even at ``jobs=1``, since only a
    separate process can be killed): a hung cell is terminated,
    retried once, and on the second miss recorded as a
    ``FailedOutcome`` whose error is a :class:`DeadlineError` dict.

    Failures honour ``suite.isolate``: isolated suites record
    ``FailedOutcome`` cells, strict suites re-raise the first worker
    error as its original :class:`ReproError` type.
    """
    if checkpoint_every is None:
        checkpoint_every = max(suite.checkpoint_every, 8)
    suite.checkpoint_every = max(1, int(checkpoint_every))

    tasks = plan_cells(
        suite, methods=tuple(methods or TABLE_METHODS),
        error_rates=error_rates,
    )
    started = time.perf_counter()
    results: List[CellResult] = []
    if deadline_s is not None:
        raw = run_tasks_with_deadline(
            run_cell, tasks, jobs=jobs, deadline_s=deadline_s
        )
        for task, item in zip(tasks, raw):
            if isinstance(item, TaskFailure):
                results.extend(_failure_results(task, item))
            else:
                results.extend(item)
    elif jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            results.extend(run_cell(task))
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            pending = {pool.submit(run_cell, task) for task in tasks}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    results.extend(future.result())
    # Merge in a deterministic order so memo files and failure lists
    # do not depend on completion timing.
    results.sort(key=lambda r: (r.circuit, r.method, r.overhead))
    first_failure: Optional[CellResult] = None
    ambient = metrics.current()
    for result in results:
        if result.metrics and ambient is not None:
            ambient.merge_dict(result.metrics)
        if result.failed and not suite.isolate:
            if first_failure is None:
                first_failure = result
            continue
        _merge_result(suite, result)
    suite.checkpoint(force=True)
    wall_s = time.perf_counter() - started
    if first_failure is not None:
        raise _rebuild_error(first_failure)

    busy_s = sum(r.wall_s for r in results)
    # None = unmeasured (no simulation, or a wall clock too coarse to
    # resolve the run) — only measured cells enter the average.
    sim_rates = [
        r.sim_cycles_per_sec
        for r in results
        if r.sim_cycles_per_sec is not None
    ]
    summary: Dict[str, Any] = {
        "jobs": jobs,
        "sim_backend": suite.sim_backend,
        "sta_engine": suite.sta_engine,
        "sim_cells": len(sim_rates),
        "sim_cycles_per_sec": round(
            sum(sim_rates) / len(sim_rates), 2
        ) if sim_rates else None,
        "n_cells": len(results),
        "n_failed": sum(1 for r in results if r.failed),
        "wall_s": round(wall_s, 6),
        "cells_wall_s": round(busy_s, 6),
        "parallel_efficiency": round(
            busy_s / (wall_s * jobs), 4
        ) if wall_s > 0 and jobs > 0 else 0.0,
        "cells": [
            {
                "circuit": r.circuit,
                "method": r.method,
                "overhead": r.overhead,
                "wall_s": round(r.wall_s, 6),
                "failed": r.failed,
                "solver_backend": (
                    (r.record or {}).get("solver_backend", "")
                ),
                "sim_backend": r.sim_backend,
                "sim_cycles_per_sec": (
                    None
                    if r.sim_cycles_per_sec is None
                    else round(r.sim_cycles_per_sec, 2)
                ),
            }
            for r in results
        ],
    }
    metrics.count("parallel.cells", len(results))
    metrics.count("parallel.wall_s", wall_s)
    return summary
