"""Error-rate estimation (Table VIII).

Per the paper, the error rate is measured with random-input
simulation: a cycle is an *error cycle* when the data at any
error-detecting master transitions inside the timing-resiliency window
``(Pi, Pi + phi1]``.  Non-error-detecting masters must never toggle in
the window — the flows' constraints guarantee it, and the estimator
verifies it (``non_edl_violations``).

Two interchangeable backends evaluate the cycles:

* ``"event"`` — the reference :class:`~repro.sim.logicsim.TimedSimulator`,
  re-deriving delays and waveform lookups per cycle;
* ``"compiled"`` (default) — :class:`~repro.sim.kernel.CompiledSimulator`,
  which compiles the cycle-invariant work once and is bit-identical to
  the event backend (the parity test in
  ``tests/test_sim_regressions.py`` is the acceptance gate).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro import metrics
from repro.cells.edl import window_has_transition
from repro.errors import SimulationError
from repro.latches.placement import SlavePlacement
from repro.latches.resilient import TwoPhaseCircuit
from repro.netlist.netlist import GateType
from repro.scenarios.injectors import InjectionPlan
from repro.sim.logicsim import MAX_EVENTS_PER_NET, TimedSimulator
from repro.sim.vectors import VectorSource

#: Valid values of the ``backend`` switch.
SIM_BACKENDS = ("event", "compiled")


@dataclass
class ErrorRateReport:
    """Simulation outcome over N cycles."""

    cycles: int
    error_cycles: int
    #: error count per error-detecting master.
    per_endpoint: Dict[str, int] = field(default_factory=dict)
    #: window transitions observed at masters *not* marked EDL —
    #: should be zero for a correct design.
    non_edl_violations: int = 0
    #: flop state after the last cycle (settled capture values).
    final_flop_state: Dict[str, int] = field(default_factory=dict)
    #: latch/source state after the last cycle (``src:`` and
    #: ``latch:`` keys, as the simulator maintains them).
    final_latch_state: Dict[str, int] = field(default_factory=dict)
    #: which backend produced the report (not part of equality: both
    #: backends must produce comparison-identical reports).
    backend: str = field(default="event", compare=False)
    #: simulation throughput, for bench artifacts (not compared).
    cycles_per_sec: float = field(default=0.0, compare=False)

    @property
    def error_rate(self) -> float:
        """Fraction of cycles with at least one error, in percent."""
        if self.cycles == 0:
            return 0.0
        return 100.0 * self.error_cycles / self.cycles


def _check_plan_targets(netlist, plan: InjectionPlan) -> None:
    """Reject an injection plan naming nets/state the design lacks.

    A silently-ignored injection target would make a scenario look
    healthier than it is, so unknown names are a typed failure.
    """
    if plan.empty:
        return
    known_nets = {g.name for g in netlist.comb_gates()}
    known_nets.update(g.name for g in netlist.sources())
    flop_names = {g.name for g in netlist.flops()}
    bad = sorted(
        {
            spec.net
            for specs in plan.glitches.values()
            for spec in specs
            if spec.net not in known_nets
        }
    )
    bad += sorted(
        name for name in plan.delay_scale if name not in known_nets
    )
    bad += sorted(
        {
            target
            for targets in plan.seu_flips.values()
            for target in targets
            if target not in flop_names
            and not target.startswith("latch:")
        }
    )
    if bad:
        raise SimulationError(
            f"injection plan names unknown targets: {bad[:8]}",
            payload={"unknown_targets": bad, "plan": plan.label},
        )


def estimate_error_rate(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    edl_endpoints: Set[str],
    cycles: int = 256,
    seed: int = 2017,
    toggle_probability: float = 0.5,
    backend: str = "compiled",
    max_events_per_net: int = MAX_EVENTS_PER_NET,
    injection: Optional[InjectionPlan] = None,
) -> ErrorRateReport:
    """Random-input error-rate simulation of a retimed design.

    ``injection`` perturbs the run with a resolved
    :class:`~repro.scenarios.injectors.InjectionPlan` — delay-corner
    scaling, per-cycle glitch pulses, and SEU capture-state flips.
    Both backends honour the same plan identically (the bit-parity
    contract extends to injected runs).
    """
    if backend not in SIM_BACKENDS:
        raise ValueError(
            f"unknown simulation backend {backend!r}; "
            f"expected one of {SIM_BACKENDS}"
        )
    netlist = circuit.netlist
    scheme = circuit.scheme
    window_open = scheme.window_open
    window_close = scheme.window_close
    plan = injection or InjectionPlan()
    _check_plan_targets(netlist, plan)

    if backend == "compiled":
        from repro.sim.kernel import CompiledSimulator

        kernel = CompiledSimulator(
            circuit,
            placement,
            max_events_per_net=max_events_per_net,
            delay_scale=plan.delay_scale,
        )

        def run_cycle(launch, state, glitches):
            return kernel.run_cycle(launch, state, glitches=glitches)

    else:
        simulator = TimedSimulator(
            circuit,
            max_events_per_net=max_events_per_net,
            delay_scale=plan.delay_scale,
        )

        def run_cycle(launch, state, glitches):
            return simulator.run_cycle(
                launch, placement, state, glitches=glitches
            )

    pi_names = [g.name for g in netlist.inputs()]
    source = VectorSource(pi_names, seed=seed, toggle_probability=toggle_probability)

    # (endpoint name, waveform key) pairs, hoisted out of the loop.
    endpoint_keys = [
        (
            g.name,
            f"{g.name}::d" if g.gtype is GateType.DFF else g.name,
        )
        for g in netlist.endpoints()
    ]
    flop_keys = [(g.name, f"{g.name}::d") for g in netlist.flops()]

    report = ErrorRateReport(cycles=cycles, error_cycles=0, backend=backend)
    latch_state: Dict[str, int] = {}
    flop_values: Dict[str, int] = {name: 0 for name, _ in flop_keys}

    flop_names = {name for name, _ in flop_keys}
    started = time.perf_counter()
    for cycle in range(cycles):
        launch = dict(flop_values)
        launch.update(source.next_vector())
        waves = run_cycle(
            launch, latch_state, plan.glitches.get(cycle, ())
        )

        cycle_error = False
        for name, wave_key in endpoint_keys:
            wave = waves[wave_key]
            times = wave.transition_times()
            if not window_has_transition(times, window_open, window_close):
                continue
            if name in edl_endpoints:
                cycle_error = True
                report.per_endpoint[name] = (
                    report.per_endpoint.get(name, 0) + 1
                )
            else:
                report.non_edl_violations += 1
        if cycle_error:
            report.error_cycles += 1

        # Masters capture the *settled* value: an error stalls the
        # next stage in silicon until the time-borrowed transition has
        # landed, so the state carried into the next cycle is the
        # waveform's final value — not a sample at the window close,
        # which would lose any transition borrowed past it.
        for name, wave_key in flop_keys:
            flop_values[name] = waves[wave_key].final

        # SEU capture flips strike the carried-over state *after* this
        # cycle's capture settles — a particle inverting the stored
        # bit.  Applied to the shared state dicts, so both backends
        # see the identical corruption by construction.
        for target in plan.seu_flips.get(cycle, ()):
            if target in flop_names:
                flop_values[target] = 1 - flop_values[target]
            else:
                latch_state[target] = 1 - latch_state.get(target, 0)
            metrics.count("sim.inject.seu_flips")
    wall_s = time.perf_counter() - started
    report.final_flop_state = dict(flop_values)
    report.final_latch_state = dict(latch_state)
    if wall_s > 0.0:
        report.cycles_per_sec = cycles / wall_s
    metrics.count(f"sim.backend.{backend}")
    metrics.count("sim.cycles", cycles)
    metrics.count("sim.wall_s", wall_s)
    if not plan.empty:
        counts = plan.counts()
        metrics.count("sim.inject.runs")
        metrics.count("sim.inject.glitches", counts["glitches"])
        metrics.count("sim.inject.scaled_gates", counts["scaled_gates"])
    return report
