"""Error-rate estimation (Table VIII).

Per the paper, the error rate is measured with random-input
simulation: a cycle is an *error cycle* when the data at any
error-detecting master transitions inside the timing-resiliency window
``(Pi, Pi + phi1]``.  Non-error-detecting masters must never toggle in
the window — the flows' constraints guarantee it, and the estimator
verifies it (``non_edl_violations``).

Two interchangeable backends evaluate the cycles:

* ``"event"`` — the reference :class:`~repro.sim.logicsim.TimedSimulator`,
  re-deriving delays and waveform lookups per cycle;
* ``"compiled"`` (default) — :class:`~repro.sim.kernel.CompiledSimulator`,
  which compiles the cycle-invariant work once and is bit-identical to
  the event backend (the parity test in
  ``tests/test_sim_regressions.py`` is the acceptance gate);
* ``"vector"`` — :mod:`repro.sim.vector`, which reuses the compiled
  schedule but makes the Monte-Carlo seed axis a NumPy array
  dimension, advancing every seed per pass (bit-identical per-seed
  reports; single-seed calls run as one lane).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro import metrics
from repro.cells.edl import window_has_transition
from repro.errors import SimulationError
from repro.latches.placement import SlavePlacement
from repro.latches.resilient import TwoPhaseCircuit
from repro.netlist.netlist import GateType
from repro.scenarios.injectors import InjectionPlan
from repro.sim.logicsim import MAX_EVENTS_PER_NET, TimedSimulator
from repro.sim.vectors import VectorSource

#: Valid values of the ``backend`` switch.
SIM_BACKENDS = ("event", "compiled", "vector")


@dataclass
class ErrorRateReport:
    """Simulation outcome over N cycles."""

    cycles: int
    error_cycles: int
    #: error count per error-detecting master.
    per_endpoint: Dict[str, int] = field(default_factory=dict)
    #: window transitions observed at masters *not* marked EDL —
    #: should be zero for a correct design.
    non_edl_violations: int = 0
    #: flop state after the last cycle (settled capture values).
    final_flop_state: Dict[str, int] = field(default_factory=dict)
    #: latch/source state after the last cycle (``src:`` and
    #: ``latch:`` keys, as the simulator maintains them).
    final_latch_state: Dict[str, int] = field(default_factory=dict)
    #: which backend produced the report (not part of equality: all
    #: backends must produce comparison-identical reports).
    backend: str = field(default="event", compare=False)
    #: simulation throughput, for bench artifacts (not compared).
    #: ``None`` means unmeasured — a run too fast for the wall clock
    #: to resolve stays ``None`` instead of masquerading as 0.0.
    cycles_per_sec: Optional[float] = field(default=None, compare=False)

    @property
    def error_rate(self) -> float:
        """Fraction of cycles with at least one error, in percent."""
        if self.cycles == 0:
            return 0.0
        return 100.0 * self.error_cycles / self.cycles


def _check_plan_targets(
    netlist, plan: InjectionPlan, placement: SlavePlacement
) -> None:
    """Reject an injection plan naming nets/state the design lacks.

    A silently-ignored injection target would make a scenario look
    healthier than it is, so unknown names are a typed failure.  SEU
    targets may be flop names or ``latch:<driver>:<sink>`` state keys;
    the latter are validated against the placement's actual latch
    edges — a typo'd key would otherwise mutate phantom ``latch_state``
    entries no waveform ever reads.
    """
    if plan.empty:
        return
    known_nets = {g.name for g in netlist.comb_gates()}
    known_nets.update(g.name for g in netlist.sources())
    flop_names = {g.name for g in netlist.flops()}
    latch_keys = {
        f"latch:{driver}:{sink}"
        for driver, sink in placement.latch_edges(netlist)
    }
    bad = sorted(
        {
            spec.net
            for specs in plan.glitches.values()
            for spec in specs
            if spec.net not in known_nets
        }
    )
    bad += sorted(
        name for name in plan.delay_scale if name not in known_nets
    )
    bad += sorted(
        {
            target
            for targets in plan.seu_flips.values()
            for target in targets
            if target not in flop_names and target not in latch_keys
        }
    )
    if bad:
        raise SimulationError(
            f"injection plan names unknown targets: {bad[:8]}",
            payload={"unknown_targets": bad, "plan": plan.label},
        )


@dataclass
class _LaneState:
    """Mutable per-seed state of one simulation lane."""

    source: VectorSource
    report: ErrorRateReport
    latch_state: Dict[str, int]
    flop_values: Dict[str, int]


class _CycleLoop:
    """Cycle-invariant simulation setup plus the per-cycle bookkeeping.

    Both :func:`estimate_error_rate` and
    :func:`~repro.sim.batch.estimate_error_rate_batched` drive their
    cycles through :meth:`step`, so the batched estimator is
    bit-identical to running the sequential one per seed *by
    construction* — there is exactly one copy of the window scan, the
    settled-value capture, and the SEU flip logic.
    """

    def __init__(
        self,
        circuit: TwoPhaseCircuit,
        placement: SlavePlacement,
        edl_endpoints: Set[str],
        plan: InjectionPlan,
        backend: str,
        max_events_per_net: int,
    ) -> None:
        if backend not in SIM_BACKENDS:
            raise ValueError(
                f"unknown simulation backend {backend!r}; "
                f"expected one of {SIM_BACKENDS}"
            )
        if backend == "vector":
            raise ValueError(
                "_CycleLoop drives the per-lane dict backends; the "
                "vector backend advances all lanes at once — callers "
                "dispatch to repro.sim.vector before building the loop"
            )
        netlist = circuit.netlist
        _check_plan_targets(netlist, plan, placement)
        self.backend = backend
        self.plan = plan
        self.edl_endpoints = edl_endpoints
        scheme = circuit.scheme
        self.window_open = scheme.window_open
        self.window_close = scheme.window_close

        # The compile (kernel) / construction (event) cost is paid
        # once here, shared by every lane stepped through this loop.
        if backend == "compiled":
            from repro.sim.kernel import CompiledSimulator

            kernel = CompiledSimulator(
                circuit,
                placement,
                max_events_per_net=max_events_per_net,
                delay_scale=plan.delay_scale,
            )

            def run_cycle(launch, state, glitches):
                return kernel.run_cycle(launch, state, glitches=glitches)

        else:
            simulator = TimedSimulator(
                circuit,
                max_events_per_net=max_events_per_net,
                delay_scale=plan.delay_scale,
            )

            def run_cycle(launch, state, glitches):
                return simulator.run_cycle(
                    launch, placement, state, glitches=glitches
                )

        self.run_cycle = run_cycle
        self.pi_names = [g.name for g in netlist.inputs()]
        # (endpoint name, waveform key) pairs, hoisted out of the loop.
        self.endpoint_keys = [
            (
                g.name,
                f"{g.name}::d" if g.gtype is GateType.DFF else g.name,
            )
            for g in netlist.endpoints()
        ]
        self.flop_keys = [(g.name, f"{g.name}::d") for g in netlist.flops()]
        self.flop_names = {name for name, _ in self.flop_keys}

    def new_lane(
        self, cycles: int, seed: int, toggle_probability: float
    ) -> _LaneState:
        """Fresh lane state for one seed (zeroed flops, empty latches)."""
        return _LaneState(
            source=VectorSource(
                self.pi_names,
                seed=seed,
                toggle_probability=toggle_probability,
            ),
            report=ErrorRateReport(
                cycles=cycles, error_cycles=0, backend=self.backend
            ),
            latch_state={},
            flop_values={name: 0 for name, _ in self.flop_keys},
        )

    def step(self, cycle: int, lane: _LaneState) -> None:
        """Advance one lane through one cycle."""
        report = lane.report
        launch = dict(lane.flop_values)
        launch.update(lane.source.next_vector())
        waves = self.run_cycle(
            launch, lane.latch_state, self.plan.glitches.get(cycle, ())
        )

        cycle_error = False
        for name, wave_key in self.endpoint_keys:
            wave = waves[wave_key]
            times = wave.transition_times()
            if not window_has_transition(
                times, self.window_open, self.window_close
            ):
                continue
            if name in self.edl_endpoints:
                cycle_error = True
                report.per_endpoint[name] = (
                    report.per_endpoint.get(name, 0) + 1
                )
            else:
                report.non_edl_violations += 1
        if cycle_error:
            report.error_cycles += 1

        # Masters capture the *settled* value: an error stalls the
        # next stage in silicon until the time-borrowed transition has
        # landed, so the state carried into the next cycle is the
        # waveform's final value — not a sample at the window close,
        # which would lose any transition borrowed past it.
        for name, wave_key in self.flop_keys:
            lane.flop_values[name] = waves[wave_key].final

        # SEU capture flips strike the carried-over state *after* this
        # cycle's capture settles — a particle inverting the stored
        # bit.  Applied to the shared state dicts, so both backends
        # see the identical corruption by construction.
        for target in self.plan.seu_flips.get(cycle, ()):
            if target in self.flop_names:
                lane.flop_values[target] = 1 - lane.flop_values[target]
            else:
                lane.latch_state[target] = 1 - lane.latch_state.get(
                    target, 0
                )
            metrics.count("sim.inject.seu_flips")

    def finish(self, lane: _LaneState) -> ErrorRateReport:
        """Seal a lane's report with its final state snapshots."""
        lane.report.final_flop_state = dict(lane.flop_values)
        lane.report.final_latch_state = dict(lane.latch_state)
        return lane.report


def estimate_error_rate(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    edl_endpoints: Set[str],
    cycles: int = 256,
    seed: int = 2017,
    toggle_probability: float = 0.5,
    backend: str = "compiled",
    max_events_per_net: int = MAX_EVENTS_PER_NET,
    injection: Optional[InjectionPlan] = None,
) -> ErrorRateReport:
    """Random-input error-rate simulation of a retimed design.

    ``injection`` perturbs the run with a resolved
    :class:`~repro.scenarios.injectors.InjectionPlan` — delay-corner
    scaling, per-cycle glitch pulses, and SEU capture-state flips.
    Both backends honour the same plan identically (the bit-parity
    contract extends to injected runs).
    """
    plan = injection or InjectionPlan()
    if backend == "vector":
        from repro.sim.vector import estimate_error_rate_vector

        return estimate_error_rate_vector(
            circuit,
            placement,
            edl_endpoints,
            cycles=cycles,
            seeds=(seed,),
            toggle_probability=toggle_probability,
            max_events_per_net=max_events_per_net,
            injection=injection,
        )[0]
    loop = _CycleLoop(
        circuit, placement, edl_endpoints, plan, backend, max_events_per_net
    )
    lane = loop.new_lane(cycles, seed, toggle_probability)
    report = lane.report

    started = time.perf_counter()
    for cycle in range(cycles):
        loop.step(cycle, lane)
    wall_s = time.perf_counter() - started
    loop.finish(lane)
    if wall_s > 0.0:
        report.cycles_per_sec = cycles / wall_s
    metrics.count(f"sim.backend.{backend}")
    metrics.count("sim.cycles", cycles)
    # A wall-clock measurement is a gauge, not an event count — it
    # lives under "values" in bench artifacts, not "counters".
    metrics.record_value("sim.wall_s", wall_s)
    if not plan.empty:
        counts = plan.counts()
        metrics.count("sim.inject.runs")
        metrics.count("sim.inject.glitches", counts["glitches"])
        metrics.count("sim.inject.scaled_gates", counts["scaled_gates"])
    return report
