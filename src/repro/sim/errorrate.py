"""Error-rate estimation (Table VIII).

Per the paper, the error rate is measured with random-input
simulation: a cycle is an *error cycle* when the data at any
error-detecting master transitions inside the timing-resiliency window
``(Pi, Pi + phi1]``.  Non-error-detecting masters must never toggle in
the window — the flows' constraints guarantee it, and the estimator
verifies it (``non_edl_violations``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.cells.edl import window_has_transition
from repro.latches.placement import SlavePlacement
from repro.latches.resilient import TwoPhaseCircuit
from repro.netlist.netlist import GateType
from repro.sim.logicsim import TimedSimulator
from repro.sim.vectors import VectorSource


@dataclass
class ErrorRateReport:
    """Simulation outcome over N cycles."""

    cycles: int
    error_cycles: int
    #: error count per error-detecting master.
    per_endpoint: Dict[str, int] = field(default_factory=dict)
    #: window transitions observed at masters *not* marked EDL —
    #: should be zero for a correct design.
    non_edl_violations: int = 0

    @property
    def error_rate(self) -> float:
        """Fraction of cycles with at least one error, in percent."""
        if self.cycles == 0:
            return 0.0
        return 100.0 * self.error_cycles / self.cycles


def estimate_error_rate(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    edl_endpoints: Set[str],
    cycles: int = 256,
    seed: int = 2017,
    toggle_probability: float = 0.5,
) -> ErrorRateReport:
    """Random-input error-rate simulation of a retimed design."""
    simulator = TimedSimulator(circuit)
    netlist = circuit.netlist
    scheme = circuit.scheme
    window_open = scheme.window_open
    window_close = scheme.window_close

    pi_names = [g.name for g in netlist.inputs()]
    source = VectorSource(pi_names, seed=seed, toggle_probability=toggle_probability)

    report = ErrorRateReport(cycles=cycles, error_cycles=0)
    latch_state: Dict[str, int] = {}
    flop_values: Dict[str, int] = {g.name: 0 for g in netlist.flops()}

    for _ in range(cycles):
        launch = dict(flop_values)
        launch.update(source.next_vector())
        waves = simulator.run_cycle(launch, placement, latch_state)

        cycle_error = False
        for gate in netlist.endpoints():
            if gate.gtype is GateType.DFF:
                wave = waves[f"{gate.name}::d"]
            else:
                wave = waves[gate.name]
            times = wave.transition_times()
            if not window_has_transition(times, window_open, window_close):
                continue
            if gate.name in edl_endpoints:
                cycle_error = True
                report.per_endpoint[gate.name] = (
                    report.per_endpoint.get(gate.name, 0) + 1
                )
            else:
                report.non_edl_violations += 1
        if cycle_error:
            report.error_cycles += 1

        # Masters capture at the window close (errors stall the next
        # stage in silicon; for rate estimation the captured value is
        # the settled one either way).
        for gate in netlist.flops():
            wave = waves[f"{gate.name}::d"]
            flop_values[gate.name] = wave.value_at(window_close)
    return report
