"""Gate-level timed logic simulation and error-rate estimation.

The paper's Table VIII measures error rates with random-input
simulation: an error occurs in a cycle when the data at an
error-detecting master toggles inside the timing-resiliency window.
:class:`TimedSimulator` produces per-net transition waveforms under a
transport-delay model (per-pin delays from the same calculators STA
uses); :func:`estimate_error_rate` drives it cycle by cycle over a
slave-latch placement and counts window violations.
"""

from repro.sim.logicsim import (
    MAX_EVENTS_PER_NET,
    TimedSimulator,
    Waveform,
    apply_glitches,
)
from repro.sim.kernel import CompiledSimulator
from repro.sim.vectors import VectorSource, random_vectors
from repro.sim.errorrate import (
    SIM_BACKENDS,
    ErrorRateReport,
    estimate_error_rate,
)
from repro.sim.batch import estimate_error_rate_batched
from repro.sim.vector import estimate_error_rate_vector
from repro.sim.vcd import vcd_text, write_vcd

__all__ = [
    "MAX_EVENTS_PER_NET",
    "SIM_BACKENDS",
    "CompiledSimulator",
    "TimedSimulator",
    "Waveform",
    "apply_glitches",
    "VectorSource",
    "random_vectors",
    "ErrorRateReport",
    "estimate_error_rate",
    "estimate_error_rate_batched",
    "estimate_error_rate_vector",
    "vcd_text",
    "write_vcd",
]
