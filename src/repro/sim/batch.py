"""Batched Monte-Carlo error-rate estimation: one compile, many seeds.

:func:`~repro.sim.errorrate.estimate_error_rate` pays the
cycle-invariant setup — the :class:`~repro.sim.kernel.CompiledSimulator`
compile (topological schedule, arc delays, truth tables) — once per
*seed*.  A Monte-Carlo sweep over many vector seeds on a fixed
``(circuit, placement, plan)`` re-derives the identical compile every
time; on the Table-VIII-scale circuits that compile dominates short
runs.

:func:`estimate_error_rate_batched` hoists the compile out of the seed
loop: one shared :class:`~repro.sim.errorrate._CycleLoop` (kernel or
event simulator, endpoint/flop key tables, injection plan validation),
then one independent lane of mutable state per seed, advanced
cycle-major through the shared loop.

**Parity is structural**: each lane owns its own
:class:`~repro.sim.vectors.VectorSource`, flop values and latch state,
and every cycle runs through the *same* :meth:`_CycleLoop.step` the
sequential estimator uses — there is no second copy of the window
scan, capture, or SEU bookkeeping to drift.  The reports are therefore
comparison-identical to calling ``estimate_error_rate`` once per seed
(``tests/test_arena.py`` pins this, including under injection plans).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Set

from repro import metrics
from repro.latches.placement import SlavePlacement
from repro.latches.resilient import TwoPhaseCircuit
from repro.scenarios.injectors import InjectionPlan
from repro.sim.errorrate import ErrorRateReport, _CycleLoop
from repro.sim.logicsim import MAX_EVENTS_PER_NET


def estimate_error_rate_batched(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    edl_endpoints: Set[str],
    cycles: int = 256,
    seeds: Sequence[int] = (2017,),
    toggle_probability: float = 0.5,
    backend: str = "compiled",
    max_events_per_net: int = MAX_EVENTS_PER_NET,
    injection: Optional[InjectionPlan] = None,
) -> List[ErrorRateReport]:
    """Error-rate reports for every seed, sharing one simulator compile.

    Returns one :class:`~repro.sim.errorrate.ErrorRateReport` per entry
    of ``seeds``, in order, each comparison-equal to
    ``estimate_error_rate(..., seed=s)`` with the same arguments.  The
    ``cycles_per_sec`` field (excluded from report comparison) carries
    the *aggregate* batch throughput — total lane-cycles over the
    shared wall clock — since the per-lane split of a batched pass is
    not meaningful.
    """
    plan = injection or InjectionPlan()
    if backend == "vector":
        from repro.sim.vector import estimate_error_rate_vector

        return estimate_error_rate_vector(
            circuit,
            placement,
            edl_endpoints,
            cycles=cycles,
            seeds=seeds,
            toggle_probability=toggle_probability,
            max_events_per_net=max_events_per_net,
            injection=injection,
        )
    loop = _CycleLoop(
        circuit, placement, edl_endpoints, plan, backend, max_events_per_net
    )
    lanes = [
        loop.new_lane(cycles, seed, toggle_probability) for seed in seeds
    ]

    started = time.perf_counter()
    # Cycle-major: glitch/SEU schedules index by cycle, so one pass
    # over the schedule serves every lane; per-lane state keeps the
    # lanes fully independent regardless of interleaving order.
    for cycle in range(cycles):
        for lane in lanes:
            loop.step(cycle, lane)
    wall_s = time.perf_counter() - started

    reports = [loop.finish(lane) for lane in lanes]
    total_cycles = cycles * len(lanes)
    if wall_s > 0.0:
        throughput = total_cycles / wall_s
        for report in reports:
            report.cycles_per_sec = throughput

    metrics.count("sim.batched.runs")
    metrics.count("sim.batched.lanes", len(lanes))
    metrics.count(f"sim.backend.{backend}")
    metrics.count("sim.cycles", total_cycles)
    metrics.record_value("sim.wall_s", wall_s)
    if not plan.empty and lanes:
        counts = plan.counts()
        metrics.count("sim.inject.runs", len(lanes))
        metrics.count(
            "sim.inject.glitches", counts["glitches"] * len(lanes)
        )
        metrics.count(
            "sim.inject.scaled_gates", counts["scaled_gates"] * len(lanes)
        )
    return reports
