"""Compiled gate-evaluation helper for the vector backend.

The lane-vectorized backend keeps all simulation state in NumPy
arrays (``repro.sim.vector``), but the per-level gate transform —
candidate merge, per-pin value cursors, causing-pin window, arc-delay
max, preemption and value pruning — is a chain of many small array
ops whose per-op dispatch cost dominates at realistic lane counts.
This module builds that one transform as a tiny C routine operating
directly on the backend's global ``(slot, lane, event)`` arrays, the
same way NumPy's own ufunc loops do: one call per topological level
advances every gate and every lane.

The C loop is a line-for-line mirror of
:meth:`repro.sim.kernel.CompiledSimulator.run_cycle`'s candidate
loop (same double-precision operations in the same order: the only
float arithmetic is ``when - eps`` / ``when + eps`` / ``when +
delay``, compiled with ``-ffp-contract=off`` so no fused ops can
change a result), so it is bit-exact against the event and compiled
oracles by construction.

The helper is optional: it compiles lazily with the system C
compiler into a content-hashed shared object under the temp
directory (atomic rename, safe for concurrent workers).  When no
compiler is available — or ``REPRO_VECTOR_NATIVE=0`` is set — the
vector backend transparently falls back to its pure-NumPy gate
stage, which implements identical semantics.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional

_SOURCE = r"""
#include <stdint.h>

#define INF (1.0 / 0.0)
#define MAXK 16

/* Evaluate one level-group of k-input gates across all lanes.
 *
 * Global waveform arrays are C-contiguous (n_slots, n_lanes, width);
 * `ins` holds kmax slot ids per gate (missing pins point at the
 * dummy slot: count 0, initial 0).  Gates are visited in schedule
 * order, lanes inner.  Returns 0 on success; on event-cap overflow
 * returns 1 with err_gate/err_count set for the first overflowing
 * gate in schedule order (first overflowing lane).
 */
int eval_gates(
    int64_t n_gates, int64_t n_lanes, int64_t kmax, int64_t width,
    const int64_t *ins,       /* (n_gates, kmax) */
    const int64_t *out_slots, /* (n_gates,) */
    const int64_t *single,    /* (n_gates,) 1 = true 1-input gate */
    const double *delays,     /* (n_gates, kmax, 2) */
    const int64_t *tables,    /* (n_gates, 1 << kmax) */
    double *times,            /* (n_slots, n_lanes, width) */
    int64_t *values,          /* (n_slots, n_lanes, width) */
    int64_t *counts,          /* (n_slots, n_lanes) */
    int64_t *inits,           /* (n_slots, n_lanes) */
    int64_t cap, double eps,
    int64_t *err_gate, int64_t *err_count)
{
    int64_t tsize = (int64_t)1 << kmax;
    for (int64_t g = 0; g < n_gates; g++) {
        const int64_t *gin = ins + g * kmax;
        const double *gdel = delays + g * kmax * 2;
        const int64_t *tab = tables + g * tsize;
        int64_t oslot = out_slots[g];
        for (int64_t lane = 0; lane < n_lanes; lane++) {
            const double *tin[MAXK];
            const int64_t *vin[MAXK];
            int64_t len[MAXK], cur[MAXK], cc[MAXK], val[MAXK];
            int64_t mask = 0, total = 0;
            for (int64_t p = 0; p < kmax; p++) {
                int64_t row = gin[p] * n_lanes + lane;
                tin[p] = times + row * width;
                vin[p] = values + row * width;
                len[p] = counts[row];
                cur[p] = 0;
                cc[p] = 0;
                val[p] = inits[row];
                mask |= val[p] << p;
                total += len[p];
            }
            int64_t out_init = tab[mask];
            int64_t orow = oslot * n_lanes + lane;
            double *tout = times + orow * width;
            int64_t *vout = values + orow * width;
            int64_t old_count = counts[orow];
            int64_t ne = 0;       /* events written (pre-prune) */
            int64_t n_cand = 0;   /* deduped candidate count */
            if (total > 0) {
                for (;;) {
                    /* next distinct candidate time */
                    double when = INF;
                    int any = 0;
                    for (int64_t p = 0; p < kmax; p++) {
                        if (cur[p] < len[p] && tin[p][cur[p]] < when) {
                            when = tin[p][cur[p]];
                            any = 1;
                        }
                    }
                    if (!any)
                        break;
                    n_cand++;
                    /* advance value cursors through `when` (mirrors
                     * the kernel's inclusive value_at) */
                    for (int64_t p = 0; p < kmax; p++) {
                        int64_t c = cur[p], e = len[p];
                        if (c < e && tin[p][c] <= when) {
                            while (c < e && tin[p][c] <= when)
                                c++;
                            val[p] = vin[p][c - 1];
                            cur[p] = c;
                        }
                    }
                    mask = 0;
                    for (int64_t p = 0; p < kmax; p++)
                        mask |= val[p] << p;
                    int64_t new_value = tab[mask];
                    double delay;
                    if (single[g]) {
                        /* kernel 1-input fast path: the single pin
                         * always causes, no eps-window test */
                        delay = gdel[new_value];
                    } else {
                        /* causing pins: any transition inside
                         * (when - eps, when + eps) */
                        delay = 0.0;
                        double lo = when - eps;
                        double hi = when + eps;
                        for (int64_t p = 0; p < kmax; p++) {
                            int64_t e = len[p];
                            if (!e)
                                continue;
                            int64_t c = cc[p];
                            while (c < e && tin[p][c] <= lo)
                                c++;
                            cc[p] = c;
                            if (c < e && tin[p][c] < hi) {
                                double arc = gdel[p * 2 + new_value];
                                if (arc > delay)
                                    delay = arc;
                            }
                        }
                    }
                    double out_time = when + delay;
                    while (ne > 0 && tout[ne - 1] >= out_time)
                        ne--;
                    tout[ne] = out_time;
                    vout[ne] = new_value;
                    ne++;
                }
                if (n_cand > cap) {
                    *err_gate = g;
                    *err_count = n_cand;
                    return 1;
                }
            }
            /* prune runs of unchanged value (in place) */
            int64_t running = out_init, kept = 0;
            for (int64_t j = 0; j < ne; j++) {
                if (vout[j] != running) {
                    tout[kept] = tout[j];
                    vout[kept] = vout[j];
                    running = vout[j];
                    kept++;
                }
            }
            /* restore the inf padding over any stale tail */
            int64_t stale = old_count > ne ? old_count : ne;
            for (int64_t j = kept; j < stale; j++)
                tout[j] = INF;
            counts[orow] = kept;
            inits[orow] = out_init;
        }
    }
    return 0;
}

/* One stage of cloud-latch transforms across all lanes: the kernel's
 * `_latch_transform` loop per (latch, lane).  Source and destination
 * slots are distinct by construction (each latch owns its output
 * slot), so writing the output row never clobbers unread input.
 * `held` is (n_rows, n_lanes): the latch's carried state, which is
 * both the prune baseline and the output initial value.
 */
int eval_latches(
    int64_t n_rows, int64_t n_lanes, int64_t width,
    const int64_t *src_slots, const int64_t *dst_slots,
    const int64_t *held,
    double t_open, double t_close, double d_q, double open_edge,
    double *times, int64_t *values, int64_t *counts, int64_t *inits)
{
    for (int64_t r = 0; r < n_rows; r++) {
        for (int64_t lane = 0; lane < n_lanes; lane++) {
            int64_t srow = src_slots[r] * n_lanes + lane;
            int64_t drow = dst_slots[r] * n_lanes + lane;
            const double *tin = times + srow * width;
            const int64_t *vin = values + srow * width;
            int64_t len = counts[srow];
            int64_t h = held[r * n_lanes + lane];
            double *tout = times + drow * width;
            int64_t *vout = values + drow * width;
            int64_t old_count = counts[drow];
            /* bisect_right(times, t_open): the opening value */
            int64_t idx = 0;
            while (idx < len && tin[idx] <= t_open)
                idx++;
            int64_t opening = idx ? vin[idx - 1] : inits[srow];
            int64_t ne = 0;
            if (opening != h) {
                tout[ne] = open_edge;
                vout[ne] = opening;
                ne++;
            }
            /* transparent window: t_open < when <= t_close */
            for (int64_t j = idx; j < len && tin[j] <= t_close; j++) {
                double out_time = tin[j] + d_q;
                while (ne > 0 && tout[ne - 1] >= out_time)
                    ne--;
                tout[ne] = out_time;
                vout[ne] = vin[j];
                ne++;
            }
            /* prune runs of unchanged value vs the held value */
            int64_t running = h, kept = 0;
            for (int64_t j = 0; j < ne; j++) {
                if (vout[j] != running) {
                    tout[kept] = tout[j];
                    vout[kept] = vout[j];
                    running = vout[j];
                    kept++;
                }
            }
            int64_t stale = old_count > ne ? old_count : ne;
            for (int64_t j = kept; j < stale; j++)
                tout[j] = INF;
            counts[drow] = kept;
            inits[drow] = h;
        }
    }
    return 0;
}
"""


def _cache_path(digest: str) -> str:
    return os.path.join(
        tempfile.gettempdir(), "repro-veval-%s.so" % digest[:16]
    )


def _compile(digest: str) -> str:
    """Compile the helper into the temp dir (atomic, concurrent-safe)."""
    target = _cache_path(digest)
    if os.path.exists(target):
        return target
    compiler = shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        raise OSError("no C compiler on PATH")
    workdir = tempfile.mkdtemp(prefix="repro-veval-")
    try:
        src = os.path.join(workdir, "veval.c")
        obj = os.path.join(workdir, "veval.so")
        with open(src, "w", encoding="utf-8") as fh:
            fh.write(_SOURCE)
        subprocess.run(
            [
                compiler,
                "-O2",
                "-fPIC",
                "-shared",
                "-ffp-contract=off",
                src,
                "-o",
                obj,
            ],
            check=True,
            capture_output=True,
        )
        os.replace(obj, target)  # atomic: last concurrent writer wins
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return target


_UNSET = object()
_lib: object = _UNSET


def load() -> Optional[ctypes.CDLL]:
    """The compiled helper, or ``None`` when unavailable/disabled."""
    global _lib
    if _lib is not _UNSET:
        return _lib  # type: ignore[return-value]
    if os.environ.get("REPRO_VECTOR_NATIVE", "1") == "0":
        _lib = None
        return None
    try:
        digest = hashlib.sha256(_SOURCE.encode("utf-8")).hexdigest()
        lib = ctypes.CDLL(_compile(digest))
        fn = lib.eval_gates
        fn.restype = ctypes.c_int
        fn.argtypes = [ctypes.c_int64] * 4 + [ctypes.c_void_p] * 9 + [
            ctypes.c_int64,
            ctypes.c_double,
            ctypes.c_void_p,
            ctypes.c_void_p,
        ]
        fl = lib.eval_latches
        fl.restype = ctypes.c_int
        fl.argtypes = (
            [ctypes.c_int64] * 3
            + [ctypes.c_void_p] * 3
            + [ctypes.c_double] * 4
            + [ctypes.c_void_p] * 4
        )
        _lib = lib
    except Exception:
        _lib = None
    return _lib  # type: ignore[return-value]
