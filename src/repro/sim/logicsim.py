"""Event-driven (transport-delay) gate-level logic simulation.

Each net carries a :class:`Waveform`: an initial value plus a sorted
list of ``(time, value)`` transitions within the current clock cycle.
Gates are evaluated in topological order; every input event time is a
candidate output event, delayed by the per-pin arc delay of the causing
input (the same load/slew-aware delays STA uses, so simulated arrivals
match the timing engine's to first order).

Slave latches transform the waveform on their edge: data waits for the
transparency opening (CK->Q) and flows through during transparency
(D->Q); transitions after the closing edge are dropped (the design's
constraints (6)/(7) guarantee stabilization — a violation here would
be a real silicon failure and is reported).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import metrics
from repro.cells.cell import CombCell
from repro.errors import NetlistError, SimulationError
from repro.latches.placement import HOST, SlavePlacement
from repro.latches.resilient import TwoPhaseCircuit
from repro.netlist.netlist import Gate, GateType
from repro.scenarios.injectors import GlitchSpec, glitch_events


@dataclass
class Waveform:
    """Piecewise-constant 0/1 signal over one clock cycle."""

    initial: int
    #: Sorted, deduplicated transitions (time, new_value).
    events: List[Tuple[float, int]] = field(default_factory=list)

    def value_at(self, time: float) -> int:
        """Signal value at ``time`` (transitions are inclusive)."""
        value = self.initial
        for when, new_value in self.events:
            if when <= time:
                value = new_value
            else:
                break
        return value

    @property
    def final(self) -> int:
        """The settled value at the end of the cycle."""
        return self.events[-1][1] if self.events else self.initial

    def transition_times(self) -> List[float]:
        """Times of *actual* value changes (pruned of null events)."""
        times = []
        value = self.initial
        for when, new_value in self.events:
            if new_value != value:
                times.append(when)
                value = new_value
        return times

    @staticmethod
    def constant(value: int) -> "Waveform":
        """A waveform that never changes."""
        return Waveform(initial=int(bool(value)))

    @staticmethod
    def step(initial: int, time: float, value: int) -> "Waveform":
        """A waveform with at most one transition at ``time``."""
        wave = Waveform(initial=int(bool(initial)))
        if value != initial:
            wave.events.append((time, int(bool(value))))
        return wave

    def normalized(self) -> "Waveform":
        """Collapse events to actual changes, keeping them sorted."""
        out = Waveform(initial=self.initial)
        value = self.initial
        for when, new_value in sorted(self.events):
            if new_value != value:
                out.events.append((when, new_value))
                value = new_value
        return out


def _append_preempt(
    events: List[Tuple[float, int]], when: float, value: int
) -> None:
    """Schedule an output event with preemption semantics.

    A later input change supersedes any output transition it would
    overtake: unequal rise/fall delays can put a newer event *before*
    an older one on the time axis, and the stale event must not
    survive (VHDL transport scheduling does the same cancellation).
    """
    while events and events[-1][0] >= when:
        events.pop()
    events.append((when, value))


#: Hard per-net event cap: a waveform with more candidate events than
#: this is outside the transport-delay model's envelope (a real design
#: would have filtered such glitch trains), and truncating it would
#: silently drop the *latest* events — exactly the ones that land in
#: the resiliency window.  The simulation raises instead.
MAX_EVENTS_PER_NET = 4096


def check_event_cap(gate_name: str, n_events: int, cap: int) -> None:
    """Raise :class:`SimulationError` when a net's event count blows
    the hard cap; the overflow is counted in :mod:`repro.metrics` so
    bench artifacts surface how close a sweep came to the envelope."""
    if n_events <= cap:
        return
    metrics.count("sim.event_overflow.gates")
    metrics.count("sim.event_overflow.dropped_events", n_events - cap)
    raise SimulationError(
        f"gate {gate_name!r}: {n_events} candidate events exceed the "
        f"per-net cap of {cap}; refusing to truncate (dropped events "
        f"would hide resiliency-window transitions)",
        payload={
            "gate": gate_name,
            "n_events": n_events,
            "max_events_per_net": cap,
        },
    )


def apply_glitches(
    wave: Waveform, specs: Sequence[GlitchSpec]
) -> Waveform:
    """The glitched form of ``wave`` (shared injector semantics)."""
    times = [when for when, _ in wave.events]
    values = [value for _, value in wave.events]
    for spec in specs:
        times, values = glitch_events(wave.initial, times, values, spec)
    return Waveform(initial=wave.initial, events=list(zip(times, values)))


class TimedSimulator:
    """One-cycle waveform evaluation over the combinational cloud.

    ``delay_scale`` is the delay-corner injection hook: per-gate arc
    delay multipliers (see
    :mod:`repro.scenarios.injectors`), applied to every causing-pin
    arc before the slowest-arc max so the compiled backend's
    premultiplied tables stay bit-identical.
    """

    def __init__(
        self,
        circuit: TwoPhaseCircuit,
        max_events_per_net: int = MAX_EVENTS_PER_NET,
        delay_scale: Optional[Mapping[str, float]] = None,
    ) -> None:
        if circuit.library is None:
            raise ValueError("simulation needs a library")
        self.circuit = circuit
        self.netlist = circuit.netlist
        self.library = circuit.library
        self.max_events_per_net = max_events_per_net
        self.delay_scale = dict(delay_scale or {})
        self._order = [
            name
            for name in self.netlist.topo_order()
            if self.netlist[name].is_comb
        ]

    # -- gate evaluation ---------------------------------------------------

    def _evaluate_gate(
        self, gate: Gate, inputs: Sequence[Waveform]
    ) -> Waveform:
        cell = self.library[gate.cell]
        if not isinstance(cell, CombCell):
            raise NetlistError(
                [f"gate {gate.name!r}: cell {gate.cell!r} is not "
                 f"combinational"]
            )
        calc = self.circuit.engine.calculator
        load = calc.load(gate.name)

        # Candidate event times: every input change.
        candidate_times: List[float] = []
        for wave in inputs:
            candidate_times.extend(wave.transition_times())
        candidate_times = sorted(set(candidate_times))
        check_event_cap(
            gate.name, len(candidate_times), self.max_events_per_net
        )

        factor = self.delay_scale.get(gate.name)
        initial = cell.evaluate([w.initial for w in inputs])
        out = Waveform(initial=initial)
        for when in candidate_times:
            values = [w.value_at(when) for w in inputs]
            new_value = cell.evaluate(values)
            # The causing pins are those that changed at `when`; the
            # output event is delayed by the slowest of their arcs,
            # evaluated at the driver's propagated slew so simulated
            # arrivals track the timing engine's.
            delay = 0.0
            for pin, fanin, wave in zip(cell.inputs, gate.fanins, inputs):
                if not wave.events:
                    continue
                if any(abs(t - when) < 1e-15 for t, _ in wave.events):
                    arc_delay = cell.arc(pin).delay_for_output_edge(
                        rising_output=bool(new_value),
                        load=load,
                        input_slew=calc.slew(fanin),
                    )
                    if factor is not None:
                        arc_delay = arc_delay * factor
                    delay = max(delay, arc_delay)
            _append_preempt(out.events, when + delay, new_value)
        return out.normalized()

    def _latch_transform(
        self, wave: Waveform, held: int
    ) -> Waveform:
        """Apply a slave latch to a waveform.

        The latch holds ``held`` until it opens; at the opening edge it
        samples its input (CK->Q), then passes transitions during
        transparency (D->Q) and goes opaque at the closing edge.
        """
        scheme = self.circuit.scheme
        t_open = scheme.slave_open
        t_close = scheme.slave_close
        ck_q = self.circuit.latch_ck_q
        d_q = self.circuit.latch_d_q

        out = Waveform(initial=held)
        opening_value = wave.value_at(t_open)
        if opening_value != held:
            out.events.append((t_open + ck_q, opening_value))
        for when, value in wave.events:
            if t_open < when <= t_close:
                # Preemption: a transparent event can undercut the
                # opening-edge event when CK->Q exceeds its D->Q lag.
                _append_preempt(out.events, when + d_q, value)
        return out.normalized()

    # -- cycle evaluation -----------------------------------------------------

    def run_cycle(
        self,
        launch_values: Mapping[str, int],
        placement: SlavePlacement,
        latch_state: Dict[str, int],
        glitches: Sequence[GlitchSpec] = (),
    ) -> Dict[str, Waveform]:
        """Evaluate one clock cycle.

        ``launch_values`` gives the value each source (PI / master Q)
        launches at time 0; the previous cycle's value is taken from
        ``latch_state`` under key ``"src:<name>"``.  Latched edges read
        and update their held value in ``latch_state`` under key
        ``"latch:<driver>:<sink>"``.

        ``glitches`` are this cycle's injected pulses; each strikes
        the named net's *wire* (consumers and cloud latches see the
        glitched waveform) after the net's own evaluation and held-
        state bookkeeping — the stored latch value is not corrupted,
        only the propagating signal (SEU state flips model the former).

        Returns the waveform of every net, with endpoint waveforms
        (flop D / PO) included under the endpoint name.
        """
        netlist = self.netlist
        waves: Dict[str, Waveform] = {}
        latched_out: Dict[Tuple[str, str], Waveform] = {}
        glitch_map: Dict[str, List[GlitchSpec]] = {}
        for spec in glitches:
            glitch_map.setdefault(spec.net, []).append(spec)

        def edge_wave(driver: str, sink: str) -> Waveform:
            if placement.edge_weight_after(netlist, driver, sink) != 1:
                return waves[driver]
            key = (driver, sink)
            cached = latched_out.get(key)
            if cached is None:
                held = latch_state.get(f"latch:{driver}:{sink}", 0)
                cached = self._latch_transform(waves[driver], held)
                latched_out[key] = cached
            return cached

        for gate in netlist.sources():
            name = gate.name
            previous = latch_state.get(f"src:{name}", 0)
            value = int(bool(launch_values.get(name, previous)))
            wave = Waveform.step(previous, 0.0, value)
            if placement.edge_weight_after(netlist, HOST, name) == 1:
                held = latch_state.get(f"latch:{HOST}:{name}", 0)
                wave = self._latch_transform(wave, held)
                latch_state[f"latch:{HOST}:{name}"] = wave.final
            specs = glitch_map.get(name)
            if specs:
                wave = apply_glitches(wave, specs)
            waves[name] = wave
            latch_state[f"src:{name}"] = value

        for name in self._order:
            gate = netlist[name]
            inputs = [edge_wave(driver, name) for driver in gate.fanins]
            wave = self._evaluate_gate(gate, inputs)
            specs = glitch_map.get(name)
            if specs:
                wave = apply_glitches(wave, specs)
            waves[name] = wave

        results: Dict[str, Waveform] = dict(waves)
        for gate in netlist.endpoints():
            if not gate.fanins:
                raise NetlistError(
                    [f"endpoint {gate.name!r} has no fanins; cannot "
                     f"simulate its data input"]
                )
            driver = gate.fanins[0]
            if gate.gtype is GateType.DFF:
                results[f"{gate.name}::d"] = edge_wave(driver, gate.name)
            else:
                results[gate.name] = edge_wave(driver, gate.name)

        # Update held values of cloud latches for the next cycle.
        for (driver, sink), wave in latched_out.items():
            latch_state[f"latch:{driver}:{sink}"] = wave.value_at(
                self.circuit.scheme.slave_close
            )
        return results
