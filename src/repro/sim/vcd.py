"""VCD (value-change dump) export of simulated waveforms.

Lets a downstream user open one simulated clock cycle in GTKWave and
see the resiliency window violations the error-rate estimator counts.
Times are scaled to integer femtoseconds (delays are nanoseconds).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TextIO, Tuple

from repro.sim.logicsim import Waveform

_TIME_SCALE = 1_000_000  # ns -> fs


def _identifiers() -> Iterable[str]:
    """Short printable VCD identifiers: !, ", #, ... then pairs."""
    alphabet = [chr(c) for c in range(33, 127)]
    for char in alphabet:
        yield char
    for first in alphabet:
        for second in alphabet:
            yield first + second


def write_vcd(
    waves: Dict[str, Waveform],
    stream: TextIO,
    module: str = "repro",
    signals: Optional[List[str]] = None,
    timescale: str = "1fs",
) -> None:
    """Dump waveforms (one clock cycle) as a VCD file.

    ``signals`` selects and orders the dumped nets; default is every
    waveform, sorted by name.
    """
    names = signals if signals is not None else sorted(waves)
    idents: Dict[str, str] = {}
    pool = _identifiers()
    for name in names:
        if name not in waves:
            raise KeyError(f"no waveform for {name!r}")
        idents[name] = next(pool)

    stream.write("$date repro simulation $end\n")
    stream.write(f"$timescale {timescale} $end\n")
    stream.write(f"$scope module {module} $end\n")
    for name in names:
        safe = name.replace(" ", "_")
        stream.write(f"$var wire 1 {idents[name]} {safe} $end\n")
    stream.write("$upscope $end\n$enddefinitions $end\n")

    stream.write("#0\n$dumpvars\n")
    for name in names:
        stream.write(f"{waves[name].initial}{idents[name]}\n")
    stream.write("$end\n")

    events: List[Tuple[int, str, int]] = []
    for name in names:
        value = waves[name].initial
        for when, new_value in waves[name].events:
            if new_value != value:
                events.append(
                    (int(round(when * _TIME_SCALE)), idents[name], new_value)
                )
                value = new_value
    events.sort(key=lambda item: item[0])

    current_time = 0
    for when, ident, value in events:
        if when != current_time:
            stream.write(f"#{when}\n")
            current_time = when
        stream.write(f"{value}{ident}\n")


def vcd_text(waves: Dict[str, Waveform], **kwargs) -> str:
    """Convenience: dump to a string."""
    import io

    buffer = io.StringIO()
    write_vcd(waves, buffer, **kwargs)
    return buffer.getvalue()
