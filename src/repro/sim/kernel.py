"""Compiled simulation kernel: compile once, run many cycles.

:class:`~repro.sim.logicsim.TimedSimulator` re-derives everything per
cycle: each gate evaluation linearly scans every input waveform for
``value_at``, runs an O(events²) ``abs(t - when) < eps`` causing-pin
search, and re-computes arc delays through the STA calculator even
though the load and slew it evaluates them at are cycle-invariant.
For the Table VIII sweep (hundreds of cycles over a fixed
``(circuit, placement)``) that per-cycle rediscovery dominates the
whole suite run.

:class:`CompiledSimulator` hoists the cycle-invariant work into a
one-time compile:

* the topological schedule of combinational gates, with every net —
  source, gate output, or latched edge — assigned a flat slot index;
* per-gate, per-pin arc delays pre-evaluated at the static load / slew
  the STA calculator reports, split by output edge direction;
* per-gate truth tables (cycles index a tuple instead of calling the
  cell's evaluator);
* latch-edge classification under the placement, with the
  ``latch:<driver>:<sink>`` state keys pre-rendered.

Cycle evaluation then works on flat ``(initial, times, values)``
tuples with monotone event cursors — one for the inclusive
``value_at`` semantics, one for the causing-pin tolerance window — so
a gate with E input events costs O(E) instead of O(E²).

**Parity is the contract**: the kernel reproduces the event-driven
backend bit for bit — same candidate-time set, same inclusive
``value_at`` semantics, same ``abs(t - when) < 1e-15`` causing-pin
tolerance, same preemption and normalization, same ``latch_state``
evolution — so ``estimate_error_rate(backend="compiled")`` returns an
:class:`~repro.sim.errorrate.ErrorRateReport` identical to the
event-driven one.  ``tests/test_sim_regressions.py`` pins this down
per suite circuit and placement.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cells.cell import CombCell
from repro.errors import NetlistError
from repro.latches.placement import HOST, SlavePlacement
from repro.latches.resilient import TwoPhaseCircuit
from repro.netlist.netlist import GateType
from repro.scenarios.injectors import GlitchSpec, glitch_events
from repro.sim.logicsim import (
    MAX_EVENTS_PER_NET,
    Waveform,
    check_event_cap,
)

#: Causing-pin tolerance — must match ``TimedSimulator._evaluate_gate``.
_EPS = 1e-15

#: Truth tables are tabulated up to this many inputs; wider gates fall
#: back to the cell's evaluator (none exist in the bundled library).
_MAX_TABLE_INPUTS = 10

#: A waveform in kernel form: (initial value, transition times,
#: values after each transition).  Times are sorted strictly
#: increasing and values are pruned to actual changes, exactly like
#: ``Waveform.normalized``.
_Wave = Tuple[int, List[float], List[int]]

_EMPTY: Tuple = ()


def _glitched(
    wave: _Wave, specs: Optional[Sequence[GlitchSpec]]
) -> _Wave:
    """``wave`` with ``specs`` applied (no-op when ``specs`` is falsy)."""
    if not specs:
        return wave
    initial, times, values = wave
    for spec in specs:
        times, values = glitch_events(initial, times, values, spec)
    return (initial, times, values)


class CompiledSimulator:
    """Compile-once, run-many backend for a fixed (circuit, placement).

    Unlike :class:`~repro.sim.logicsim.TimedSimulator.run_cycle`, the
    returned mapping holds only the *endpoint* waveforms (flop D under
    ``"<name>::d"``, POs under their own name) — the per-net interior
    waveforms stay in flat kernel form and are never materialized.
    ``latch_state`` is read and updated with exactly the keys and
    values the event-driven backend uses, so the two backends can run
    in lockstep from a shared state dict.
    """

    def __init__(
        self,
        circuit: TwoPhaseCircuit,
        placement: SlavePlacement,
        max_events_per_net: int = MAX_EVENTS_PER_NET,
        delay_scale: Optional[Mapping[str, float]] = None,
    ) -> None:
        if circuit.library is None:
            raise ValueError("simulation needs a library")
        self.circuit = circuit
        self.placement = placement
        self.max_events_per_net = max_events_per_net
        self.delay_scale = dict(delay_scale or {})
        netlist = circuit.netlist
        library = circuit.library
        calc = circuit.engine.calculator
        scheme = circuit.scheme

        # Latch constants (floats identical to the event backend's:
        # same operands, same operations).
        self._t_open = scheme.slave_open
        self._t_close = scheme.slave_close
        self._d_q = circuit.latch_d_q
        self._open_edge = self._t_open + circuit.latch_ck_q

        # -- slot assignment ---------------------------------------------
        slot_of: Dict[str, int] = {}

        def new_slot(name: str) -> int:
            slot_of[name] = len(slot_of)
            return slot_of[name]

        #: (state_key, latched-wave slot) for every latched cloud edge;
        #: drives the end-of-cycle held-value update.
        self._latch_updates: List[Tuple[str, int]] = []
        latch_slot: Dict[Tuple[str, str], Tuple[int, int, str]] = {}

        def edge_latched(driver: str, sink: str) -> bool:
            return placement.edge_weight_after(netlist, driver, sink) == 1

        def latch_op(driver: str, sink: str) -> Tuple[int, int, str]:
            """(driver slot, latched slot, state key) for a latched
            edge, shared across duplicate fanin positions."""
            op = latch_slot.get((driver, sink))
            if op is None:
                key = f"latch:{driver}:{sink}"
                op = (slot_of[driver], new_slot(key), key)
                latch_slot[(driver, sink)] = op
                self._latch_updates.append((key, op[1]))
            return op

        # -- sources -----------------------------------------------------
        #: (name, slot, "src:<name>" key, host-latch key or None)
        self._sources: List[Tuple[str, int, str, Optional[str]]] = [
            (
                gate.name,
                new_slot(gate.name),
                f"src:{gate.name}",
                f"latch:{HOST}:{gate.name}"
                if edge_latched(HOST, gate.name)
                else None,
            )
            for gate in netlist.sources()
        ]

        # -- combinational schedule --------------------------------------
        #: (name, out slot, input slots, latch ops, per-pin delays
        #: indexed by new value, truth table, evaluator fallback)
        self._schedule: List[tuple] = []
        for name in netlist.topo_order():
            gate = netlist[name]
            if not gate.is_comb:
                continue
            cell = library[gate.cell]
            if not isinstance(cell, CombCell):
                raise NetlistError(
                    [f"gate {gate.name!r}: cell {gate.cell!r} is not "
                     f"combinational"]
                )
            load = calc.load(name)
            # Delay-corner injection: scale every arc *before* the
            # slowest-causing-arc max, the same multiplication the
            # event backend applies per causing pin — the two stay
            # bit-identical because x * f is deterministic and max
            # commutes with multiplication by a positive factor.
            factor = self.delay_scale.get(name)
            pairs: List[Tuple[float, float]] = []
            for pin, fanin in zip(cell.inputs, gate.fanins):
                arc = cell.arc(pin)
                slew = calc.slew(fanin)
                fall = arc.delay_for_output_edge(
                    rising_output=False, load=load, input_slew=slew
                )
                rise = arc.delay_for_output_edge(
                    rising_output=True, load=load, input_slew=slew
                )
                if factor is not None:
                    fall = fall * factor
                    rise = rise * factor
                pairs.append((fall, rise))
            delays = tuple(pairs)
            n_inputs = len(gate.fanins)
            table: Optional[Tuple[int, ...]] = None
            if n_inputs <= _MAX_TABLE_INPUTS:
                table = tuple(
                    cell.evaluate(
                        [(mask >> i) & 1 for i in range(n_inputs)]
                    )
                    for mask in range(1 << n_inputs)
                )
            ops: List[Tuple[int, int, str]] = []
            in_slots: List[int] = []
            for driver in gate.fanins:
                if edge_latched(driver, name):
                    op = latch_op(driver, name)
                    if op not in ops:
                        ops.append(op)
                    in_slots.append(op[1])
                else:
                    in_slots.append(slot_of[driver])
            self._schedule.append(
                (
                    name,
                    new_slot(name),
                    tuple(in_slots),
                    tuple(ops),
                    delays,
                    table,
                    cell.evaluate,
                )
            )

        # -- endpoints ---------------------------------------------------
        #: (result key, wave slot, latch op or None)
        self._endpoints: List[
            Tuple[str, int, Optional[Tuple[int, int, str]]]
        ] = []
        for gate in netlist.endpoints():
            if not gate.fanins:
                raise NetlistError(
                    [f"endpoint {gate.name!r} has no fanins; cannot "
                     f"simulate its data input"]
                )
            driver = gate.fanins[0]
            result_key = (
                f"{gate.name}::d"
                if gate.gtype is GateType.DFF
                else gate.name
            )
            if edge_latched(driver, gate.name):
                op = latch_op(driver, gate.name)
                self._endpoints.append((result_key, op[1], op))
            else:
                self._endpoints.append(
                    (result_key, slot_of[driver], None)
                )

        self._n_slots = len(slot_of)

    # -- latch transform ---------------------------------------------------

    def _latch_transform(self, wave: _Wave, held: int) -> _Wave:
        """Kernel twin of ``TimedSimulator._latch_transform``."""
        initial, times, values = wave
        t_open = self._t_open
        t_close = self._t_close
        d_q = self._d_q
        events: List[Tuple[float, int]] = []
        index = bisect_right(times, t_open)
        opening_value = values[index - 1] if index else initial
        if opening_value != held:
            events.append((self._open_edge, opening_value))
        for when, value in zip(times, values):
            if t_open < when <= t_close:
                out_time = when + d_q
                while events and events[-1][0] >= out_time:
                    events.pop()
                events.append((out_time, value))
        out_times: List[float] = []
        out_values: List[int] = []
        value = held
        for when, new_value in events:
            if new_value != value:
                out_times.append(when)
                out_values.append(new_value)
                value = new_value
        return (held, out_times, out_values)

    # -- cycle evaluation ----------------------------------------------------

    def run_cycle(
        self,
        launch_values: Mapping[str, int],
        latch_state: Dict[str, int],
        glitches: Sequence[GlitchSpec] = (),
    ) -> Dict[str, Waveform]:
        """Evaluate one clock cycle; returns the endpoint waveforms.

        ``glitches`` strike net *wires* with the same semantics and at
        the same point in the pipeline as the event backend: after the
        net's own evaluation and held-state bookkeeping, before any
        consumer (gate or cloud latch) reads it.
        """
        slots: List[Optional[_Wave]] = [None] * self._n_slots
        state_get = latch_state.get
        launch_get = launch_values.get
        transform = self._latch_transform
        max_events = self.max_events_per_net
        glitch_map: Dict[str, List[GlitchSpec]] = {}
        for spec in glitches:
            glitch_map.setdefault(spec.net, []).append(spec)

        for name, slot, src_key, host_key in self._sources:
            previous = state_get(src_key, 0)
            value = 1 if launch_get(name, previous) else 0
            if value != previous:
                wave: _Wave = (previous, [0.0], [value])
            else:
                wave = (previous, _EMPTY, _EMPTY)
            if host_key is not None:
                wave = transform(wave, state_get(host_key, 0))
                latch_state[host_key] = (
                    wave[2][-1] if wave[2] else wave[0]
                )
            slots[slot] = _glitched(wave, glitch_map.get(name))
            latch_state[src_key] = value

        for (
            name,
            out_slot,
            in_slots,
            latch_ops,
            delays,
            table,
            evaluate,
        ) in self._schedule:
            for src_slot, dst_slot, key in latch_ops:
                slots[dst_slot] = transform(
                    slots[src_slot], state_get(key, 0)
                )

            if len(in_slots) == 1:
                # Fast path: the input's own transitions are the
                # candidate set, and the single pin always causes.
                initial, in_times, in_values = slots[in_slots[0]]
                out_initial = table[initial]
                if not in_times:
                    slots[out_slot] = _glitched(
                        (out_initial, _EMPTY, _EMPTY),
                        glitch_map.get(name),
                    )
                    continue
                check_event_cap(name, len(in_times), max_events)
                pin_delay = delays[0]
                events: List[Tuple[float, int]] = []
                for when, value in zip(in_times, in_values):
                    new_value = table[value]
                    out_time = when + pin_delay[new_value]
                    while events and events[-1][0] >= out_time:
                        events.pop()
                    events.append((out_time, new_value))
            elif len(in_slots) == 2:
                # Fast path: merge the two sorted transition lists
                # directly — no candidate set, no per-pin list traffic.
                init_a, times_a, values_a = slots[in_slots[0]]
                init_b, times_b, values_b = slots[in_slots[1]]
                out_initial = table[init_a | (init_b << 1)]
                len_a = len(times_a)
                len_b = len(times_b)
                if not (len_a or len_b):
                    slots[out_slot] = _glitched(
                        (out_initial, _EMPTY, _EMPTY),
                        glitch_map.get(name),
                    )
                    continue
                delay_a, delay_b = delays
                value_a = init_a
                value_b = init_b
                pos_a = pos_b = 0
                cause_a = cause_b = 0
                n_candidates = 0
                events = []
                while pos_a < len_a or pos_b < len_b:
                    if pos_b >= len_b or (
                        pos_a < len_a and times_a[pos_a] <= times_b[pos_b]
                    ):
                        when = times_a[pos_a]
                    else:
                        when = times_b[pos_b]
                    n_candidates += 1
                    while pos_a < len_a and times_a[pos_a] <= when:
                        value_a = values_a[pos_a]
                        pos_a += 1
                    while pos_b < len_b and times_b[pos_b] <= when:
                        value_b = values_b[pos_b]
                        pos_b += 1
                    new_value = table[value_a | (value_b << 1)]
                    delay = 0.0
                    lo_bound = when - _EPS
                    hi_bound = when + _EPS
                    while (
                        cause_a < len_a and times_a[cause_a] <= lo_bound
                    ):
                        cause_a += 1
                    if cause_a < len_a and times_a[cause_a] < hi_bound:
                        delay = delay_a[new_value]
                    while (
                        cause_b < len_b and times_b[cause_b] <= lo_bound
                    ):
                        cause_b += 1
                    if cause_b < len_b and times_b[cause_b] < hi_bound:
                        arc_delay = delay_b[new_value]
                        if arc_delay > delay:
                            delay = arc_delay
                    out_time = when + delay
                    while events and events[-1][0] >= out_time:
                        events.pop()
                    events.append((out_time, new_value))
                if n_candidates > max_events:
                    check_event_cap(name, n_candidates, max_events)
            else:
                waves_in = [slots[s] for s in in_slots]
                times_set: set = set()
                for wave in waves_in:
                    times_set.update(wave[1])
                n_events = len(times_set)
                if n_events > max_events:
                    check_event_cap(name, n_events, max_events)
                current = [wave[0] for wave in waves_in]
                if table is not None:
                    mask = 0
                    for i, bit in enumerate(current):
                        mask |= bit << i
                    out_initial = table[mask]
                else:
                    out_initial = evaluate(current)
                if not n_events:
                    slots[out_slot] = _glitched(
                        (out_initial, _EMPTY, _EMPTY),
                        glitch_map.get(name),
                    )
                    continue
                candidate_times = sorted(times_set)
                k = len(waves_in)
                pins = range(k)
                times_in = [wave[1] for wave in waves_in]
                values_in = [wave[2] for wave in waves_in]
                lengths = [len(t) for t in times_in]
                value_cursor = [0] * k
                cause_cursor = [0] * k
                events = []
                for when in candidate_times:
                    for i in pins:
                        in_times = times_in[i]
                        cursor = value_cursor[i]
                        end = lengths[i]
                        if cursor < end and in_times[cursor] <= when:
                            while (
                                cursor < end
                                and in_times[cursor] <= when
                            ):
                                cursor += 1
                            current[i] = values_in[i][cursor - 1]
                            value_cursor[i] = cursor
                    if table is not None:
                        mask = 0
                        for i, bit in enumerate(current):
                            mask |= bit << i
                        new_value = table[mask]
                    else:
                        new_value = evaluate(current)
                    delay = 0.0
                    lo_bound = when - _EPS
                    hi_bound = when + _EPS
                    for i in pins:
                        end = lengths[i]
                        if not end:
                            continue
                        in_times = times_in[i]
                        cursor = cause_cursor[i]
                        while (
                            cursor < end
                            and in_times[cursor] <= lo_bound
                        ):
                            cursor += 1
                        cause_cursor[i] = cursor
                        if cursor < end and in_times[cursor] < hi_bound:
                            arc_delay = delays[i][new_value]
                            if arc_delay > delay:
                                delay = arc_delay
                    out_time = when + delay
                    while events and events[-1][0] >= out_time:
                        events.pop()
                    events.append((out_time, new_value))

            out_times: List[float] = []
            out_values: List[int] = []
            value = out_initial
            for when, new_value in events:
                if new_value != value:
                    out_times.append(when)
                    out_values.append(new_value)
                    value = new_value
            slots[out_slot] = _glitched(
                (out_initial, out_times, out_values),
                glitch_map.get(name),
            )

        results: Dict[str, Waveform] = {}
        for result_key, slot, op in self._endpoints:
            if op is not None and slots[slot] is None:
                src_slot, dst_slot, key = op
                slots[dst_slot] = transform(
                    slots[src_slot], state_get(key, 0)
                )
            wave = slots[slot]
            results[result_key] = Waveform(
                initial=wave[0], events=list(zip(wave[1], wave[2]))
            )

        t_close = self._t_close
        for key, slot in self._latch_updates:
            wave = slots[slot]
            times = wave[1]
            index = bisect_right(times, t_close)
            latch_state[key] = wave[2][index - 1] if index else wave[0]
        return results
