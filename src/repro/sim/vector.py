"""Lane-vectorized Monte-Carlo simulation: seeds as an array axis.

:func:`~repro.sim.batch.estimate_error_rate_batched` removed the
per-seed compile, but every (cycle, lane, gate) step still runs in
pure Python — at 32 seeds the batched compiled backend is barely
faster than running the seeds sequentially.  This module makes the
Monte-Carlo seed axis a NumPy array dimension instead: per-lane
waveforms are held as padded ``(n_lanes, n_events)`` arrays and one
pass over a *level-batched* schedule advances every seed — and every
gate of a topological level — simultaneously.

The compile is reused, not duplicated: :class:`_VectorLanes` consumes
a :class:`~repro.sim.kernel.CompiledSimulator` (slot assignment, topo
schedule, per-pin arc delays, truth tables, latch-state keys) and only
regroups its schedule by (topological level, fanin arity) so that all
k-input gates of a level evaluate as one set of array ops.

**Parity is the contract**, exactly as for the kernel: the vectorized
primitives are algebraic twins of the kernel's event loops —

* preemption (``while events and events[-1][0] >= out_time: pop``)
  becomes a suffix-strict-minimum survivorship: an event survives iff
  its time is strictly below every later candidate's time;
* value-change pruning becomes an adjacent-difference against the
  previous surviving value (for 0/1 signals the running value after
  element *i* always equals ``values[i]``, kept or not);
* the inclusive ``value_at`` becomes a broadcast
  ``count(times <= t)`` gather, the causing-pin test a broadcast
  ``t in (when - 1e-15, when + 1e-15)`` window, and candidate sets a
  per-lane sort with exact-equality dedup —

so every float is produced by the same IEEE-754 operations on the
same operands and the per-seed :class:`ErrorRateReport` (including
``final_flop_state`` / ``final_latch_state``) is comparison-identical
to the event and compiled backends.  Event-cap overflow in any lane
raises the same typed
:class:`~repro.errors.SimulationError`; when several lanes overflow
on different gates of the same cycle, the vector backend reports the
earliest gate in schedule order (the batched backend, which finishes
one lane before starting the next, may name a later gate of an
earlier lane — the error type and cap accounting are identical).
"""

from __future__ import annotations

import ctypes
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.sim import _native

from repro import metrics
from repro.latches.placement import SlavePlacement
from repro.latches.resilient import TwoPhaseCircuit
from repro.scenarios.injectors import GlitchSpec, InjectionPlan
from repro.sim.errorrate import (
    ErrorRateReport,
    _check_plan_targets,
)
from repro.sim.kernel import _EPS, CompiledSimulator
from repro.sim.logicsim import MAX_EVENTS_PER_NET, check_event_cap
from repro.sim.vectors import VectorSource

_INF = np.inf

#: Lanes per array pass.  Blocks bound the padded-array footprint on
#: huge seed sweeps; the final block is ragged when ``len(seeds)`` is
#: not a multiple.  Reports are per-lane state, so the block split
#: cannot change them.
DEFAULT_LANE_BLOCK = 64


# ---------------------------------------------------------------------------
# vector primitives (algebraic twins of the kernel's event loops)
# ---------------------------------------------------------------------------


def _compact(
    times: np.ndarray, values: np.ndarray, keep: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Left-justify the kept events of each lane row.

    Returns ``(times, values, counts)`` with ``times`` padded by +inf
    past each lane's count and the width trimmed to the largest count.
    ``values`` padding re-uses dropped candidate values, so the global
    0/1 invariant (every stored value is a legal table index) holds.
    """
    counts = keep.sum(axis=-1)
    width = int(counts.max(initial=0))
    if width == 0:
        shape = counts.shape + (0,)
        return (
            np.empty(shape, dtype=times.dtype),
            np.empty(shape, dtype=values.dtype),
            counts,
        )
    order = np.argsort(~keep, axis=-1, kind="stable")[..., :width]
    out_t = np.take_along_axis(np.where(keep, times, _INF), order, axis=-1)
    out_v = np.take_along_axis(values, order, axis=-1)
    return out_t, out_v, counts


def _preempt_keep(out_times: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Survivors of the kernel's preemption pop-loop, in column order.

    Appending an event pops every trailing event with time >= the new
    time, so (processing columns left to right) an event survives iff
    its time is *strictly* below the minimum over all later valid
    events.  Invalid columns are +inf: they neither survive nor
    preempt.
    """
    t = np.where(valid, out_times, _INF)
    suffix = np.minimum.accumulate(t[..., ::-1], axis=-1)[..., ::-1]
    exclusive = np.concatenate(
        [suffix[..., 1:], np.full(t.shape[:-1] + (1,), _INF)], axis=-1
    )
    return valid & (t < exclusive)


def _prune_keep(
    values: np.ndarray, keep: np.ndarray, initial: np.ndarray
) -> np.ndarray:
    """Refine ``keep`` by value-change pruning against ``initial``.

    The kernel's running prune only skips an event when its value
    equals the running value, so the running value after element *i*
    always equals ``values[i]`` — pruning reduces to comparing each
    surviving element with the *previous surviving* element's value
    (forward-filled; ``initial`` before the first).
    """
    width = keep.shape[-1]
    if width == 0:
        return keep
    col = np.arange(width)
    kept_idx = np.where(keep, col, -1)
    last = np.maximum.accumulate(kept_idx, axis=-1)
    prev_idx = np.concatenate(
        [
            np.full(last.shape[:-1] + (1,), -1, dtype=last.dtype),
            last[..., :-1],
        ],
        axis=-1,
    )
    prev_val = np.take_along_axis(values, np.maximum(prev_idx, 0), axis=-1)
    prev_val = np.where(prev_idx >= 0, prev_val, initial[..., None])
    return keep & (values != prev_val)


def _normalize(
    out_times: np.ndarray,
    out_values: np.ndarray,
    valid: np.ndarray,
    out_initial: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Preempt, prune and compact one block of candidate events."""
    if out_times.shape[-1] == 0:
        counts = np.zeros(out_times.shape[:-1], dtype=np.int64)
        return out_times, out_values, counts
    keep = _preempt_keep(out_times, valid)
    keep = _prune_keep(out_values, keep, out_initial)
    return _compact(out_times, out_values, keep)


def _count_le(sorted_times: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Per query ``q``: how many times are <= ``q`` (both sorted).

    A stable argsort of ``[times | queries]`` ranks each query after
    every time it ties with (times come first in the concatenation),
    so a query's merged rank minus its own index among the queries is
    exactly the inclusive ``bisect_right`` count — O((w+C) log) per
    lane instead of the O(w*C) broadcast compare.  +inf padding in
    either operand yields garbage counts only for +inf queries, which
    callers mask.
    """
    w = sorted_times.shape[-1]
    c = queries.shape[-1]
    merged = np.concatenate(
        [sorted_times, np.broadcast_to(queries, sorted_times.shape[:-1] + (c,))],
        axis=-1,
    )
    order = np.argsort(merged, axis=-1, kind="stable")
    rank = np.empty_like(order)
    np.put_along_axis(rank, order, np.arange(w + c), axis=-1)
    return rank[..., w:] - np.arange(c)


def _count_lt(sorted_times: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Per query ``q``: how many times are strictly < ``q``.

    Same merged-rank trick with the queries *first* in the
    concatenation, so ties rank the query before the equal times —
    the strict ``bisect_left`` count.
    """
    w = sorted_times.shape[-1]
    c = queries.shape[-1]
    merged = np.concatenate(
        [np.broadcast_to(queries, sorted_times.shape[:-1] + (c,)), sorted_times],
        axis=-1,
    )
    order = np.argsort(merged, axis=-1, kind="stable")
    rank = np.empty_like(order)
    np.put_along_axis(rank, order, np.arange(w + c), axis=-1)
    return rank[..., :c] - np.arange(c)


def _value_at(
    times: np.ndarray,
    values: np.ndarray,
    initial: np.ndarray,
    when: float,
) -> np.ndarray:
    """Inclusive ``value_at(when)`` per lane (padding is +inf)."""
    if times.shape[-1] == 0:
        return initial.copy()
    idx = (times <= when).sum(axis=-1)
    got = np.take_along_axis(
        values, np.maximum(idx - 1, 0)[..., None], axis=-1
    )[..., 0]
    return np.where(idx > 0, got, initial)


def _final_value(
    values: np.ndarray, counts: np.ndarray, initial: np.ndarray
) -> np.ndarray:
    """The settled (last) value per lane: ``Waveform.final``."""
    if values.shape[-1] == 0:
        return initial.copy()
    got = np.take_along_axis(
        values, np.maximum(counts - 1, 0)[..., None], axis=-1
    )[..., 0]
    return np.where(counts > 0, got, initial)


def _glitch_lanes(
    times: np.ndarray,
    values: np.ndarray,
    counts: np.ndarray,
    initial: np.ndarray,
    spec: GlitchSpec,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vector twin of :func:`~repro.scenarios.injectors.glitch_events`.

    One shared spec strikes every lane: pre-pulse events, the forced
    complement at ``start``, the restore at ``end``, then post-pulse
    events — renormalized by the same running value-change prune.
    """
    start = spec.start
    end = spec.start + spec.width
    at_start = _value_at(times, values, initial, start)
    at_end = _value_at(times, values, initial, end)
    forced = 1 - at_start
    width = times.shape[-1]
    lanes = times.shape[:-1]
    col_valid = np.arange(width) < counts[..., None]
    pre = col_valid & (times < start)
    post = col_valid & (times > end)
    one = np.ones(lanes + (1,), dtype=bool)
    cand_t = np.concatenate(
        [
            times,
            np.full(lanes + (1,), start),
            np.full(lanes + (1,), end),
            times,
        ],
        axis=-1,
    )
    cand_v = np.concatenate(
        [values, forced[..., None], at_end[..., None], values], axis=-1
    )
    keep = np.concatenate([pre, one, one, post], axis=-1)
    keep = _prune_keep(cand_v, keep, initial)
    return _compact(cand_t, cand_v, keep)


# ---------------------------------------------------------------------------
# the level-batched lane engine
# ---------------------------------------------------------------------------


class _VectorLanes:
    """All lanes of one seed block, advanced cycle by cycle.

    Waveforms live in global padded arrays indexed by the kernel's
    slot numbers — ``times``/``values`` are ``(n_slots, L, W)`` with
    +inf time padding, plus per-slot ``counts`` and ``initial`` arrays
    of shape ``(n_slots, L)``.  Latch/source held state is one
    ``(n_state, L)`` array addressed through the kernel's pre-rendered
    state keys; flop capture state is ``(n_flops, L)``.
    """

    def __init__(
        self,
        kernel: CompiledSimulator,
        edl_endpoints: Set[str],
        seeds: Sequence[int],
        toggle_probability: float,
        cycles: int,
        plan: InjectionPlan,
    ) -> None:
        self.kernel = kernel
        self.plan = plan
        self.cycles = cycles
        self.n_lanes = len(seeds)
        netlist = kernel.circuit.netlist
        scheme = kernel.circuit.scheme
        self._t_open = kernel._t_open
        self._t_close = kernel._t_close
        self._d_q = kernel._d_q
        self._open_edge = kernel._open_edge
        self._w_open = scheme.window_open
        self._w_close = scheme.window_close
        self._cap = kernel.max_events_per_net
        self._native = _native.load()
        L = self.n_lanes

        # -- state index (same keys as the dict the kernel maintains) --
        self._state_index: Dict[str, int] = {}
        for _, _, src_key, host_key in kernel._sources:
            self._state_index.setdefault(src_key, len(self._state_index))
            if host_key is not None:
                self._state_index.setdefault(
                    host_key, len(self._state_index)
                )
        for key, _ in kernel._latch_updates:
            self._state_index.setdefault(key, len(self._state_index))
        self._state = np.zeros((len(self._state_index), L), dtype=np.int64)
        #: SEU targets outside the maintained state (validated latch
        #: keys the compile never touches) — created on first flip,
        #: exactly like the dict backends.
        self._extra_state: Dict[str, np.ndarray] = {}

        # -- sources ----------------------------------------------------
        self._pi_names = [g.name for g in netlist.inputs()]
        pi_col = {name: i for i, name in enumerate(self._pi_names)}
        self._flop_names = [g.name for g in netlist.flops()]
        flop_row = {name: i for i, name in enumerate(self._flop_names)}
        self._flop_row = flop_row
        self._flop_state = np.zeros((len(self._flop_names), L), np.int64)

        src_slots: List[int] = []
        src_state: List[int] = []
        pi_rows: List[int] = []
        pi_cols: List[int] = []
        flop_rows: List[int] = []
        flop_src: List[int] = []
        host_rows: List[int] = []
        host_state: List[int] = []
        self._net_slot: Dict[str, int] = {}
        self._net_level: Dict[str, int] = {}
        for row, (name, slot, src_key, host_key) in enumerate(
            kernel._sources
        ):
            src_slots.append(slot)
            src_state.append(self._state_index[src_key])
            self._net_slot[name] = slot
            self._net_level[name] = 0
            if name in pi_col:
                pi_rows.append(row)
                pi_cols.append(pi_col[name])
            elif name in flop_row:
                flop_rows.append(row)
                flop_src.append(flop_row[name])
            if host_key is not None:
                host_rows.append(row)
                host_state.append(self._state_index[host_key])
        self._src_slots = np.asarray(src_slots, dtype=np.intp)
        self._src_state = np.asarray(src_state, dtype=np.intp)
        self._pi_rows = np.asarray(pi_rows, dtype=np.intp)
        self._pi_cols = np.asarray(pi_cols, dtype=np.intp)
        self._flop_rows = np.asarray(flop_rows, dtype=np.intp)
        self._flop_src = np.asarray(flop_src, dtype=np.intp)
        self._host_rows = np.asarray(host_rows, dtype=np.intp)
        self._host_state = np.asarray(host_state, dtype=np.intp)

        # -- pre-drawn lane-major input vectors --------------------------
        # Per-lane ``random.Random`` streams are part of the parity
        # contract, so the draws stay in Python — hoisted out of the
        # cycle loop into one (cycles, L, n_pi) block.
        self._pi_matrix = np.zeros(
            (cycles, L, len(self._pi_names)), dtype=np.int8
        )
        for lane, seed in enumerate(seeds):
            source = VectorSource(
                self._pi_names,
                seed=seed,
                toggle_probability=toggle_probability,
            )
            names = self._pi_names
            for cycle in range(cycles):
                vector = source.next_vector()
                self._pi_matrix[cycle, lane] = [
                    vector[name] for name in names
                ]

        # -- level-batched schedule --------------------------------------
        # Group the kernel's topological schedule by level: gates of
        # one level never feed each other, so a whole level evaluates
        # as one set of array ops.  Narrower gates are padded to the
        # level's widest arity with a dummy always-empty input slot,
        # zero pad delays, and truth tables tiled over the unused high
        # bits — a pad pin holds a constant 0, never produces a
        # candidate and never causes, so the padding is parity-free
        # (the event-cap count is also unchanged: a 1-input gate's
        # normalized input times are strictly increasing, so the
        # deduped candidate count equals the kernel's raw input
        # count).  A latched input's level is its driver's level; the
        # transform runs in a latch stage at the consumer's level,
        # before that level's gates.
        self._dummy_slot = kernel._n_slots
        dst_src: Dict[int, int] = {}
        slot_level: Dict[int, int] = {s: 0 for s in src_slots}
        latch_groups: Dict[int, List[Tuple[int, int, int]]] = {}
        gate_groups: Dict[int, List[tuple]] = {}
        py_groups: Dict[int, List[tuple]] = {}
        max_level = 0
        for pos, entry in enumerate(kernel._schedule):
            name, out_slot, in_slots, latch_ops, delays, table, _ev = entry
            for src_slot, dst_slot, key in latch_ops:
                dst_src[dst_slot] = src_slot
            level = 1 + max(
                (slot_level[dst_src.get(s, s)] for s in in_slots),
                default=0,
            )
            slot_level[out_slot] = level
            max_level = max(max_level, level)
            self._net_slot[name] = out_slot
            self._net_level[name] = level
            for src_slot, dst_slot, key in latch_ops:
                latch_groups.setdefault(level, []).append(
                    (src_slot, dst_slot, self._state_index[key])
                )
            if table is None:
                py_groups.setdefault(level, []).append((pos, entry))
            else:
                gate_groups.setdefault(level, []).append((pos, entry))

        def pack_latch(ops: List[Tuple[int, int, int]]) -> tuple:
            arr = np.asarray(ops, dtype=np.intp)
            # Contiguous int64 copies: the native helper reads the
            # slot arrays directly via ctypes.
            src = np.ascontiguousarray(arr[:, 0], dtype=np.int64)
            dst = np.ascontiguousarray(arr[:, 1], dtype=np.int64)
            return ("latch", src, dst, arr[:, 2])

        def pack_gates(entries: List[tuple]) -> tuple:
            n = len(entries)
            kmax = max(len(e[1][2]) for e in entries)
            names = [e[1][0] for e in entries]
            pos = np.asarray([e[0] for e in entries], dtype=np.int64)
            out = np.ascontiguousarray(
                [e[1][1] for e in entries], dtype=np.int64
            )
            ins = np.full((n, kmax), self._dummy_slot, dtype=np.int64)
            # True 1-input gates keep the kernel's fast-path
            # semantics: the single pin always causes, without the
            # eps-window test (the two only differ when `when - eps`
            # rounds back to `when`).
            single = np.zeros(n, dtype=np.int64)
            delays = np.zeros((n, kmax, 2), dtype=np.float64)
            tables = np.empty((n, 1 << kmax), dtype=np.int64)
            for row, (_pos, entry) in enumerate(entries):
                in_slots = entry[2]
                k = len(in_slots)
                ins[row, :k] = in_slots
                single[row] = 1 if k == 1 else 0
                delays[row, :k] = entry[4]  # (pin, new_value)
                tables[row] = np.tile(
                    np.asarray(entry[5], dtype=np.int64),
                    1 << (kmax - k),
                )
            return (
                "gate", kmax, names, pos, out, ins, delays, tables, single
            )

        self._stages: List[tuple] = []
        for level in range(1, max_level + 1):
            if level in latch_groups:
                self._stages.append(pack_latch(latch_groups[level]))
            if level in gate_groups:
                self._stages.append(pack_gates(gate_groups[level]))
            if level in py_groups:
                self._stages.append(("pygate", py_groups[level]))
            self._stages.append(("glitch", level))

        # Endpoint-only latch ops (a latched edge whose sink is an
        # endpoint is never consumed by a gate).
        endpoint_ops = {
            op for _, _, op in kernel._endpoints if op is not None
        }
        if endpoint_ops:
            self._stages.append(
                pack_latch(
                    [
                        (src, dst, self._state_index[key])
                        for src, dst, key in sorted(endpoint_ops)
                    ]
                )
            )

        # -- endpoints ----------------------------------------------------
        ep_names = [g.name for g in netlist.endpoints()]
        self._ep_names = ep_names
        self._ep_slots = np.asarray(
            [slot for _, slot, _ in kernel._endpoints], dtype=np.intp
        )
        self._edl_mask = np.asarray(
            [name in edl_endpoints for name in ep_names], dtype=bool
        )
        ep_row = {name: i for i, name in enumerate(ep_names)}
        self._flop_ep_rows = np.asarray(
            [ep_row[name] for name in self._flop_names], dtype=np.intp
        )
        lu = kernel._latch_updates
        self._lu_slots = np.asarray([s for _, s in lu], dtype=np.intp)
        self._lu_state = np.asarray(
            [self._state_index[k] for k, _ in lu], dtype=np.intp
        )

        # -- global waveform arrays --------------------------------------
        # One extra slot (the last) is the dummy pad input: count 0,
        # initial 0, all-inf times — written once here, never again.
        n_slots = kernel._n_slots + 1
        self._width = 4
        self._times = np.full((n_slots, L, self._width), _INF)
        self._values = np.zeros((n_slots, L, self._width), dtype=np.int64)
        self._counts = np.zeros((n_slots, L), dtype=np.int64)
        self._inits = np.zeros((n_slots, L), dtype=np.int64)

        # -- per-lane accumulators ---------------------------------------
        self._error_cycles = np.zeros(L, dtype=np.int64)
        self._non_edl = np.zeros(L, dtype=np.int64)
        self._per_endpoint = np.zeros((len(ep_names), L), dtype=np.int64)

    # -- waveform storage --------------------------------------------------

    def _ensure_width(self, width: int) -> None:
        if width <= self._width:
            return
        grow = max(width, self._width * 2)
        pad = grow - self._width
        self._times = np.concatenate(
            [self._times, np.full(self._times.shape[:2] + (pad,), _INF)],
            axis=-1,
        )
        self._values = np.concatenate(
            [
                self._values,
                np.zeros(self._values.shape[:2] + (pad,), dtype=np.int64),
            ],
            axis=-1,
        )
        self._width = grow

    def _write(
        self,
        slots: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
        counts: np.ndarray,
        inits: np.ndarray,
    ) -> None:
        width = times.shape[-1]
        self._ensure_width(width)
        self._times[slots, :, :width] = times
        self._times[slots, :, width:] = _INF
        self._values[slots, :, :width] = values
        self._counts[slots] = counts
        self._inits[slots] = inits

    def _read(
        self, slots: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        counts = self._counts[slots]
        width = int(counts.max(initial=0))
        return (
            self._times[slots][..., :width],
            self._values[slots][..., :width],
            counts,
            self._inits[slots],
        )

    # -- latch transform ---------------------------------------------------

    def _latch_batch(
        self,
        times: np.ndarray,
        values: np.ndarray,
        counts: np.ndarray,
        initial: np.ndarray,
        held: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vector twin of ``CompiledSimulator._latch_transform``."""
        opening = _value_at(times, values, initial, self._t_open)
        lanes = held.shape
        lead_t = np.full(lanes + (1,), self._open_edge)
        lead_v = opening[..., None]
        lead_valid = (opening != held)[..., None]
        window = (times > self._t_open) & (times <= self._t_close)
        cand_t = np.concatenate([lead_t, times + self._d_q], axis=-1)
        cand_v = np.concatenate([lead_v, values], axis=-1)
        valid = np.concatenate([lead_valid, window], axis=-1)
        return _normalize(cand_t, cand_v, valid, held)

    # -- stages ------------------------------------------------------------

    def _run_sources(self, cycle: int) -> None:
        state = self._state
        prev = state[self._src_state]
        launch = prev.copy()
        if self._pi_rows.size:
            launch[self._pi_rows] = self._pi_matrix[cycle].T[self._pi_cols]
        if self._flop_rows.size:
            launch[self._flop_rows] = self._flop_state[self._flop_src]
        has = launch != prev
        times = np.where(has, 0.0, _INF)[..., None]
        values = launch[..., None]
        counts = has.astype(np.int64)
        self._write(self._src_slots, times, values, counts, prev)
        if self._host_rows.size:
            rows = self._host_rows
            held = state[self._host_state]
            t_o, v_o, c_o = self._latch_batch(
                times[rows], values[rows], counts[rows], prev[rows], held
            )
            state[self._host_state] = _final_value(v_o, c_o, held)
            self._write(self._src_slots[rows], t_o, v_o, c_o, held)
        state[self._src_state] = launch

    def _run_latch(self, stage: tuple) -> None:
        _, src_slots, dst_slots, state_idx = stage
        held = self._state[state_idx]  # fancy index: contiguous copy
        if self._native is not None:
            # Worst case per output: every input event plus the lead.
            need = int(self._counts[src_slots].max(initial=0)) + 1
            self._ensure_width(need)
            self._native.eval_latches(
                len(src_slots),
                self.n_lanes,
                self._width,
                src_slots.ctypes.data,
                dst_slots.ctypes.data,
                held.ctypes.data,
                self._t_open,
                self._t_close,
                self._d_q,
                self._open_edge,
                self._times.ctypes.data,
                self._values.ctypes.data,
                self._counts.ctypes.data,
                self._inits.ctypes.data,
            )
            return
        times, values, counts, inits = self._read(src_slots)
        t_o, v_o, c_o = self._latch_batch(times, values, counts, inits, held)
        self._write(dst_slots, t_o, v_o, c_o, held)

    def _raise_cap(
        self, names: List[str], pos: np.ndarray, counts: np.ndarray
    ) -> None:
        over = (counts > self._cap).any(axis=-1)
        rows = np.nonzero(over)[0]
        row = rows[np.argmin(pos[rows])]
        lane = int(np.nonzero(counts[row] > self._cap)[0][0])
        check_event_cap(names[row], int(counts[row, lane]), self._cap)

    def _run_gatek(self, stage: tuple) -> None:
        """One level of gates, split into live-width buckets.

        The dense candidate rectangle costs O(n * L * k^2 * w^2) for a
        level-wide event width ``w`` — one busy net would make every
        quiet gate pay its width.  Each cycle the level's gates are
        partitioned by their current live width (max input events over
        lanes) into power-of-two buckets, so the typical 0/1-event
        gate runs in a width-1 rectangle regardless of the hot tail.
        """
        _, k, names, pos, out, ins, delays, tables, single = stage
        if self._native is not None:
            self._run_gatek_native(stage)
            return
        live = self._counts[ins].max(axis=(1, 2))  # (n,)
        top = int(live.max(initial=0))
        lo = 0
        while True:
            hi = 1 if lo == 0 else lo * 2
            rows = np.nonzero((live > lo) & (live <= hi))[0]
            if rows.size:
                self._run_gate_bucket(
                    k,
                    [names[r] for r in rows],
                    pos[rows],
                    out[rows],
                    ins[rows],
                    delays[rows],
                    tables[rows],
                    single[rows],
                )
            if hi >= top:
                break
            lo = hi
        rows = np.nonzero(live == 0)[0]
        if rows.size:
            # No input events anywhere: the output is the constant
            # table value of the initial input values.
            inits = self._inits[ins[rows]].transpose(0, 2, 1)  # (m, L, k)
            weights = np.int64(1) << np.arange(k, dtype=np.int64)
            out_init = tables[rows][
                np.arange(rows.size)[:, None], (inits * weights).sum(-1)
            ]
            shape = out_init.shape + (0,)
            self._write(
                out[rows],
                np.empty(shape),
                np.empty(shape, dtype=np.int64),
                np.zeros(out_init.shape, dtype=np.int64),
                out_init,
            )

    def _run_gatek_native(self, stage: tuple) -> None:
        """Whole-level gate evaluation via the compiled helper.

        The helper walks gates in schedule order, lanes inner, and
        operates in place on the global waveform arrays — the width
        is grown up front to the worst-case candidate count (the sum
        of the input event counts) so every output wave fits.
        """
        _, k, names, pos, out, ins, delays, tables, single = stage
        need = int(self._counts[ins].sum(axis=1).max(initial=0))
        self._ensure_width(need)
        err_gate = ctypes.c_int64(0)
        err_count = ctypes.c_int64(0)
        rc = self._native.eval_gates(
            len(names),
            self.n_lanes,
            k,
            self._width,
            ins.ctypes.data,
            out.ctypes.data,
            single.ctypes.data,
            delays.ctypes.data,
            tables.ctypes.data,
            self._times.ctypes.data,
            self._values.ctypes.data,
            self._counts.ctypes.data,
            self._inits.ctypes.data,
            self._cap,
            _EPS,
            ctypes.byref(err_gate),
            ctypes.byref(err_count),
        )
        if rc:
            check_event_cap(
                names[err_gate.value], err_count.value, self._cap
            )

    def _run_gate_bucket(
        self,
        k: int,
        names: List[str],
        pos: np.ndarray,
        out: np.ndarray,
        ins: np.ndarray,
        delays: np.ndarray,
        tables: np.ndarray,
        single: np.ndarray,
    ) -> None:
        n = len(names)
        times, values, counts, inits = self._read(ins)  # (n, k, L, w)
        times = times.transpose(0, 2, 1, 3).copy()  # (n, L, k, w)
        values = values.transpose(0, 2, 1, 3)
        inits = inits.transpose(0, 2, 1)  # (n, L, k)
        weights = np.int64(1) << np.arange(k, dtype=np.int64)
        gid = np.arange(n)
        init_mask = (inits * weights).sum(axis=-1)
        out_init = tables[gid[:, None], init_mask]
        w = times.shape[-1]
        L = times.shape[1]
        # Candidate set: per-lane sorted union with exact-equality
        # dedup — the same set the kernel's 2-input merge loop and
        # n-input sorted(set(...)) produce.
        cand = np.sort(times.reshape(n, L, k * w), axis=-1)
        finite = cand < _INF
        dedup = np.ones_like(finite)
        dedup[..., 1:] = cand[..., 1:] != cand[..., :-1]
        cand, _, n_cand = _compact(cand, cand, finite & dedup)
        if (n_cand > self._cap).any():
            self._raise_cap(names, pos, n_cand)
        C = cand.shape[-1]
        if C == 0:
            shape = out_init.shape + (0,)
            self._write(
                out,
                np.empty(shape),
                np.empty(shape, dtype=np.int64),
                np.zeros(out_init.shape, dtype=np.int64),
                out_init,
            )
            return
        col_valid = np.arange(C) < n_cand[..., None]
        # Per-pin inclusive value at each candidate (count of
        # transitions <= when, then gather) — the candidate axis
        # broadcasts against the event axis; widths are small (trimmed
        # to the level's live maximum) so the O(C*w) compare beats
        # sort-based merging.  All result shapes are (n, L, k, C).
        t5 = times[:, :, :, None, :]  # (n, L, k, 1, w)
        c5 = cand[:, :, None, :, None]  # (n, L, 1, C, 1)
        idx = (t5 <= c5).sum(axis=-1)
        pin_v = np.take_along_axis(
            values, np.clip(idx - 1, 0, w - 1), axis=-1
        )
        pin_v = np.where(idx > 0, pin_v, inits[..., None])
        mask = (pin_v * weights[:, None]).sum(axis=2)  # (n, L, C)
        out_v = tables[gid[:, None, None], mask]
        # Causing pins: any transition inside (when-eps, when+eps).
        cause = ((t5 > c5 - _EPS) & (t5 < c5 + _EPS)).any(axis=-1)
        arc = delays[
            gid[:, None, None, None],
            np.arange(k)[None, None, :, None],
            out_v[:, :, None, :],
        ]  # (n, L, k, C)
        delay = np.where(cause, arc, 0.0).max(axis=2)
        srows = np.nonzero(single)[0]
        if srows.size:
            # Kernel 1-input fast path: the lone pin always causes.
            delay[srows] = arc[srows, :, 0, :]
        out_t = cand + delay
        t_o, v_o, c_o = _normalize(out_t, out_v, col_valid, out_init)
        self._write(out, t_o, v_o, c_o, out_init)

    def _run_pygate(self, stage: tuple) -> None:
        """Per-lane fallback for untabulated (> 10 input) gates —
        literally the kernel's n-input loop per lane."""
        for pos, entry in stage[1]:
            name, out_slot, in_slots, _ops, delays, _table, evaluate = entry
            slot_arr = np.asarray(in_slots, dtype=np.intp)
            times, values, counts, inits = self._read(slot_arr)
            L = times.shape[1]
            out_rows: List[Tuple[List[float], List[int], int]] = []
            for lane in range(L):
                waves = [
                    (
                        int(inits[i, lane]),
                        [float(t) for t in times[i, lane][: counts[i, lane]]],
                        [int(v) for v in values[i, lane][: counts[i, lane]]],
                    )
                    for i in range(len(in_slots))
                ]
                out_rows.append(
                    _pygate_lane(
                        name, waves, delays, evaluate, self._cap
                    )
                )
            width = max((len(r[0]) for r in out_rows), default=0)
            t_o = np.full((L, width), _INF)
            v_o = np.zeros((L, width), dtype=np.int64)
            c_o = np.zeros(L, dtype=np.int64)
            i_o = np.zeros(L, dtype=np.int64)
            for lane, (ts, vs, init) in enumerate(out_rows):
                c_o[lane] = len(ts)
                t_o[lane, : len(ts)] = ts
                v_o[lane, : len(ts)] = vs
                i_o[lane] = init
            self._write(
                np.asarray([out_slot], dtype=np.intp),
                t_o[None],
                v_o[None],
                c_o[None],
                i_o[None],
            )

    def _apply_glitches(
        self, specs_by_slot: Dict[int, List[GlitchSpec]]
    ) -> None:
        for slot, specs in specs_by_slot.items():
            arr = np.asarray([slot], dtype=np.intp)
            times, values, counts, inits = self._read(arr)
            times, values, counts = times[0], values[0], counts[0]
            initial = inits[0]
            for spec in specs:
                times, values, counts = _glitch_lanes(
                    times, values, counts, initial, spec
                )
            self._write(
                arr, times[None], values[None], counts[None], initial[None]
            )

    # -- cycle driver ------------------------------------------------------

    def run_cycle(self, cycle: int) -> None:
        glitch_levels: Dict[int, Dict[int, List[GlitchSpec]]] = {}
        for spec in self.plan.glitches.get(cycle, ()):
            level = self._net_level[spec.net]
            glitch_levels.setdefault(level, {}).setdefault(
                self._net_slot[spec.net], []
            ).append(spec)

        self._run_sources(cycle)
        if 0 in glitch_levels:
            self._apply_glitches(glitch_levels[0])
        for stage in self._stages:
            kind = stage[0]
            if kind == "latch":
                self._run_latch(stage)
            elif kind == "gate":
                self._run_gatek(stage)
            elif kind == "pygate":
                self._run_pygate(stage)
            else:  # ("glitch", level)
                if stage[1] in glitch_levels:
                    self._apply_glitches(glitch_levels[stage[1]])

        # Endpoint scan: EDL window transitions, non-EDL violations,
        # settled flop capture — one masked pass over all lanes.
        times, values, counts, inits = self._read(self._ep_slots)
        flags = ((times > self._w_open) & (times <= self._w_close)).any(
            axis=-1
        )
        edl = self._edl_mask[:, None]
        err = flags & edl
        self._error_cycles += err.any(axis=0)
        self._per_endpoint += err
        self._non_edl += (flags & ~edl).sum(axis=0)
        finals = _final_value(values, counts, inits)
        if self._flop_ep_rows.size:
            self._flop_state = finals[self._flop_ep_rows]

        # End-of-cycle held-value updates (value at the slave close).
        if self._lu_slots.size:
            times, values, counts, inits = self._read(self._lu_slots)
            self._state[self._lu_state] = _value_at(
                times, values, inits, self._t_close
            )

        # SEU capture flips strike the carried-over state after the
        # capture settles; one shared plan flips every lane.
        for target in self.plan.seu_flips.get(cycle, ()):
            if target in self._flop_row:
                row = self._flop_row[target]
                self._flop_state[row] = 1 - self._flop_state[row]
            elif target in self._state_index:
                row = self._state_index[target]
                self._state[row] = 1 - self._state[row]
            else:
                current = self._extra_state.get(target)
                if current is None:
                    current = np.zeros(self.n_lanes, dtype=np.int64)
                self._extra_state[target] = 1 - current
            metrics.count("sim.inject.seu_flips", self.n_lanes)

    def finish(self) -> List[ErrorRateReport]:
        """Seal one comparison-identical report per lane."""
        reports = []
        state_items = sorted(
            self._state_index.items(), key=lambda kv: kv[1]
        )
        for lane in range(self.n_lanes):
            per_endpoint = {
                name: int(count)
                for name, count in zip(
                    self._ep_names, self._per_endpoint[:, lane]
                )
                if count
            }
            final_latch: Dict[str, int] = {}
            if self.cycles > 0:
                final_latch = {
                    key: int(self._state[idx, lane])
                    for key, idx in state_items
                }
            for key, arr in self._extra_state.items():
                final_latch[key] = int(arr[lane])
            reports.append(
                ErrorRateReport(
                    cycles=self.cycles,
                    error_cycles=int(self._error_cycles[lane]),
                    per_endpoint=per_endpoint,
                    non_edl_violations=int(self._non_edl[lane]),
                    final_flop_state={
                        name: int(self._flop_state[row, lane])
                        for row, name in enumerate(self._flop_names)
                    },
                    final_latch_state=final_latch,
                    backend="vector",
                )
            )
        return reports


def _pygate_lane(name, waves, delays, evaluate, cap):
    """Kernel n-input evaluation for one lane (untabulated fallback)."""
    times_set: set = set()
    for wave in waves:
        times_set.update(wave[1])
    n_events = len(times_set)
    if n_events > cap:
        check_event_cap(name, n_events, cap)
    current = [wave[0] for wave in waves]
    out_initial = evaluate(current)
    if not n_events:
        return ([], [], out_initial)
    candidate_times = sorted(times_set)
    k = len(waves)
    times_in = [wave[1] for wave in waves]
    values_in = [wave[2] for wave in waves]
    lengths = [len(t) for t in times_in]
    value_cursor = [0] * k
    cause_cursor = [0] * k
    events: List[Tuple[float, int]] = []
    for when in candidate_times:
        for i in range(k):
            in_times = times_in[i]
            cursor = value_cursor[i]
            end = lengths[i]
            if cursor < end and in_times[cursor] <= when:
                while cursor < end and in_times[cursor] <= when:
                    cursor += 1
                current[i] = values_in[i][cursor - 1]
                value_cursor[i] = cursor
        new_value = evaluate(current)
        delay = 0.0
        lo_bound = when - _EPS
        hi_bound = when + _EPS
        for i in range(k):
            end = lengths[i]
            if not end:
                continue
            in_times = times_in[i]
            cursor = cause_cursor[i]
            while cursor < end and in_times[cursor] <= lo_bound:
                cursor += 1
            cause_cursor[i] = cursor
            if cursor < end and in_times[cursor] < hi_bound:
                arc_delay = delays[i][new_value]
                if arc_delay > delay:
                    delay = arc_delay
        out_time = when + delay
        while events and events[-1][0] >= out_time:
            events.pop()
        events.append((out_time, new_value))
    out_times: List[float] = []
    out_values: List[int] = []
    value = out_initial
    for when, new_value in events:
        if new_value != value:
            out_times.append(when)
            out_values.append(new_value)
            value = new_value
    return (out_times, out_values, out_initial)


# ---------------------------------------------------------------------------
# estimator entry point
# ---------------------------------------------------------------------------


def estimate_error_rate_vector(
    circuit: TwoPhaseCircuit,
    placement: SlavePlacement,
    edl_endpoints: Set[str],
    cycles: int = 256,
    seeds: Sequence[int] = (2017,),
    toggle_probability: float = 0.5,
    max_events_per_net: int = MAX_EVENTS_PER_NET,
    injection: Optional[InjectionPlan] = None,
    lane_block: int = DEFAULT_LANE_BLOCK,
) -> List[ErrorRateReport]:
    """Lane-vectorized error-rate reports, one per seed.

    Comparison-identical to ``estimate_error_rate(..., seed=s)`` with
    the event or compiled backend for every seed ``s`` — the parity
    suite in ``tests/test_sim_vector.py`` is the acceptance gate.
    ``cycles_per_sec`` carries the aggregate lane throughput of the
    whole batch (``None`` when the wall clock read zero).
    """
    plan = injection or InjectionPlan()
    _check_plan_targets(circuit.netlist, plan, placement)
    kernel = CompiledSimulator(
        circuit,
        placement,
        max_events_per_net=max_events_per_net,
        delay_scale=plan.delay_scale,
    )
    reports: List[ErrorRateReport] = []
    started = time.perf_counter()
    for base in range(0, len(seeds), max(1, lane_block)):
        block = seeds[base : base + max(1, lane_block)]
        lanes = _VectorLanes(
            kernel, edl_endpoints, block, toggle_probability, cycles, plan
        )
        for cycle in range(cycles):
            lanes.run_cycle(cycle)
        reports.extend(lanes.finish())
    wall_s = time.perf_counter() - started

    total_cycles = cycles * len(reports)
    if wall_s > 0.0:
        throughput = total_cycles / wall_s
        for report in reports:
            report.cycles_per_sec = throughput
        metrics.record_value("sim.vector.lane_cycles_per_sec", throughput)
    metrics.count("sim.vector.runs")
    metrics.count("sim.vector.lanes", len(reports))
    metrics.count("sim.backend.vector")
    metrics.count("sim.cycles", total_cycles)
    metrics.record_value("sim.wall_s", wall_s)
    if not plan.empty and reports:
        counts = plan.counts()
        metrics.count("sim.inject.runs", len(reports))
        metrics.count("sim.inject.glitches", counts["glitches"] * len(reports))
        metrics.count(
            "sim.inject.scaled_gates", counts["scaled_gates"] * len(reports)
        )
    return reports
