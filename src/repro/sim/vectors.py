"""Input-vector sources for the error-rate simulation."""

from __future__ import annotations

import random
from typing import Dict, Iterator, Sequence


class VectorSource:
    """Deterministic random 0/1 vectors for a set of input names."""

    def __init__(
        self,
        names: Sequence[str],
        seed: int = 2017,
        toggle_probability: float = 0.5,
    ) -> None:
        if not 0.0 <= toggle_probability <= 1.0:
            raise ValueError("toggle_probability must be in [0, 1]")
        self.names = list(names)
        self.rng = random.Random(seed)
        self.toggle_probability = toggle_probability
        self._current: Dict[str, int] = {
            name: self.rng.randint(0, 1) for name in self.names
        }

    def next_vector(self) -> Dict[str, int]:
        """A fresh vector; each input toggles with the set probability."""
        for name in self.names:
            if self.rng.random() < self.toggle_probability:
                self._current[name] ^= 1
        return dict(self._current)


def random_vectors(
    names: Sequence[str], count: int, seed: int = 2017
) -> Iterator[Dict[str, int]]:
    """``count`` random vectors over ``names``."""
    source = VectorSource(names, seed=seed)
    for _ in range(count):
        yield source.next_vector()
