"""Flow orchestration: retime -> size-only compile -> final accounting.

``run_flow`` is the single entry point the benchmark harness uses; it
owns the details that make cross-method comparisons fair:

* every method runs on its own *copy* of the netlist (sizing mutates
  cells) under the *same* clock scheme, derived once from the original
  flop design;
* the sizing limits depend on the method's promises — endpoints the
  retimer claims are non-error-detecting get ``Pi`` max-delay
  constraints (so the claim survives placement-induced drift), the
  rest get the window close;
* endpoints sizing cannot rescue fall back to error-detecting, exactly
  like the paper's manual switch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro import metrics
from repro.cells.library import Library
from repro.clocks import ClockScheme, scheme_from_period
from repro.core.engine import make_timing_engine
from repro.errors import FlowStageError, stage_scope
from repro.guard import CheckpointRecord, Guard, GuardPolicy
from repro.latches.conversion import ConversionReport
from repro.latches.resilient import EPS, SequentialCost, TwoPhaseCircuit
from repro.netlist.netlist import Netlist
from repro.retime.base import base_retime
from repro.retime.grar import grar_retime
from repro.retime.result import RetimingResult
from repro.sta import TimingEngine
from repro.store import ArtifactStore, open_store, use_store
from repro.synth.recovery import RecoveryReport, recover_area
from repro.synth.sizing import (
    RescueReport,
    SizingReport,
    rescue_paths,
    size_only_compile,
    speed_paths,
)
from repro.vl.flow import vl_retime
from repro.vl.variants import VlVariant, initial_types

#: Methods understood by :func:`run_flow`.
METHODS = (
    "base",
    "grar",
    "grar-gate",
    "grar-lp",
    "evl",
    "nvl",
    "rvl",
    "rvl-noswap",
    "rvl-movable",
    "selective",
)


@dataclass
class FlowOutcome:
    """Final, post-sizing state of one flow run."""

    method: str
    circuit_name: str
    overhead: float
    retiming: RetimingResult
    sizing: Optional[SizingReport]
    rescue: Optional[RescueReport]
    recovery: Optional[RecoveryReport]
    circuit: TwoPhaseCircuit
    edl_endpoints: Set[str]
    cost: SequentialCost
    comb_area: float
    runtime_s: float
    guard_records: List[CheckpointRecord] = field(default_factory=list)
    solver_backend: str = ""
    #: Set when the flow entered through the flop-to-two-phase
    #: conversion front end (``convert="two-phase"``).
    conversion: Optional[ConversionReport] = None

    @property
    def n_slaves(self) -> int:
        """Number of physical slave latches."""
        return self.cost.n_slaves

    @property
    def n_edl(self) -> int:
        """Number of error-detecting masters."""
        return self.cost.n_edl

    @property
    def sequential_area(self) -> float:
        """Sequential-logic area (Table IV metric)."""
        return self.cost.area

    @property
    def total_area(self) -> float:
        """Total area (Table V metric)."""
        return self.comb_area + self.sequential_area

    def summary(self) -> str:
        """One-line human-readable outcome summary."""
        return (
            f"{self.method}[{self.circuit_name}, c={self.overhead}]: "
            f"slaves={self.n_slaves} edl={self.n_edl} "
            f"seq={self.sequential_area:.1f} total={self.total_area:.1f} "
            f"({self.runtime_s:.2f}s)"
        )


def prepare_circuit(
    netlist: Netlist,
    library: Library,
    model: str = "path",
    clock_margin: float = 1.05,
    scheme: Optional[ClockScheme] = None,
    sta_mode: str = "incremental",
    sta_engine: str = "object",
    convert: Optional[str] = None,
) -> Tuple[ClockScheme, TwoPhaseCircuit]:
    """Derive the clock from the flop design and build the two-phase view.

    The clock follows the Table I recipe with ``P`` set to the measured
    worst arrival times ``clock_margin`` (synthesized netlists meet
    their period with a little slack; the conversion borrows it for the
    latch delays).

    ``sta_engine`` selects the timing-engine implementation: the
    object-graph reference (``"object"``) or the vectorized flat-array
    arena (``"arena"``) — bit-identical results, different cost.

    ``convert="two-phase"`` routes an external flop netlist through
    the conversion front end (:mod:`repro.convert`) instead: the same
    clock recipe, plus feasibility and phase-legality validation — the
    returned scheme/circuit are bit-identical to the direct path.
    """
    if convert is not None:
        if convert != "two-phase":
            raise ValueError(
                f"unknown conversion {convert!r}; only 'two-phase' is "
                f"supported"
            )
        from repro.convert import convert_to_two_phase

        design = convert_to_two_phase(
            netlist, library, scheme=scheme, clock_margin=clock_margin,
            model=model, sta_mode=sta_mode, sta_engine=sta_engine,
        )
        return design.scheme, design.circuit
    if scheme is None:
        engine = make_timing_engine(
            sta_engine, netlist, library, model=model,
            incremental=(sta_mode == "incremental"),
        )
        worst = engine.worst_arrival()
        if worst <= 0:
            raise ValueError(f"netlist {netlist.name!r} has no timing paths")
        scheme = scheme_from_period(worst * clock_margin)
    circuit = TwoPhaseCircuit(
        netlist, scheme, library, model=model, sta_mode=sta_mode,
        sta_engine=sta_engine,
    )
    return scheme, circuit


def run_flow(
    method: str,
    netlist: Netlist,
    library: Library,
    overhead: float,
    scheme: Optional[ClockScheme] = None,
    model: Optional[str] = None,
    sizing: bool = True,
    solver: str = "flow",
    rescue_budget_scale: float = 1.0,
    solver_policy=None,
    guard: Union[Guard, GuardPolicy, str, None] = None,
    sta_mode: str = "incremental",
    sta_engine: str = "object",
    retime_cache: bool = True,
    harden_fraction: float = 0.5,
    convert: Optional[str] = None,
    store: Union[ArtifactStore, str, None] = None,
) -> FlowOutcome:
    """Run one method end to end on a private copy of ``netlist``.

    ``store`` scopes the run to an artifact store (an
    :class:`~repro.store.ArtifactStore` or a directory path): compiled
    retiming problems and arenas are fetched from / landed in it
    instead of the ambient (process-default) store.  A persistent
    store shares those compiles across processes and invocations;
    results are bit-identical either way — the store only changes
    where the invariant work comes from.

    ``convert="two-phase"`` treats ``netlist`` as an external flop
    design entering through the conversion front end: the clock is
    derived by the conversion pass (validating region feasibility and
    phase legality on the way, with a ``phase_legality`` guard
    checkpoint), and the outcome carries the
    :class:`~repro.latches.conversion.ConversionReport`.  The
    conversion leaves the netlist structurally unchanged — the DFF
    gate *is* the master/slave carrier — so a converted flow is
    bit-identical to running the native path on the same netlist.

    ``harden_fraction`` applies to the ``"selective"`` method only:
    the fraction of the fragility-ranked window-violating masters
    committed to error-detecting latches (the rest are sped out of
    the window, falling back to EDL only when sizing cannot rescue
    them).

    ``sta_mode`` selects between event-driven cone-scoped timing
    updates (``"incremental"``, the default) and whole-engine
    invalidation on every netlist change (``"full"``, the parity
    oracle) — results are bit-identical, only the cost differs.

    ``sta_engine`` independently selects the engine *implementation*:
    the object-graph reference (``"object"``, the default and parity
    oracle) or the vectorized flat-array arena (``"arena"``) — again
    bit-identical results, different cost.

    ``retime_cache`` enables the compiled-retiming cache and simplex
    warm-starts across an overhead sweep (``False`` recomputes and
    cold-starts every solve, the bit-parity oracle — results are
    identical, only the cost differs).  The rescue pass resizes gates
    under a c-dependent budget, so the post-rescue re-retime misses
    the cache by fingerprint — again correct, merely slower.

    ``rescue_budget_scale`` scales the G-RAR EDL-avoidance budget: 0
    disables the combinational speed-ups entirely, values above 1 buy
    error-rate reductions beyond the area-optimal point (the Section
    VI-D observation that ~5% extra area can drive error rates to 0).

    ``solver_policy`` configures the min-cost-flow fallback chain
    (:class:`repro.retime.mincostflow.SolverPolicy`); ``guard``
    enables the inter-stage invariant checkpoints
    (:class:`repro.guard.GuardPolicy` or its string name — or a
    pre-built :class:`repro.guard.Guard` to share records).
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    if store is not None:
        resolved = open_store(store)
        # Re-enter with the store ambient so every cache site below
        # (compile_retiming in the retimers, compile_arena in the
        # engines) reads it without threading the handle through.
        with use_store(resolved):
            return run_flow(
                method, netlist, library, overhead, scheme=scheme,
                model=model, sizing=sizing, solver=solver,
                rescue_budget_scale=rescue_budget_scale,
                solver_policy=solver_policy, guard=guard,
                sta_mode=sta_mode, sta_engine=sta_engine,
                retime_cache=retime_cache,
                harden_fraction=harden_fraction, convert=convert,
            )
    started = time.perf_counter()
    if isinstance(guard, Guard):
        sentinel = guard
        sentinel.circuit_name = sentinel.circuit_name or netlist.name
    else:
        sentinel = Guard(guard, circuit_name=netlist.name)

    delay_model = model or ("gate" if method == "grar-gate" else "path")
    conversion: Optional[ConversionReport] = None
    if convert is not None:
        if convert != "two-phase":
            raise ValueError(
                f"unknown conversion {convert!r}; only 'two-phase' is "
                f"supported"
            )
        with stage_scope("convert", circuit=netlist.name):
            from repro.convert import convert_to_two_phase

            design = convert_to_two_phase(
                netlist, library, scheme=scheme, model=delay_model,
                sta_mode=sta_mode, sta_engine=sta_engine,
            )
            scheme = design.scheme
            conversion = design.report
            sentinel.phase_legality(netlist, design.placement, "convert")
    working = netlist.copy()
    with stage_scope("prepare", circuit=netlist.name):
        if method == "rvl-movable":
            # Release the do-not-retime constraint on the masters: the
            # tool first repositions the flops themselves (Section V /
            # Table IX), then the ordinary fixed-master RVL flow runs on
            # the retimed netlist under the same clock.
            from repro.retime.ffretime import ff_retime_min_area

            if scheme is None:
                scheme, _ = prepare_circuit(
                    working, library, model=delay_model,
                    sta_mode=sta_mode, sta_engine=sta_engine,
                )
            ff_result = ff_retime_min_area(
                working, library,
                period=scheme.max_path_delay, model=delay_model,
            )
            working = ff_result.netlist
        scheme, circuit = prepare_circuit(
            working, library, model=delay_model, scheme=scheme,
            sta_mode=sta_mode, sta_engine=sta_engine,
        )
        sentinel.netlist_valid(working, library, "prepare")
        sentinel.timing_sane(circuit, "prepare")

    # The gate-based decision model is deliberately pessimistic; its
    # region conflicts are artifacts, not real infeasibilities.
    conflict_policy = "prefer-vm" if delay_model == "gate" else "error"
    window_open = scheme.window_open
    # Headroom below Pi a path needs so that some latch position keeps
    # the eq. (5) arrival out of the window (D->Q delay plus slack).
    path_target = (window_open - 2 * circuit.latch_d_q) * 0.995
    rescue_report: Optional[RescueReport] = None

    with stage_scope("retime", circuit=netlist.name):
        if method == "base":
            retiming = base_retime(
                circuit, overhead,
                solver=solver, conflict_policy=conflict_policy,
                solver_policy=solver_policy,
                retime_cache=retime_cache,
            )
        elif method in ("grar", "grar-gate", "grar-lp"):
            grar_solver = "lp" if method == "grar-lp" else solver
            retiming = grar_retime(
                circuit, overhead,
                solver=grar_solver, conflict_policy=conflict_policy,
                solver_policy=solver_policy,
                retime_cache=retime_cache,
            )
            if sizing:
                # Cost-aware EDL avoidance: speed the paths of masters
                # the retimer could not rescue below Pi where doing so
                # is cheaper than their EDL overhead, then re-retime so
                # the slave positions (and credits) exploit the faster
                # logic — the paper's "small area penalty to speed-up
                # the combinational logic and avoid more EDLs".
                candidates = [
                    name
                    for name in circuit.endpoint_names
                    if circuit.engine.endpoint_arrival(name)
                    > path_target + EPS
                ]
                # Budget: the EDL overhead saved plus roughly one slave
                # latch — rescued masters free their cut-set
                # constraints, which the re-retiming converts into
                # fewer slaves.
                rescue_report = rescue_paths(
                    circuit,
                    candidates,
                    target=path_target,
                    budget_per_endpoint=(
                        rescue_budget_scale
                        * (1.0 + overhead)
                        * circuit.latch_area
                    ),
                )
                if rescue_report.resized:
                    retiming = grar_retime(
                        circuit, overhead,
                        solver=grar_solver, conflict_policy=conflict_policy,
                        solver_policy=solver_policy,
                        retime_cache=retime_cache,
                    )
        elif method == "selective":
            # Fragility-ranked selective hardening: retime for minimum
            # latch cost first, rank masters by slack under that
            # placement, commit the top ``harden_fraction`` most
            # fragile to EDL, speed the remaining fragile paths out of
            # the window, then re-retime so slave positions exploit
            # both decisions.  The committed set is the method's typed
            # promise (like a VL typing), not a timing observation.
            from repro.scenarios.fragility import (
                rank_fragility,
                select_hardened,
            )

            retiming = base_retime(
                circuit, overhead,
                solver=solver, conflict_policy=conflict_policy,
                solver_policy=solver_policy,
                retime_cache=retime_cache,
            )
            fragility = rank_fragility(circuit, retiming.placement)
            hardened = select_hardened(
                fragility, harden_fraction, threshold=path_target
            )
            _apply_master_cells(circuit, hardened)
            if sizing:
                mandatory = {
                    entry.endpoint: path_target
                    for entry in fragility.entries
                    if entry.endpoint not in hardened
                    and entry.arrival > path_target + EPS
                }
                if mandatory:
                    speed_paths(circuit, mandatory)
            retiming = base_retime(
                circuit, overhead,
                solver=solver, conflict_policy=conflict_policy,
                solver_policy=solver_policy,
                retime_cache=retime_cache,
            )
            retiming.method = "selective"
            retiming.edl_endpoints = set(hardened)
            retiming.cost = SequentialCost(
                n_slaves=retiming.placement.slave_count(circuit.netlist),
                n_masters=len(circuit.endpoint_names),
                n_edl=len(hardened),
                overhead=overhead,
                latch_area=circuit.latch_area,
            )
            retiming.notes["harden_fraction"] = str(harden_fraction)
            retiming.notes["fragile_candidates"] = str(
                len(fragility.fragile(path_target))
            )
        elif method in ("evl", "nvl", "rvl", "rvl-noswap", "rvl-movable"):
            variant = VlVariant(method.split("-")[0])
            types = initial_types(circuit, variant)
            # The typing instantiates the virtual-library cells up
            # front; error-detecting masters load their drivers harder
            # (Fig. 2).
            _apply_master_cells(
                circuit, {name for name, is_edl in types.items() if is_edl}
            )
            if sizing:
                # The virtual library's extended-setup non-EDL latches
                # force the tool to keep their arrivals out of the
                # window; paths that cannot are sped up unconditionally
                # (the typing is committed).  EDL-typed masters exert
                # no setup pressure — the decoupling the paper
                # measures.
                mandatory = {
                    name: path_target
                    for name, is_edl in types.items()
                    if not is_edl
                    and circuit.engine.endpoint_arrival(name)
                    > path_target + EPS
                }
                if mandatory:
                    speed_paths(circuit, mandatory)
            retiming = vl_retime(
                circuit,
                overhead,
                variant=variant,
                post_swap=(method != "rvl-noswap"),
                solver=solver,
                types=types,
                solver_policy=solver_policy,
            )
        else:  # pragma: no cover - guarded above
            raise FlowStageError(
                f"method {method!r} passed validation but has no "
                f"retimer dispatch",
                stage="retime",
            )
        sentinel.retiming_sane(circuit, retiming, "retime")
        sentinel.cut_legality(circuit, retiming.placement, "retime")
        sentinel.phase_legality(working, retiming.placement, "retime")

    # Retiming decisions may use a conservative model (grar-gate), but
    # the final evaluation always uses the accurate path-based timing —
    # Table II judges both variants with the tool's own engine.
    if delay_model != "path":
        _, circuit = prepare_circuit(
            working, library, model="path", scheme=scheme,
            sta_mode=sta_mode, sta_engine=sta_engine,
        )

    placement = retiming.placement
    sizing_report: Optional[SizingReport] = None
    recovery_report: Optional[RecoveryReport] = None
    if sizing:
        with stage_scope("sizing", circuit=netlist.name):
            sizing_report = _incremental_compile(
                circuit, retiming, overhead, method
            )
            # Commercial-style area recovery against the method's
            # limits.  For VL flows the limits come from the latch
            # *types* — the relaxed EDL setups let recovery drift
            # arrivals into the window, which is what defeats the swap
            # step under EVL.
            recovery_report = recover_area(
                circuit,
                placement,
                _recovery_limits(circuit, retiming, method),
            )
            sentinel.netlist_valid(circuit.netlist, library, "sizing")
            sentinel.cut_legality(circuit, placement, "sizing")

    with stage_scope("finalize", circuit=netlist.name):
        edl, cost = _finalize(circuit, retiming, overhead)
        comb_area = working.comb_area(library)
        sentinel.area_accounting(
            cost,
            comb_area,
            "finalize",
            recovery_delta=(
                -recovery_report.area_saved
                if recovery_report is not None
                else None
            ),
        )
    runtime_s = time.perf_counter() - started
    metrics.count("flow.runs")
    metrics.count(f"flow.method.{method}")
    metrics.count("flow.wall_s", runtime_s)
    return FlowOutcome(
        method=method,
        circuit_name=netlist.name,
        overhead=overhead,
        retiming=retiming,
        sizing=sizing_report,
        rescue=rescue_report,
        recovery=recovery_report,
        circuit=circuit,
        edl_endpoints=edl,
        cost=cost,
        comb_area=comb_area,
        runtime_s=runtime_s,
        guard_records=sentinel.records,
        solver_backend=retiming.notes.get("solver_backend", solver),
        conversion=conversion,
    )


def _is_vl(retiming: RetimingResult) -> bool:
    return retiming.method.split("-")[0] in ("evl", "nvl", "rvl")


def _is_typed(retiming: RetimingResult) -> bool:
    """Methods whose EDL set is a committed *typing* (VL variants and
    selective hardening) rather than a post-hoc timing observation."""
    return _is_vl(retiming) or retiming.method == "selective"


def _incremental_compile(
    circuit: TwoPhaseCircuit,
    retiming: RetimingResult,
    overhead: float,
    method: str,
) -> SizingReport:
    """The post-retiming size-only incremental compile.

    Max-delay constraints: ``Pi`` for masters promised non-error-
    detecting (credited by G-RAR, or typed non-EDL by the virtual
    library), the window close for the rest — the hard limit every
    legal two-phase design must meet regardless of resiliency.
    """
    window_open = circuit.scheme.window_open
    window_close = circuit.scheme.window_close
    placement = retiming.placement

    if _is_typed(retiming):
        non_edl = set(circuit.endpoint_names) - retiming.edl_endpoints
    elif method == "base":
        non_edl = set()
    else:
        arrivals = circuit.endpoint_arrivals(placement)
        non_edl = set(retiming.credited_endpoints) | {
            name
            for name, arrival in arrivals.items()
            if arrival <= window_open + EPS
        }
    hard = {
        name: window_open if name in non_edl else window_close
        for name in circuit.endpoint_names
    }
    report = size_only_compile(circuit, placement, hard)

    # Constraint (6) clean-up: a conservative decision model (the
    # gate-based ablation resolves Vm/Vn conflicts in Vm's favour) can
    # leave slave-latch drivers arriving after the transparency closes;
    # speed their forward cones — a size-only fix like the rest.
    legality = circuit.check_legality(placement)
    if legality.forward_violations:
        fix = speed_paths(
            circuit,
            {
                node: circuit.scheme.forward_limit
                for node in set(legality.forward_violations)
            },
        )
        report.resized.update(fix.resized)
        report.area_delta += fix.area_delta
        report.unresolved.update(
            {f"(6):{k}": v for k, v in fix.unresolved.items()}
        )
    return report


def _apply_master_cells(circuit: TwoPhaseCircuit, edl_flops: Set[str]) -> None:
    """Instantiate the right master cell per flop: error-detecting
    masters present the Fig. 2 sampler load on their D pins."""
    netlist = circuit.netlist
    for gate in netlist.flops():
        want = "DFF_ED_X1" if gate.name in edl_flops else "DFF_X1"
        if gate.cell != want:
            # replace_cell emits a change event; the engine repairs the
            # flop's load cone (or fully invalidates in "full" mode).
            netlist.replace_cell(gate.name, want)


def _recovery_limits(
    circuit: TwoPhaseCircuit,
    retiming: RetimingResult,
    method: str,
) -> Dict[str, float]:
    """Per-master arrival limits for the area-recovery pass.

    Resiliency-aware and base flows pin every master that currently
    meets ``Pi`` at ``Pi`` (the tool keeps constraints it has met);
    VL flows take the limit from the instantiated latch type, so
    EDL-typed masters expose the full window to the optimizer.
    """
    window_open = circuit.scheme.window_open
    window_close = circuit.scheme.window_close
    if _is_typed(retiming):
        return {
            name: (
                window_close
                if name in retiming.edl_endpoints
                else window_open
            )
            for name in circuit.endpoint_names
        }
    arrivals = circuit.endpoint_arrivals(retiming.placement)
    return {
        name: (
            window_open
            if arrivals.get(name, 0.0) <= window_open + EPS
            else window_close
        )
        for name in circuit.endpoint_names
    }


def _finalize(
    circuit: TwoPhaseCircuit,
    retiming: RetimingResult,
    overhead: float,
) -> Tuple[Set[str], SequentialCost]:
    """Final EDL set and sequential cost after sizing.

    Graph-based methods derive EDL from post-sizing arrivals; VL
    methods keep their latch types but upgrade any endpoint whose
    arrival still violates the non-EDL setup (the manual switch).
    """
    placement = retiming.placement
    window_open = circuit.scheme.window_open

    def by_timing() -> Set[str]:
        arrivals = circuit.endpoint_arrivals(placement)
        return {
            name
            for name, arrival in arrivals.items()
            if arrival > window_open + EPS
        }

    keep_types = (
        _is_vl(retiming) and retiming.method.endswith("-noswap")
    ) or retiming.method == "selective"
    typed = set(retiming.edl_endpoints) if keep_types else set()
    # Swapping in error-detecting masters adds D-pin load, which can
    # push further borderline masters into the window; iterate to a
    # (monotone, hence convergent) fixed point.
    edl = typed | by_timing()
    for _ in range(3):
        _apply_master_cells(circuit, edl)
        grown = typed | by_timing() | edl
        if grown == edl:
            break
        edl = grown
    else:
        # Rarely non-converged within the cap; make the instantiated
        # master cells consistent with the final (largest) set.
        _apply_master_cells(circuit, edl)
    cost = SequentialCost(
        n_slaves=placement.slave_count(circuit.netlist),
        n_masters=len(circuit.endpoint_names),
        n_edl=len(edl),
        overhead=overhead,
        latch_area=circuit.latch_area,
    )
    return edl, cost


def run_methods(
    methods: List[str],
    netlist: Netlist,
    library: Library,
    overhead: float,
    scheme: Optional[ClockScheme] = None,
    sizing: bool = True,
    sta_mode: str = "incremental",
    sta_engine: str = "object",
    retime_cache: bool = True,
) -> Dict[str, FlowOutcome]:
    """Run several methods under one shared clock scheme."""
    if scheme is None:
        scheme, _ = prepare_circuit(
            netlist, library, sta_mode=sta_mode, sta_engine=sta_engine
        )
    return {
        method: run_flow(
            method,
            netlist,
            library,
            overhead,
            scheme=scheme,
            sizing=sizing,
            sta_mode=sta_mode,
            sta_engine=sta_engine,
            retime_cache=retime_cache,
        )
        for method in methods
    }
