"""The area / error-rate trade-off sweep (Section VI-D).

The paper observes that "with a modest area increase of, on average
5%, error-rates can be further reduced, sometimes to 0": spending more
combinational area on speeding near-critical cones pulls more masters
out of the resiliency window, cutting both EDL count and dynamic error
rate.  This sweep exposes that curve by scaling G-RAR's cost-aware
rescue budget — and, since the scenario engine added fragility-ranked
selective hardening, lets the two hardening policies share one plot:
``methods=("grar", "selective")`` sweeps the G-RAR rescue budget and
the selective harden fraction side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cells.library import Library
from repro.clocks import ClockScheme
from repro.flows.run import prepare_circuit, run_flow
from repro.netlist.netlist import Netlist
from repro.sim import estimate_error_rate

#: Harden fractions the selective-hardening arm of the sweep visits
#: (its knob is a fraction in [0, 1], not an unbounded budget scale).
SELECTIVE_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class TradeoffPoint:
    """One knob setting on the area/error-rate curve.

    ``budget_scale`` is the method's knob value: the rescue-budget
    scale for G-RAR points, the harden fraction for selective points.
    """

    budget_scale: float
    total_area: float
    comb_area: float
    n_edl: int
    error_rate: float
    method: str = "grar"

    def row(self) -> tuple:
        """The point as a rounded tuple (for tables)."""
        return (
            self.budget_scale,
            round(self.total_area, 1),
            round(self.comb_area, 1),
            self.n_edl,
            round(self.error_rate, 2),
        )


def error_rate_tradeoff(
    netlist: Netlist,
    library: Library,
    overhead: float,
    budget_scales: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    scheme: Optional[ClockScheme] = None,
    cycles: int = 160,
    seed: int = 2017,
    sim_backend: str = "compiled",
    retime_cache: bool = True,
    methods: Sequence[str] = ("grar",),
    harden_fractions: Sequence[float] = SELECTIVE_FRACTIONS,
) -> List[TradeoffPoint]:
    """Sweep each method's knob and measure area vs error rate.

    Every point re-runs its flow on the same pristine netlist, so with
    ``retime_cache`` on the first solve of each point hits the
    compiled problem (only post-rescue re-retimes see fresh
    fingerprints).  ``"grar"`` sweeps ``budget_scales`` through the
    rescue budget; ``"selective"`` sweeps ``harden_fractions`` through
    the fragility-ranked hardening policy.  All methods share the one
    clock scheme and simulation seed, so their points are directly
    comparable.
    """
    if scheme is None:
        scheme, _ = prepare_circuit(netlist, library)
    points: List[TradeoffPoint] = []
    for method in methods:
        if method == "selective":
            knobs = harden_fractions
        else:
            knobs = budget_scales
        for knob in knobs:
            outcome = run_flow(
                method,
                netlist,
                library,
                overhead,
                scheme=scheme,
                rescue_budget_scale=(
                    knob if method != "selective" else 1.0
                ),
                harden_fraction=(
                    knob if method == "selective" else 0.5
                ),
                retime_cache=retime_cache,
            )
            report = estimate_error_rate(
                outcome.circuit,
                outcome.retiming.placement,
                outcome.edl_endpoints,
                cycles=cycles,
                seed=seed,
                backend=sim_backend,
            )
            points.append(
                TradeoffPoint(
                    budget_scale=knob,
                    total_area=outcome.total_area,
                    comb_area=outcome.comb_area,
                    n_edl=outcome.n_edl,
                    error_rate=report.error_rate,
                    method=method,
                )
            )
    return points
