"""The area / error-rate trade-off sweep (Section VI-D).

The paper observes that "with a modest area increase of, on average
5%, error-rates can be further reduced, sometimes to 0": spending more
combinational area on speeding near-critical cones pulls more masters
out of the resiliency window, cutting both EDL count and dynamic error
rate.  This sweep exposes that curve by scaling G-RAR's cost-aware
rescue budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cells.library import Library
from repro.clocks import ClockScheme
from repro.flows.run import prepare_circuit, run_flow
from repro.netlist.netlist import Netlist
from repro.sim import estimate_error_rate


@dataclass(frozen=True)
class TradeoffPoint:
    """One budget setting on the area/error-rate curve."""

    budget_scale: float
    total_area: float
    comb_area: float
    n_edl: int
    error_rate: float

    def row(self) -> tuple:
        """The point as a rounded tuple (for tables)."""
        return (
            self.budget_scale,
            round(self.total_area, 1),
            round(self.comb_area, 1),
            self.n_edl,
            round(self.error_rate, 2),
        )


def error_rate_tradeoff(
    netlist: Netlist,
    library: Library,
    overhead: float,
    budget_scales: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    scheme: Optional[ClockScheme] = None,
    cycles: int = 160,
    seed: int = 2017,
    retime_cache: bool = True,
) -> List[TradeoffPoint]:
    """Sweep the rescue budget and measure area vs error rate.

    Every budget point re-runs the grar flow on the same pristine
    netlist, so with ``retime_cache`` on the first G-RAR solve of
    each point hits the compiled problem (only post-rescue re-retimes
    see fresh fingerprints).
    """
    if scheme is None:
        scheme, _ = prepare_circuit(netlist, library)
    points: List[TradeoffPoint] = []
    for scale in budget_scales:
        outcome = run_flow(
            "grar",
            netlist,
            library,
            overhead,
            scheme=scheme,
            rescue_budget_scale=scale,
            retime_cache=retime_cache,
        )
        report = estimate_error_rate(
            outcome.circuit,
            outcome.retiming.placement,
            outcome.edl_endpoints,
            cycles=cycles,
            seed=seed,
        )
        points.append(
            TradeoffPoint(
                budget_scale=scale,
                total_area=outcome.total_area,
                comb_area=outcome.comb_area,
                n_edl=outcome.n_edl,
                error_rate=report.error_rate,
            )
        )
    return points
