"""End-to-end flows: the experiment entry points.

Each flow takes a flop-based netlist, converts it to the two-phase
latch-based resilient form, retimes the slave latches with one of the
paper's three approaches, runs the size-only incremental compile to
clean up residual violations, and reports final areas and counts.
"""

from repro.flows.run import (
    FlowOutcome,
    METHODS,
    prepare_circuit,
    run_flow,
    run_methods,
)
from repro.flows.tradeoff import TradeoffPoint, error_rate_tradeoff

__all__ = [
    "FlowOutcome",
    "METHODS",
    "TradeoffPoint",
    "error_rate_tradeoff",
    "prepare_circuit",
    "run_flow",
    "run_methods",
]
