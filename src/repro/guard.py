"""Inter-stage invariant checkpoints for the flow pipeline.

The pipeline (prepare → retime → size-only compile → area recovery →
finalize) trusts each stage's output.  A corrupted netlist, a NaN
delay, or an illegal latch cut discovered three stages later is far
harder to diagnose than at the stage boundary where it appeared, and
in ``warn`` mode a silently wrong area is worse than a crash.  The
:class:`Guard` runs cheap structural checks between stages:

* **netlist validity** — connectivity, cell existence, pin arity;
* **timing sanity** — no NaN / negative / infinite delays or arrivals;
* **cut legality** — the slave placement against constraints (6)/(7);
* **flow certificate** — handled inside the solver chain
  (:func:`repro.retime.mincostflow.verify_solution`); the guard checks
  the recovered labels' integrality and bounds;
* **area accounting** — sequential/combinational areas finite,
  non-negative, and monotone through area recovery.

Behaviour per :class:`GuardPolicy`:

* ``off`` — checkpoints are skipped entirely (zero overhead);
* ``warn`` — violations are recorded on the outcome
  (``FlowOutcome.guard_records``) but the flow continues;
* ``strict`` — the first violation raises
  :class:`~repro.errors.InvariantError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.errors import InvariantError, NetlistError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cells.library import Library
    from repro.latches.placement import SlavePlacement
    from repro.latches.resilient import SequentialCost, TwoPhaseCircuit
    from repro.netlist.netlist import Netlist
    from repro.retime.result import RetimingResult


class GuardPolicy(Enum):
    """How invariant checkpoints react to violations."""

    OFF = "off"
    WARN = "warn"
    STRICT = "strict"

    @classmethod
    def coerce(cls, value: Union["GuardPolicy", str, None]) -> "GuardPolicy":
        """Accept a policy, its string name, or ``None`` (= off)."""
        if value is None:
            return cls.OFF
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown guard policy {value!r}; choose from "
                f"{[p.value for p in cls]}"
            ) from None


@dataclass
class CheckpointRecord:
    """One checkpoint evaluation (kept even when it passes)."""

    checkpoint: str
    stage: str
    circuit: Optional[str]
    ok: bool
    problems: List[str] = field(default_factory=list)
    notes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form for failure reports."""
        return {
            "checkpoint": self.checkpoint,
            "stage": self.stage,
            "circuit": self.circuit,
            "ok": self.ok,
            "problems": list(self.problems),
            "notes": {k: repr(v) for k, v in self.notes.items()},
        }


class Guard:
    """Checkpoint runner bound to one flow invocation."""

    def __init__(
        self,
        policy: Union[GuardPolicy, str, None] = GuardPolicy.OFF,
        circuit_name: Optional[str] = None,
    ) -> None:
        self.policy = GuardPolicy.coerce(policy)
        self.circuit_name = circuit_name
        self.records: List[CheckpointRecord] = []

    @property
    def enabled(self) -> bool:
        """False under ``off`` — checkpoints become no-ops."""
        return self.policy is not GuardPolicy.OFF

    @property
    def violations(self) -> List[CheckpointRecord]:
        """Records that found problems (non-empty only under warn)."""
        return [r for r in self.records if not r.ok]

    def _settle(
        self,
        checkpoint: str,
        stage: str,
        problems: List[str],
        notes: Optional[Dict[str, object]] = None,
    ) -> CheckpointRecord:
        record = CheckpointRecord(
            checkpoint=checkpoint,
            stage=stage,
            circuit=self.circuit_name,
            ok=not problems,
            problems=problems,
            notes=notes or {},
        )
        self.records.append(record)
        if problems and self.policy is GuardPolicy.STRICT:
            raise InvariantError(
                f"checkpoint {checkpoint!r} failed: " + "; ".join(
                    problems[:5]
                ),
                stage=stage,
                circuit=self.circuit_name,
                payload={"checkpoint": checkpoint, "problems": problems},
            )
        return record

    # -- checkpoints --------------------------------------------------

    def netlist_valid(
        self, netlist: "Netlist", library: "Library", stage: str
    ) -> Optional[CheckpointRecord]:
        """Structural validity of ``netlist`` against ``library``."""
        if not self.enabled:
            return None
        from repro.netlist.validate import validate

        problems: List[str] = []
        try:
            validate(netlist, library)
        except NetlistError as exc:
            problems = list(exc.payload.get("problems") or [str(exc)])
        return self._settle("netlist_valid", stage, problems)

    def timing_sane(
        self, circuit: "TwoPhaseCircuit", stage: str
    ) -> Optional[CheckpointRecord]:
        """No NaN / negative / infinite forward arrivals anywhere."""
        if not self.enabled:
            return None
        problems: List[str] = []
        names = list(circuit.source_names) + [
            g.name for g in circuit.netlist.comb_gates()
        ]
        for name in names:
            value = circuit.df(name)
            if math.isnan(value):
                problems.append(f"D^f({name}) is NaN")
            elif math.isinf(value):
                problems.append(f"D^f({name}) is infinite")
            elif value < 0:
                problems.append(f"D^f({name}) = {value} is negative")
            if len(problems) >= 10:
                problems.append("... (truncated)")
                break
        return self._settle("timing_sane", stage, problems)

    def cut_legality(
        self,
        circuit: "TwoPhaseCircuit",
        placement: "SlavePlacement",
        stage: str,
    ) -> Optional[CheckpointRecord]:
        """The slave cut against constraints (6)/(7).

        Backward overshoots and window overflows are recorded as notes
        only — they are the size-only compile's legitimate work queue
        (Section VI-B), not invariant violations.
        """
        if not self.enabled:
            return None
        report = circuit.check_legality(placement)
        problems: List[str] = []
        if report.negative_edges:
            problems.append(
                f"{len(report.negative_edges)} edges with negative latch "
                f"count; first: {report.negative_edges[0]}"
            )
        if report.forward_violations:
            problems.append(
                f"{len(report.forward_violations)} forward (6) violations; "
                f"first: {report.forward_violations[0]!r}"
            )
        if report.retimed_endpoints:
            problems.append(
                f"{len(report.retimed_endpoints)} fixed masters were "
                f"retimed; first: {report.retimed_endpoints[0]!r}"
            )
        notes: Dict[str, object] = {}
        if report.backward_violations:
            notes["backward_violations"] = len(report.backward_violations)
        if report.window_overflows:
            notes["window_overflows"] = len(report.window_overflows)
        return self._settle("cut_legality", stage, problems, notes)

    def phase_legality(
        self,
        netlist: "Netlist",
        placement: "SlavePlacement",
        stage: str,
    ) -> Optional[CheckpointRecord]:
        """Structural two-phase legality of a placement.

        Every master-to-master path must cross exactly one slave latch
        (no same-phase latch-to-latch paths, no slave-free paths) and
        reconverging paths must agree on the crossing count — the
        invariants :mod:`repro.convert` establishes at conversion time
        and every retiming move must preserve.
        """
        if not self.enabled:
            return None
        from repro.convert.phases import check_phase_legality

        report = check_phase_legality(netlist, placement)
        return self._settle(
            "phase_legality",
            stage,
            report.problems(),
            {
                "n_conflicts": len(report.conflicts),
                "n_unlatched": len(report.unlatched_endpoints),
            },
        )

    def retiming_sane(
        self,
        circuit: "TwoPhaseCircuit",
        retiming: "RetimingResult",
        stage: str,
    ) -> Optional[CheckpointRecord]:
        """Label integrality and bounds of the solver's answer."""
        if not self.enabled:
            return None
        problems: List[str] = []
        netlist = circuit.netlist
        unknown = [
            name
            for name in retiming.placement.retimed
            if name not in netlist
        ]
        if unknown:
            problems.append(
                f"{len(unknown)} retimed labels name gates that do not "
                f"exist; first: {unknown[0]!r}"
            )
        if retiming.cost.n_slaves < 0:
            problems.append(f"negative slave count {retiming.cost.n_slaves}")
        if retiming.cost.n_edl > retiming.cost.n_masters:
            problems.append(
                f"{retiming.cost.n_edl} EDL masters exceed the "
                f"{retiming.cost.n_masters} masters that exist"
            )
        return self._settle("retiming_sane", stage, problems)

    def area_accounting(
        self,
        cost: "SequentialCost",
        comb_area: float,
        stage: str,
        recovery_delta: Optional[float] = None,
    ) -> Optional[CheckpointRecord]:
        """Final areas finite, non-negative, and recovery monotone."""
        if not self.enabled:
            return None
        problems: List[str] = []
        for label, value in (
            ("sequential area", cost.area),
            ("combinational area", comb_area),
        ):
            if math.isnan(value):
                problems.append(f"{label} is NaN")
            elif math.isinf(value):
                problems.append(f"{label} is infinite")
            elif value < 0:
                problems.append(f"{label} = {value} is negative")
        if cost.n_slaves < 0:
            problems.append(f"negative slave count {cost.n_slaves}")
        if cost.n_edl > cost.n_masters:
            problems.append(
                f"{cost.n_edl} EDL masters exceed {cost.n_masters} masters"
            )
        # Area *recovery* must never grow the design it recovers.
        if recovery_delta is not None and recovery_delta > 1e-9:
            problems.append(
                f"area recovery increased area by {recovery_delta}"
            )
        return self._settle(
            "area_accounting",
            stage,
            problems,
            {"recovery_delta": recovery_delta},
        )
