"""repro — retiming of two-phase latch-based resilient circuits.

A full reproduction of the DAC'17 paper (and its journal extension):
resiliency-aware min-area retiming of slave latches via a min-cost-flow
dual (G-RAR), the virtual-library alternative (VL-RAR), and the
evaluation harness that regenerates every table and figure.

Public API quick reference::

    from repro import (
        default_library,     # the synthetic 28nm-flavoured library
        build_benchmark,     # Table I circuit profiles (+ Plasma)
        prepare_circuit,     # flop netlist -> clock + two-phase view
        run_flow,            # "base" / "grar" / "rvl" / ... end to end
        estimate_error_rate, # Table VIII simulation
        ExperimentSuite,     # Tables I-IX drivers
        ReproError,          # root of the exception taxonomy
        GuardPolicy,         # inter-stage invariant checkpoints
    )
"""

from repro.cells import build_virtual_library, default_library
from repro.circuits import build_benchmark, suite_names
from repro.clocks import ClockScheme, scheme_from_period
from repro.core import STA_ENGINES, make_timing_engine
from repro.errors import (
    FlowStageError,
    InvariantError,
    NetlistError,
    ReproError,
    SolverError,
    TimingError,
)
from repro.flows import FlowOutcome, METHODS, prepare_circuit, run_flow
from repro.guard import Guard, GuardPolicy
from repro.harness import ExperimentSuite
from repro.latches import SlavePlacement, TwoPhaseCircuit
from repro.netlist import Netlist, NetlistBuilder, parse_bench, validate
from repro.retime import base_retime, grar_retime
from repro.sim import estimate_error_rate, estimate_error_rate_batched
from repro.vl import VlVariant, vl_retime

__version__ = "1.0.0"

__all__ = [
    "ClockScheme",
    "ExperimentSuite",
    "FlowOutcome",
    "FlowStageError",
    "Guard",
    "GuardPolicy",
    "InvariantError",
    "METHODS",
    "NetlistError",
    "ReproError",
    "SolverError",
    "TimingError",
    "Netlist",
    "NetlistBuilder",
    "STA_ENGINES",
    "SlavePlacement",
    "TwoPhaseCircuit",
    "VlVariant",
    "base_retime",
    "build_benchmark",
    "build_virtual_library",
    "default_library",
    "estimate_error_rate",
    "estimate_error_rate_batched",
    "grar_retime",
    "make_timing_engine",
    "parse_bench",
    "prepare_circuit",
    "run_flow",
    "scheme_from_period",
    "suite_names",
    "validate",
    "vl_retime",
    "__version__",
]
