"""Structured exception taxonomy for the whole tool flow.

Every failure the pipeline can diagnose is a :class:`ReproError`
carrying three pieces of machine-readable context:

* ``stage`` — the flow stage that failed (``prepare`` / ``retime`` /
  ``sizing`` / ``finalize`` / ...);
* ``circuit`` — the circuit being processed, when known;
* ``payload`` — free-form diagnostic details (violated constraints,
  solver attempt records, offending gate names, ...).

The concrete classes mirror the subsystems:

* :class:`NetlistError` — structural problems (missing drivers, bad
  cells, parse failures);
* :class:`TimingError` — timing-model and feasibility problems
  (NaN/negative delays, clocks too tight for a legal cut);
* :class:`SolverError` — min-cost-flow / LP breakdowns (infeasible,
  unbounded, iteration budget, cycling, cross-check mismatch);
* :class:`SimulationError` — the timed logic simulation left its
  modeling envelope (e.g. a net's event count blew past the hard cap,
  so the waveform could no longer be trusted);
* :class:`FlowStageError` — a stage of the end-to-end flow failed;
  :class:`InvariantError` is its guard-checkpoint specialization.

Each class also inherits the builtin exception its call sites
historically raised (``ValueError`` / ``RuntimeError``), so existing
``except`` clauses keep working while new code can catch the whole
taxonomy with ``except ReproError``.  Unlike a bare ``assert``, these
checks survive ``python -O``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Union

from repro import metrics


class ReproError(Exception):
    """Base class: a diagnosable failure anywhere in the pipeline."""

    def __init__(
        self,
        message: str,
        *,
        stage: Optional[str] = None,
        circuit: Optional[str] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.stage = stage
        self.circuit = circuit
        self.payload = dict(payload or {})

    def annotate(
        self, stage: Optional[str] = None, circuit: Optional[str] = None
    ) -> "ReproError":
        """Fill in missing context in place (never overwrites)."""
        if self.stage is None:
            self.stage = stage
        if self.circuit is None:
            self.circuit = circuit
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (JSON-serializable)."""
        return {
            "type": type(self).__name__,
            "message": self.message,
            "stage": self.stage,
            "circuit": self.circuit,
            "payload": _jsonable(self.payload),
        }

    def __str__(self) -> str:
        prefix = ""
        if self.stage or self.circuit:
            where = "/".join(p for p in (self.circuit, self.stage) if p)
            prefix = f"[{where}] "
        return f"{prefix}{self.message}"


class NetlistError(ReproError, ValueError):
    """A netlist is structurally invalid or unparseable.

    ``problems`` lists every issue found, so one validation pass
    reports everything instead of failing on the first.
    """

    def __init__(
        self,
        problems: Union[str, List[str]],
        *,
        stage: Optional[str] = None,
        circuit: Optional[str] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        if isinstance(problems, str):
            problems = [problems]
        self.problems = list(problems)
        merged = dict(payload or {})
        merged.setdefault("problems", list(self.problems))
        super().__init__(
            "; ".join(self.problems),
            stage=stage,
            circuit=circuit,
            payload=merged,
        )


class ConversionError(NetlistError):
    """A flop netlist cannot be converted to a legal two-phase design.

    Raised by :mod:`repro.convert` when the conversion front end finds
    the design infeasible (Vm/Vn region conflicts, no timing paths) or
    the resulting phase assignment illegal (same-phase latch-to-latch
    paths, unphased sequential elements); ``payload`` carries the
    offending nodes.
    """


class TimingError(ReproError, ValueError):
    """Timing queries or timing feasibility broke down."""


class SolverError(ReproError, RuntimeError):
    """A flow/LP solver failed to produce a usable answer."""


class UnboundedFlowError(SolverError):
    """The flow problem is unbounded (a negative-cost cycle with no
    reverse-arc limit) — indicates a malformed retiming graph."""


class InfeasibleFlowError(SolverError):
    """No flow satisfies the node demands."""


class SolverTimeoutError(SolverError):
    """A solver exceeded its iteration budget or wall-clock deadline."""


class SimulationError(ReproError, RuntimeError):
    """The timed logic simulation exceeded its modeling limits.

    Raised instead of silently degrading the waveform model (the old
    behaviour was to truncate event lists, which under-reported error
    rates); ``payload`` carries the offending gate and event counts.
    """


class FlowStageError(ReproError, RuntimeError):
    """One stage of the end-to-end flow failed."""


class InvariantError(FlowStageError):
    """An inter-stage guard checkpoint found a violated invariant."""


class DeadlineError(FlowStageError):
    """A unit of work blew its wall-clock deadline and was killed.

    Raised (or recorded as a typed FAILED entry, under isolation) by
    the parallel harness when a worker process exceeds its per-task
    deadline; ``payload`` carries the deadline and the attempt count.
    """


#: Exception classes that must never be swallowed by isolation layers.
_PASSTHROUGH = (KeyboardInterrupt, SystemExit, GeneratorExit)


@contextmanager
def stage_scope(
    stage: str, circuit: Optional[str] = None
) -> Iterator[None]:
    """Attribute any failure inside the block to a named flow stage.

    Typed :class:`ReproError` exceptions pass through with their
    missing ``stage``/``circuit`` context filled in; anything else is
    wrapped in a :class:`FlowStageError` so callers can rely on the
    taxonomy instead of catching bare ``Exception``.

    When a :mod:`repro.metrics` collector is ambient, the block is
    also timed as stage ``stage`` (wall clock + peak RSS) — this is
    how the per-stage counters of ``BENCH_*.json`` artifacts are fed
    without a second instrumentation layer in every flow.
    """
    with metrics.stage_timer(stage):
        try:
            yield
        except ReproError as exc:
            raise exc.annotate(stage=stage, circuit=circuit)
        except _PASSTHROUGH:
            raise
        except Exception as exc:
            raise FlowStageError(
                f"stage {stage!r} failed: {exc}",
                stage=stage,
                circuit=circuit,
                payload={"cause": type(exc).__name__},
            ) from exc


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of payloads to JSON-encodable values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
