"""Soft-error & variation scenario engine.

Sweeps circuits × variation corners × upset models × hardening
policies, with graceful degradation (typed FAILED entries, retries,
resumable memo) as a first-class contract.

Import discipline: :mod:`repro.scenarios.injectors` sits *below* the
simulators (both backends import its pure event-list transforms),
while :mod:`repro.scenarios.engine` sits *above* the flows, sim, and
harness layers.  Only the injector layer loads eagerly here; the
engine and fragility names resolve lazily (PEP 562) so that
``repro.sim -> injectors -> this package`` never re-enters the
half-initialized upper layers.
"""

from repro.scenarios.injectors import (
    MIN_DELAY_FACTOR,
    GlitchSpec,
    InjectionPlan,
    build_injection_plan,
    delay_corner_scale,
    glitch_events,
    latch_state_keys,
)

#: Lazily-resolved exports: name -> providing submodule.
_LAZY = {
    "FragilityEntry": "fragility",
    "FragilityReport": "fragility",
    "rank_fragility": "fragility",
    "select_hardened": "fragility",
    "CORNERS": "engine",
    "DEFAULT_CORNERS": "engine",
    "DEFAULT_POLICIES": "engine",
    "DEFAULT_UPSETS": "engine",
    "POLICIES": "engine",
    "UPSETS": "engine",
    "CornerSpec": "engine",
    "ScenarioReport": "engine",
    "ScenarioTask": "engine",
    "UpsetSpec": "engine",
    "run_scenario": "engine",
    "run_scenarios": "engine",
    "scenario_seed": "engine",
}

__all__ = [
    "GlitchSpec",
    "InjectionPlan",
    "MIN_DELAY_FACTOR",
    "build_injection_plan",
    "delay_corner_scale",
    "glitch_events",
    "latch_state_keys",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value
