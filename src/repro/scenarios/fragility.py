"""Timing-fragility analysis: rank masters by slack under a placement.

Selective hardening (the scenario engine's third hardening policy,
next to uniform-``c`` G-RAR and the VL typings) needs to know *which*
masters are worth upgrading to error-detecting latches.  The natural
ranking is timing slack: a master whose eq. (5) arrival sits right at
the resiliency-window boundary flips on the smallest delay push —
variation corners, glitch-lengthened paths — while a master with fat
slack survives them all.  The arrivals come from the incremental STA
engine via :meth:`TwoPhaseCircuit.endpoint_arrivals`, so re-ranking
after a sizing change costs only the repaired cones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.latches.placement import SlavePlacement
from repro.latches.resilient import EPS, TwoPhaseCircuit


@dataclass(frozen=True)
class FragilityEntry:
    """One master's timing fragility under a placement."""

    endpoint: str
    #: Worst eq. (5) data arrival at the master.
    arrival: float
    #: ``window_open - arrival``: non-positive means the master's data
    #: can land inside the timing-resiliency window.
    slack: float

    def row(self) -> Dict[str, object]:
        return {
            "endpoint": self.endpoint,
            "arrival": self.arrival,
            "slack": self.slack,
        }


@dataclass(frozen=True)
class FragilityReport:
    """All masters ranked most-fragile first (ascending slack)."""

    circuit_name: str
    window_open: float
    entries: Tuple[FragilityEntry, ...]

    def fragile(self, threshold: Optional[float] = None) -> List[FragilityEntry]:
        """Entries whose arrival exceeds ``threshold`` (default: the
        window opening — the masters that *need* error detection)."""
        limit = self.window_open if threshold is None else threshold
        return [e for e in self.entries if e.arrival > limit + EPS]

    def to_rows(self) -> List[Dict[str, object]]:
        return [e.row() for e in self.entries]


def rank_fragility(
    circuit: TwoPhaseCircuit, placement: SlavePlacement
) -> FragilityReport:
    """Rank every master by slack against the window opening.

    Ties break on the endpoint name so the ranking — and everything
    the selective-hardening policy derives from it — is deterministic
    across runs and platforms.
    """
    window_open = circuit.scheme.window_open
    arrivals = circuit.endpoint_arrivals(placement)
    entries = [
        FragilityEntry(
            endpoint=name,
            arrival=arrival,
            slack=window_open - arrival,
        )
        for name, arrival in arrivals.items()
    ]
    entries.sort(key=lambda e: (e.slack, e.endpoint))
    return FragilityReport(
        circuit_name=circuit.netlist.name,
        window_open=window_open,
        entries=tuple(entries),
    )


def select_hardened(
    report: FragilityReport,
    fraction: float,
    threshold: Optional[float] = None,
) -> Set[str]:
    """The top ``fraction`` most fragile masters, as the EDL set.

    Only masters past ``threshold`` (default: the window opening) are
    candidates — hardening a master whose data can never reach the
    window buys nothing.  ``fraction`` of 1.0 hardens every candidate
    (uniform hardening of the fragile set); 0.0 hardens none and
    relies entirely on path speed-ups.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("harden fraction must be in [0, 1]")
    candidates = report.fragile(threshold)
    if not candidates or fraction == 0.0:
        return set()
    count = math.ceil(fraction * len(candidates))
    return {e.endpoint for e in candidates[:count]}
