"""Scenario matrix engine: circuits × corners × upsets × policies.

One scenario is a full flow-plus-simulation run: harden the circuit
under a *policy* (uniform-``c`` G-RAR, fragility-ranked selective
hardening, or the base flow), then measure its error rate under a
delay-variation *corner* and an *upset model* (SEU capture flips and
glitch pulses from :mod:`repro.scenarios.injectors`).  The engine
sweeps the whole matrix through the deadline-enforcing parallel
runner with **graceful degradation as the contract**:

* a scenario that crashes, trips a strict guard, or exceeds the
  per-scenario deadline becomes a typed FAILED entry in the report —
  the sweep never aborts;
* transient worker deaths (and deadline kills) are retried once with
  backoff before being recorded;
* every settled scenario is checkpointed to a resumable JSON memo the
  moment it lands, so a killed sweep continues corner-by-corner.

Two corners exist purely to drill that contract: ``chaos-crash``
raises deterministically and ``chaos-hang`` sleeps past any deadline.
They are failure-injection fixtures, not physics.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import metrics
from repro.cells.library import Library
from repro.clocks import ClockScheme
from repro.errors import FlowStageError, ReproError
from repro.flows.run import METHODS, prepare_circuit, run_flow
from repro.netlist.netlist import Netlist
from repro.scenarios.injectors import build_injection_plan
from repro.sim import SIM_BACKENDS, estimate_error_rate_batched
from repro.store import (
    ArtifactStore,
    atomic_write_text,
    config_fingerprint,
    content_digest,
    library_fingerprint,
    memo_cell_key,
    open_store,
)

#: Scenario report / memo schema versions.
REPORT_SCHEMA = "repro-scenarios/1"
MEMO_SCHEMA = "repro-scenarios-memo/1"


@dataclass(frozen=True)
class CornerSpec:
    """One delay-variation corner (or a chaos drill)."""

    name: str
    #: systematic delay multiplier (voltage/temperature shift).
    systematic: float = 1.0
    #: per-gate random sigma (process variation).
    sigma: float = 0.0
    #: ``"crash"`` / ``"hang"`` turn the corner into a deliberate
    #: degradation drill; ``""`` is a real corner.
    chaos: str = ""


@dataclass(frozen=True)
class UpsetSpec:
    """One upset model: per-cycle strike probabilities."""

    name: str
    seu_rate: float = 0.0
    glitch_rate: float = 0.0


#: The named variation corners the CLI exposes.
CORNERS: Dict[str, CornerSpec] = {
    spec.name: spec
    for spec in (
        CornerSpec("nominal"),
        CornerSpec("slow", systematic=1.05),
        CornerSpec("fast", systematic=0.95),
        CornerSpec("sigma", sigma=0.04),
        CornerSpec("slow-sigma", systematic=1.05, sigma=0.04),
        CornerSpec("chaos-crash", chaos="crash"),
        CornerSpec("chaos-hang", chaos="hang"),
    )
}

#: The named upset models.
UPSETS: Dict[str, UpsetSpec] = {
    spec.name: spec
    for spec in (
        UpsetSpec("none"),
        UpsetSpec("seu", seu_rate=0.05),
        UpsetSpec("glitch", glitch_rate=0.05),
        UpsetSpec("seu-glitch", seu_rate=0.05, glitch_rate=0.05),
    )
}

#: Hardening policies a scenario can run (a subset of flow METHODS).
POLICIES: Tuple[str, ...] = ("base", "grar", "selective")

DEFAULT_CORNERS: Tuple[str, ...] = ("nominal", "slow", "sigma")
DEFAULT_UPSETS: Tuple[str, ...] = ("none", "seu", "glitch")
DEFAULT_POLICIES: Tuple[str, ...] = ("grar", "selective")


def scenario_seed(
    base_seed: int,
    circuit: str,
    corner: str,
    upset: str,
    policy: str,
    lane: int = 0,
) -> int:
    """The derived per-scenario seed.

    One CLI ``--seed`` fans out to every scenario through a hash of
    the scenario's identity, so (a) two identical invocations are
    byte-identical and (b) no two scenarios share vector/injection
    streams by accident.  ``lane`` indexes the Monte-Carlo seed within
    a multi-seed scenario; lane 0 hashes the legacy text so existing
    memos and reports keep their seeds.
    """
    fields = [str(base_seed), circuit, corner, upset, policy]
    if lane:
        fields.append(str(lane))
    text = "\x1f".join(fields)
    return int(content_digest(text, 8), 16)


@dataclass(frozen=True)
class ScenarioTask:
    """One scenario, fully provisioned for a worker process."""

    circuit: str
    corner: CornerSpec
    upset: UpsetSpec
    policy: str
    netlist: Netlist
    scheme: ClockScheme
    library: Library
    overhead: float
    cycles: int
    seed: int
    sim_backend: str = "compiled"
    #: the full Monte-Carlo seed sweep; empty means ``(seed,)``.
    #: ``seeds[0]`` is always the legacy lane-0 ``seed``.
    seeds: Tuple[int, ...] = ()
    guard: Optional[str] = None
    harden_fraction: float = 0.5
    #: how long a chaos-hang corner sleeps (tests shorten it).
    hang_s: float = 3600.0
    #: persistent artifact-store directory the worker's flow runs
    #: under (compiled problems / arenas shared across the matrix).
    store_dir: Optional[str] = None

    @property
    def key(self) -> Tuple[str, str, str, str]:
        return (self.circuit, self.corner.name, self.upset.name, self.policy)


def memo_key(key: Tuple[str, str, str, str]) -> str:
    """The JSON-array memo key of a scenario (the canonical
    :func:`repro.store.memo_cell_key` recipe)."""
    return memo_cell_key(key)


def run_scenario(task: ScenarioTask) -> Dict[str, Any]:
    """Worker entry: one flow + injected simulation, as a report entry.

    Raises :class:`ReproError` on failure — the parallel runner turns
    that into a typed :class:`~repro.harness.parallel.TaskFailure`.
    """
    corner = task.corner
    if corner.chaos == "crash":
        raise FlowStageError(
            f"chaos corner {corner.name!r}: deliberate failure drill",
            stage="scenario",
            circuit=task.circuit,
        )
    if corner.chaos == "hang":
        time.sleep(task.hang_s)

    outcome = run_flow(
        task.policy,
        task.netlist,
        task.library,
        task.overhead,
        scheme=task.scheme,
        guard=task.guard,
        harden_fraction=task.harden_fraction,
        store=task.store_dir,
    )
    plan = build_injection_plan(
        outcome.circuit.netlist,
        task.scheme,
        cycles=task.cycles,
        seed=task.seed,
        systematic=corner.systematic,
        sigma=corner.sigma,
        seu_rate=task.upset.seu_rate,
        glitch_rate=task.upset.glitch_rate,
        placement=outcome.retiming.placement,
        label=f"{corner.name}/{task.upset.name}",
    )
    seeds = task.seeds or (task.seed,)
    # One compile shared across the whole seed sweep; each report is
    # comparison-identical to a per-seed estimate_error_rate call.
    reports = estimate_error_rate_batched(
        outcome.circuit,
        outcome.retiming.placement,
        outcome.edl_endpoints,
        cycles=task.cycles,
        seeds=seeds,
        backend=task.sim_backend,
        injection=plan,
    )
    if len(reports) == 1:
        # Legacy single-seed blob shape, so existing state digests in
        # memos stay valid.
        states: Any = [
            sorted(reports[0].final_flop_state.items()),
            sorted(reports[0].final_latch_state.items()),
        ]
    else:
        states = [
            [
                sorted(r.final_flop_state.items()),
                sorted(r.final_latch_state.items()),
            ]
            for r in reports
        ]
    state_blob = json.dumps(states, separators=(",", ":"))
    entry = {
        "circuit": task.circuit,
        "corner": corner.name,
        "upset": task.upset.name,
        "policy": task.policy,
        "status": "ok",
        "seed": task.seed,
        "cycles": task.cycles,
        "error_cycles": sum(r.error_cycles for r in reports),
        "error_rate": sum(r.error_rate for r in reports) / len(reports),
        "non_edl_violations": sum(
            r.non_edl_violations for r in reports
        ),
        "n_edl": outcome.n_edl,
        "n_slaves": outcome.n_slaves,
        "total_area": outcome.total_area,
        "injected": plan.counts(),
        "state_digest": content_digest(state_blob, 16),
    }
    if len(seeds) > 1:
        entry["seeds"] = list(seeds)
        entry["per_seed_error_rates"] = [r.error_rate for r in reports]
    return entry


def _failed_entry(
    key: Tuple[str, str, str, str],
    kind: str,
    message: str,
    attempts: int = 1,
    stage: Optional[str] = None,
    error: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A typed FAILED report entry (the degradation contract's unit)."""
    circuit, corner, upset, policy = key
    return {
        "circuit": circuit,
        "corner": corner,
        "upset": upset,
        "policy": policy,
        "status": "failed",
        "failure_kind": kind,
        "attempts": attempts,
        "stage": stage or (error or {}).get("stage"),
        "message": message,
        "error": error,
    }


@dataclass
class ScenarioReport:
    """The settled scenario matrix."""

    seed: int
    overhead: float
    cycles: int
    sim_backend: str
    harden_fraction: float
    entries: List[Dict[str, Any]] = field(default_factory=list)
    #: wall clock of this invocation; deliberately not serialized so
    #: identical invocations produce byte-identical report files.
    wall_s: float = 0.0

    @property
    def ok_entries(self) -> List[Dict[str, Any]]:
        return [e for e in self.entries if e["status"] == "ok"]

    @property
    def failed_entries(self) -> List[Dict[str, Any]]:
        return [e for e in self.entries if e["status"] != "ok"]

    def to_dict(self) -> Dict[str, Any]:
        """JSON form: run parameters plus sorted entries.

        The producing backend and wall-clock times are excluded on
        purpose: both backends must render the identical file (CI
        diffs them), and identical invocations must be byte-identical.
        """
        return {
            "schema": REPORT_SCHEMA,
            "seed": self.seed,
            "overhead": self.overhead,
            "cycles": self.cycles,
            "harden_fraction": self.harden_fraction,
            "n_ok": len(self.ok_entries),
            "n_failed": len(self.failed_entries),
            "entries": self.entries,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def _memo_config(
    seed: int,
    overhead: float,
    cycles: int,
    sim_backend: str,
    harden_fraction: float,
    n_seeds: int = 1,
) -> Dict[str, Any]:
    config = {
        "seed": seed,
        "overhead": overhead,
        "cycles": cycles,
        "sim_backend": sim_backend,
        "harden_fraction": harden_fraction,
    }
    # Only multi-seed sweeps stamp the key: single-seed runs keep
    # their pre-existing memo fingerprints (and resumable memos).
    if n_seeds > 1:
        config["n_seeds"] = n_seeds
    return config


def _load_memo(
    path: Path, config: Dict[str, Any]
) -> Dict[str, Dict[str, Any]]:
    """Entries of a resumable memo, or empty on absence/mismatch."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    if (
        data.get("schema") != MEMO_SCHEMA
        or data.get("config") != config
    ):
        return {}
    entries = data.get("entries")
    return dict(entries) if isinstance(entries, dict) else {}


def _memo_payload(
    config: Dict[str, Any], entries: Mapping[str, Dict[str, Any]]
) -> Dict[str, Any]:
    return {
        "schema": MEMO_SCHEMA,
        "config": config,
        "entries": dict(sorted(entries.items())),
    }


def _write_memo(
    path: Path,
    config: Dict[str, Any],
    entries: Mapping[str, Dict[str, Any]],
) -> None:
    """Atomic memo write (unique tmp + replace: a killed sweep never
    leaves a torn file behind, and two sweeps sharing the memo path
    never clobber each other's in-flight tmp)."""
    payload = _memo_payload(config, entries)
    atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def _store_memo_key(config: Dict[str, Any], library: Library) -> str:
    """The ``"scenario-memo"`` artifact key: run config + library."""
    return config_fingerprint(
        "scenario-memo",
        {**config, "library": library_fingerprint(library)},
    )


def _load_store_memo(
    store: Optional[ArtifactStore],
    key: str,
    config: Dict[str, Any],
) -> Dict[str, Dict[str, Any]]:
    """Settled entries from a persistent store's memo artifact."""
    if store is None or not store.persistent:
        return {}
    payload = store.get("scenario-memo", key)
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != MEMO_SCHEMA
        or payload.get("config") != config
    ):
        return {}
    entries = payload.get("entries")
    return dict(entries) if isinstance(entries, dict) else {}


def run_scenarios(
    circuits: Union[Mapping[str, Netlist], Sequence[Tuple[str, Netlist]]],
    library: Library,
    corners: Sequence[str] = DEFAULT_CORNERS,
    upsets: Sequence[str] = DEFAULT_UPSETS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    overhead: float = 1.0,
    cycles: int = 96,
    seed: int = 2017,
    n_seeds: int = 1,
    sim_backend: str = "compiled",
    guard: Optional[str] = None,
    jobs: int = 1,
    deadline_s: Optional[float] = None,
    memo_path: Optional[Union[str, Path]] = None,
    retry_failed: bool = False,
    harden_fraction: float = 0.5,
    hang_s: float = 3600.0,
    store: Union[ArtifactStore, str, Path, None] = None,
) -> ScenarioReport:
    """Run the scenario matrix; degrade gracefully, resume from memo.

    Every (circuit, corner, upset, policy) combination runs once in a
    killable worker process; crashes, strict-guard trips, worker
    deaths, and deadline misses settle as typed FAILED entries (with
    one retry for the transient kinds) and the sweep continues.  With
    ``memo_path``, completed scenarios are checkpointed as they land
    and skipped on re-runs (``retry_failed`` re-attempts FAILED ones).

    ``n_seeds`` widens each scenario into a Monte-Carlo sweep over
    derived seeds sharing one simulator compile (lane 0 is the legacy
    per-scenario seed, so single-seed memos stay valid); entries then
    carry the mean ``error_rate`` plus per-seed rates.

    ``store`` attaches an artifact store: workers run their flows
    under it (compiled problems and arenas shared across the matrix
    and across invocations), and a *persistent* store additionally
    carries the memo as a ``"scenario-memo"`` artifact keyed by the
    run config — a warm rerun resumes from the store with no
    ``memo_path`` at all.  Reports are byte-identical with or without
    a store.
    """
    if sim_backend not in SIM_BACKENDS:
        raise ValueError(
            f"unknown simulation backend {sim_backend!r}; "
            f"expected one of {SIM_BACKENDS}"
        )
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
    for name, known, label in (
        (corners, CORNERS, "corner"),
        (upsets, UPSETS, "upset model"),
    ):
        unknown = [n for n in name if n not in known]
        if unknown:
            raise ValueError(
                f"unknown {label}(s) {unknown}; "
                f"choose from {sorted(known)}"
            )
    bad_policies = [p for p in policies if p not in METHODS]
    if bad_policies:
        raise ValueError(
            f"unknown polic(ies) {bad_policies}; choose from {METHODS}"
        )

    if isinstance(circuits, Mapping):
        pairs = sorted(circuits.items())
    else:
        pairs = list(circuits)

    config = _memo_config(
        seed, overhead, cycles, sim_backend, harden_fraction, n_seeds
    )
    store_obj = open_store(store)
    store_dir = (
        str(store_obj.root)
        if store_obj is not None and store_obj.persistent
        else None
    )
    store_key = _store_memo_key(config, library)
    memo = Path(memo_path) if memo_path is not None else None
    # Store memo first, file memo second: an explicit path is the
    # closer authority when both carry the same scenario.
    entries: Dict[str, Dict[str, Any]] = _load_store_memo(
        store_obj, store_key, config
    )
    if memo is not None:
        entries.update(_load_memo(memo, config))

    started = time.perf_counter()
    all_keys: List[Tuple[str, str, str, str]] = []
    tasks: List[ScenarioTask] = []
    for circuit_name, netlist in pairs:
        try:
            scheme, _ = prepare_circuit(netlist, library)
        except (ReproError, ValueError, KeyError) as exc:
            # A circuit that cannot even prepare degrades to FAILED
            # entries across its whole sub-matrix.
            for corner_name in corners:
                for upset_name in upsets:
                    for policy in policies:
                        key = (circuit_name, corner_name, upset_name, policy)
                        all_keys.append(key)
                        entries[memo_key(key)] = _failed_entry(
                            key,
                            kind="crash",
                            message=str(exc),
                            stage="prepare",
                            error=(
                                exc.to_dict()
                                if isinstance(exc, ReproError)
                                else None
                            ),
                        )
            continue
        for corner_name in corners:
            for upset_name in upsets:
                for policy in policies:
                    key = (circuit_name, corner_name, upset_name, policy)
                    all_keys.append(key)
                    existing = entries.get(memo_key(key))
                    if existing is not None and (
                        existing.get("status") == "ok" or not retry_failed
                    ):
                        metrics.count("scenarios.memo_hits")
                        continue
                    lane_seeds = tuple(
                        scenario_seed(
                            seed, circuit_name, corner_name,
                            upset_name, policy, lane=lane,
                        )
                        for lane in range(n_seeds)
                    )
                    tasks.append(
                        ScenarioTask(
                            circuit=circuit_name,
                            corner=CORNERS[corner_name],
                            upset=UPSETS[upset_name],
                            policy=policy,
                            netlist=netlist,
                            scheme=scheme,
                            library=library,
                            overhead=overhead,
                            cycles=cycles,
                            seed=lane_seeds[0],
                            seeds=lane_seeds,
                            sim_backend=sim_backend,
                            guard=guard,
                            harden_fraction=harden_fraction,
                            hang_s=hang_s,
                            store_dir=store_dir,
                        )
                    )

    def settle(index: int, outcome: Any) -> None:
        task = tasks[index]
        if isinstance(outcome, dict):
            entry = outcome
        else:
            # A TaskFailure from the deadline runner.
            entry = _failed_entry(
                task.key,
                kind=outcome.kind,
                message=outcome.message,
                attempts=outcome.attempts,
                error=outcome.error,
            )
            metrics.count(f"scenarios.failed.{outcome.kind}")
        entries[memo_key(task.key)] = entry
        if memo is not None:
            _write_memo(memo, config, entries)
        if store_dir is not None:
            store_obj.put(
                "scenario-memo", store_key, _memo_payload(config, entries)
            )

    if tasks:
        # Import here: parallel imports experiments imports flows —
        # a module-load cycle if pulled at the top.
        from repro.harness.parallel import run_tasks_with_deadline

        run_tasks_with_deadline(
            run_scenario,
            tasks,
            jobs=jobs,
            deadline_s=deadline_s,
            on_result=settle,
        )

    report = ScenarioReport(
        seed=seed,
        overhead=overhead,
        cycles=cycles,
        sim_backend=sim_backend,
        harden_fraction=harden_fraction,
        entries=[entries[memo_key(key)] for key in sorted(set(all_keys))],
        wall_s=time.perf_counter() - started,
    )
    metrics.count("scenarios.runs")
    metrics.count("scenarios.entries", len(report.entries))
    metrics.count("scenarios.failed", len(report.failed_entries))
    return report
