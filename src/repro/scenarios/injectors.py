"""Simulation-level fault injectors: SEU, glitch pulses, delay corners.

The PR-1 injectors (:mod:`repro.faults`) corrupt the *flow inputs* —
netlists, delay data, clock schemes — to exercise the error taxonomy.
The injectors here perturb the *simulation itself*, modeling the
physical phenomena the paper's resilient latches exist to survive:

* **SEU capture flips** — a particle strike inverts the value a
  flop/latch captured; modeled as bit-flips in the simulator's shared
  carry-over state (``flop_values`` / ``latch_state``) between cycles;
* **glitch pulses** — a transient pulse forces one net to the
  complement of its current value for a fixed width; downstream logic
  and latches see the glitched waveform;
* **delay-variation corners** — per-gate arc-delay multipliers
  combining a systematic shift (voltage/temperature) with a
  seeded-random per-gate sigma (process variation).

All three are expressed as an :class:`InjectionPlan` — a fully
resolved, deterministic schedule computed *before* simulation from an
explicit :class:`random.Random` — so both simulation backends
(:class:`~repro.sim.logicsim.TimedSimulator` and
:class:`~repro.sim.kernel.CompiledSimulator`) honour the exact same
perturbations and their bit-parity oracle keeps holding under
injection.  The waveform transforms below are pure functions over the
``(initial, times, values)`` event-list form shared by both backends:
no backend-specific float arithmetic can creep in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.clocks import ClockScheme
from repro.latches.placement import HOST, SlavePlacement
from repro.netlist.netlist import Netlist

#: Lower clamp for delay-corner multipliers: a gate cannot get
#: arbitrarily fast, and zero/negative delays would break the
#: transport-delay model's envelope.
MIN_DELAY_FACTOR = 0.05


@dataclass(frozen=True)
class GlitchSpec:
    """One transient pulse: ``net`` is forced to the complement of its
    value at ``start`` over ``[start, start + width)``."""

    net: str
    start: float
    width: float


@dataclass(frozen=True)
class InjectionPlan:
    """A resolved, deterministic injection schedule for one simulation.

    ``delay_scale`` multiplies every arc delay of the named gate;
    ``glitches`` maps cycle index to the pulses struck that cycle;
    ``seu_flips`` maps cycle index to the state keys flipped *after*
    that cycle's capture (flop names flip ``flop_values``, ``latch:``
    keys flip ``latch_state``).  An empty plan is a no-op and the
    simulation is bit-identical to an uninjected run.
    """

    delay_scale: Mapping[str, float] = field(default_factory=dict)
    glitches: Mapping[int, Tuple[GlitchSpec, ...]] = field(
        default_factory=dict
    )
    seu_flips: Mapping[int, Tuple[str, ...]] = field(default_factory=dict)
    label: str = ""

    @property
    def empty(self) -> bool:
        return not (self.delay_scale or self.glitches or self.seu_flips)

    def counts(self) -> Dict[str, int]:
        """How much of each injection kind the plan schedules."""
        return {
            "scaled_gates": sum(
                1 for f in self.delay_scale.values() if f != 1.0
            ),
            "glitches": sum(len(v) for v in self.glitches.values()),
            "seu_flips": sum(len(v) for v in self.seu_flips.values()),
        }


def glitch_events(
    initial: int,
    times: Sequence[float],
    values: Sequence[int],
    spec: GlitchSpec,
) -> Tuple[List[float], List[int]]:
    """Apply one glitch pulse to a normalized event list.

    During ``[start, start + width)`` the net is forced to the
    complement of its (inclusive) value at ``start``; original
    transitions inside the pulse are swallowed; at the pulse end the
    net returns to the original waveform's value.  Pure event-list
    surgery — comparisons only, no float arithmetic — so both
    simulation backends produce byte-identical glitched waveforms.
    """
    start = spec.start
    end = spec.start + spec.width
    # Inclusive value at `start` / `end`, matching Waveform.value_at.
    at_start = initial
    at_end = initial
    for when, value in zip(times, values):
        if when <= start:
            at_start = value
        if when <= end:
            at_end = value
        else:
            break
    forced = 1 - at_start
    events: List[Tuple[float, int]] = []
    for when, value in zip(times, values):
        if when < start:
            events.append((when, value))
    events.append((start, forced))
    events.append((end, at_end))
    for when, value in zip(times, values):
        if when > end:
            events.append((when, value))
    # Renormalize to actual changes against the running value.
    out_times: List[float] = []
    out_values: List[int] = []
    current = initial
    for when, value in events:
        if value != current:
            out_times.append(when)
            out_values.append(value)
            current = value
    return out_times, out_values


def delay_corner_scale(
    netlist: Netlist,
    systematic: float = 1.0,
    sigma: float = 0.0,
    rng: Optional[random.Random] = None,
) -> Dict[str, float]:
    """Per-gate delay multipliers for one variation corner.

    Every combinational gate's factor is
    ``systematic * (1 + sigma * N(0, 1))``, clamped to
    :data:`MIN_DELAY_FACTOR`; gates are visited in sorted-name order so
    the same seed always yields the same corner.
    """
    if systematic <= 0:
        raise ValueError("systematic delay factor must be positive")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    rng = rng or random.Random(0)
    scale: Dict[str, float] = {}
    for name in sorted(g.name for g in netlist.comb_gates()):
        factor = systematic
        if sigma > 0.0:
            factor = systematic * (1.0 + sigma * rng.gauss(0.0, 1.0))
        scale[name] = max(MIN_DELAY_FACTOR, factor)
    return scale


def latch_state_keys(
    netlist: Netlist, placement: SlavePlacement
) -> List[str]:
    """The ``latch:*`` state keys a placement's slaves maintain, in a
    deterministic order (the SEU target universe beyond the flops)."""
    keys = [
        f"latch:{driver}:{sink}"
        for driver, sink in placement.latch_edges(netlist)
    ]
    return sorted(keys)


def build_injection_plan(
    netlist: Netlist,
    scheme: ClockScheme,
    cycles: int,
    seed: int,
    systematic: float = 1.0,
    sigma: float = 0.0,
    seu_rate: float = 0.0,
    glitch_rate: float = 0.0,
    glitch_width: Optional[float] = None,
    placement: Optional[SlavePlacement] = None,
    label: str = "",
) -> InjectionPlan:
    """Build a deterministic plan for one (corner, upset) scenario.

    ``seu_rate`` / ``glitch_rate`` are per-cycle strike probabilities;
    each strike picks one flop / latch key (SEU) or one combinational
    net (glitch) uniformly.  Glitch start times are drawn uniformly in
    ``(0, Pi)`` with width defaulting to half the resiliency window,
    so pulses can land inside or outside the detection window.  All
    randomness flows from one :class:`random.Random` seeded with
    ``seed`` — two calls with identical arguments produce identical
    plans.
    """
    for rate_name, rate in (("seu_rate", seu_rate),
                            ("glitch_rate", glitch_rate)):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{rate_name} must be in [0, 1]")
    rng = random.Random(seed)
    scale = (
        delay_corner_scale(netlist, systematic, sigma, rng)
        if (systematic != 1.0 or sigma > 0.0)
        else {}
    )

    comb_nets = sorted(g.name for g in netlist.comb_gates())
    seu_targets = sorted(g.name for g in netlist.flops())
    if placement is not None:
        seu_targets += latch_state_keys(netlist, placement)
    width = (
        glitch_width
        if glitch_width is not None
        else scheme.resiliency_window * 0.5
    )
    glitches: Dict[int, Tuple[GlitchSpec, ...]] = {}
    seu_flips: Dict[int, Tuple[str, ...]] = {}
    for cycle in range(cycles):
        if glitch_rate > 0.0 and comb_nets and rng.random() < glitch_rate:
            net = comb_nets[rng.randrange(len(comb_nets))]
            start = rng.uniform(0.0, scheme.period)
            glitches[cycle] = (GlitchSpec(net, start, width),)
        if seu_rate > 0.0 and seu_targets and rng.random() < seu_rate:
            target = seu_targets[rng.randrange(len(seu_targets))]
            seu_flips[cycle] = (target,)
    return InjectionPlan(
        delay_scale=scale,
        glitches=glitches,
        seu_flips=seu_flips,
        label=label,
    )
