"""The two-tier content-addressed artifact store.

:class:`ArtifactStore` fronts an optional on-disk CAS directory with a
per-namespace in-memory LRU.  Keys are the canonical fingerprints of
:mod:`repro.store.fingerprint`; values are arbitrary Python objects
(compiled retiming problems, netlist arenas, memo payloads).  The
namespace map:

===============  ====================================================
namespace        legacy cache it replaced
===============  ====================================================
compiled-grar    ``retime.compile``'s module-level LRU
arena            ``core.arena``'s module-level LRU
suite-memo       the :class:`ExperimentSuite` resume memo
scenario-memo    the scenario engine's resume memo
===============  ====================================================

Disk layout and durability
--------------------------

``root/store.json`` stamps the schema version (a mismatched stamp
raises :class:`StoreError` — stores are not migrated in place);
``root/<namespace>/<key>.art`` holds one artifact:

    b"repro-store/1\\n" + sha256(payload).hex + b"\\n" + payload

where ``payload`` is the pickled ``{schema, namespace, key, value}``
envelope.  Writes go to a unique tmp name (pid + random suffix) in the
same directory and land via ``os.replace`` — concurrent writers of the
same key are safe (last writer wins, readers see a complete old or new
file, never a torn one).  Reads verify the embedded digest and the
envelope fields; anything that fails — truncation, bit rot, a foreign
file — is moved to ``root/quarantine/`` and reported as a miss, so
the caller recomputes instead of crashing.

Every operation is surfaced through :mod:`repro.metrics` as
``store.<namespace>.{hits,misses,mem_hits,disk_hits,evictions,writes,
bytes_written,corrupt}``.

Ambient plumbing
----------------

Call sites (``compile_retiming``, ``compile_arena``) read the ambient
store via :func:`get_store`.  The process default is a memory-only
store — exactly the legacy per-process LRU behavior; the CLI's
``--store DIR`` swaps in a persistent one via
:func:`set_default_store`, and scoped overrides (worker processes,
``run_flow(store=...)``) use the :func:`use_store` context manager,
which is a :class:`contextvars.ContextVar` underneath, mirroring
``repro.metrics``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro import metrics

__all__ = [
    "ArtifactStore",
    "DEFAULT_CAPACITY",
    "STORE_SCHEMA",
    "StoreError",
    "atomic_write_bytes",
    "atomic_write_text",
    "get_store",
    "open_store",
    "set_default_store",
    "unique_tmp_name",
    "use_store",
]

#: Version stamp of the on-disk layout *and* the artifact envelope.
STORE_SCHEMA = "repro-store/1"

_MAGIC = b"repro-store/1\n"
_ARTIFACT_SUFFIX = ".art"
_QUARANTINE_DIR = "quarantine"
_STAMP_NAME = "store.json"

#: Default per-namespace LRU capacity — the 8 entries the legacy
#: ``retime.compile`` and ``core.arena`` caches kept.
DEFAULT_CAPACITY = 8

_MISS = object()


class StoreError(ValueError):
    """An artifact store directory that cannot be used as one."""


def unique_tmp_name(path: Union[str, Path]) -> str:
    """A collision-free sibling tmp name for an atomic replace.

    Unique per (pid, call): two suites checkpointing the same memo
    path — or two store writers landing the same artifact — never
    write through the same tmp file, so neither can observe (or
    ``os.replace``) the other's half-written bytes.
    """
    return f"{path}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (unique tmp + replace)."""
    tmp = unique_tmp_name(path)
    try:
        with open(tmp, "wb") as stream:
            stream.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Text form of :func:`atomic_write_bytes` (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"))


class ArtifactStore:
    """Per-namespace memory LRU over an optional on-disk CAS.

    ``root=None`` is a memory-only store (the process default);
    ``capacity`` is the per-namespace LRU size, overridable per
    namespace via ``capacities`` or :meth:`set_capacity`.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        capacity: int = DEFAULT_CAPACITY,
        capacities: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.capacity = max(1, int(capacity))
        self.capacities: Dict[str, int] = {
            ns: max(1, int(cap)) for ns, cap in (capacities or {}).items()
        }
        self._memory: Dict[str, "OrderedDict[str, Any]"] = {}
        self.root: Optional[Path] = None
        if root is not None:
            self.root = Path(root)
            self.root.mkdir(parents=True, exist_ok=True)
            self._check_stamp()

    # -- schema stamp -------------------------------------------------------

    def _check_stamp(self) -> None:
        stamp = self.root / _STAMP_NAME
        if stamp.exists():
            try:
                data = json.loads(stamp.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                raise StoreError(
                    f"unreadable store stamp {stamp}: {exc}"
                ) from exc
            if data.get("schema") != STORE_SCHEMA:
                raise StoreError(
                    f"store {self.root} has schema "
                    f"{data.get('schema')!r}, this engine speaks "
                    f"{STORE_SCHEMA!r}; use a fresh directory"
                )
            return
        atomic_write_text(
            stamp, json.dumps({"schema": STORE_SCHEMA}) + "\n"
        )

    @property
    def persistent(self) -> bool:
        """Whether artifacts survive this process (a disk root is set)."""
        return self.root is not None

    # -- capacities ---------------------------------------------------------

    def capacity_of(self, namespace: str) -> int:
        return self.capacities.get(namespace, self.capacity)

    def set_capacity(self, namespace: str, capacity: int) -> None:
        """Resize one namespace's memory LRU (trimming immediately)."""
        self.capacities[namespace] = max(1, int(capacity))
        tier = self._memory.get(namespace)
        if tier is not None:
            self._trim(namespace, tier)

    def _trim(self, namespace: str, tier: "OrderedDict[str, Any]") -> None:
        cap = self.capacity_of(namespace)
        while len(tier) > cap:
            tier.popitem(last=False)
            metrics.count(f"store.{namespace}.evictions")

    # -- core operations ----------------------------------------------------

    def _tier(self, namespace: str) -> "OrderedDict[str, Any]":
        return self._memory.setdefault(namespace, OrderedDict())

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        """Fetch an artifact: memory first, then disk; miss -> default."""
        tier = self._tier(namespace)
        if key in tier:
            tier.move_to_end(key)
            metrics.count(f"store.{namespace}.hits")
            metrics.count(f"store.{namespace}.mem_hits")
            return tier[key]
        if self.root is not None:
            value = self._disk_get(namespace, key)
            if value is not _MISS:
                metrics.count(f"store.{namespace}.hits")
                metrics.count(f"store.{namespace}.disk_hits")
                self._remember(namespace, key, value)
                return value
        metrics.count(f"store.{namespace}.misses")
        return default

    def put(
        self, namespace: str, key: str, value: Any, persist: bool = True
    ) -> Any:
        """Insert an artifact into memory (and, when persistent, disk)."""
        self._remember(namespace, key, value)
        if persist and self.root is not None:
            self._disk_put(namespace, key, value)
        return value

    def get_or_compute(
        self, namespace: str, key: str, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """``(value, was_hit)`` — computing and storing on a miss."""
        value = self.get(namespace, key, _MISS)
        if value is not _MISS:
            return value, True
        value = compute()
        self.put(namespace, key, value)
        return value, False

    def memory_values(self, namespace: str) -> List[Any]:
        """The memory tier's values, LRU order (oldest first).

        The compiled-retiming sibling warm-basis seeding scans these;
        disk artifacts are excluded on purpose (their baseline basis
        is whatever was current when they were written).
        """
        return list(self._tier(namespace).values())

    def clear_memory(self, namespace: Optional[str] = None) -> None:
        """Drop the memory tier (one namespace, or all); disk stays."""
        if namespace is None:
            self._memory.clear()
        else:
            self._memory.pop(namespace, None)

    def _remember(self, namespace: str, key: str, value: Any) -> None:
        tier = self._tier(namespace)
        tier[key] = value
        tier.move_to_end(key)
        self._trim(namespace, tier)

    # -- disk tier ----------------------------------------------------------

    @staticmethod
    def _check_component(label: str, value: str) -> str:
        if (
            not value
            or value != os.path.basename(value)
            or value.startswith(".")
        ):
            raise StoreError(f"unsafe store {label}: {value!r}")
        return value

    def _artifact_path(self, namespace: str, key: str) -> Path:
        self._check_component("namespace", namespace)
        self._check_component("key", key)
        return self.root / namespace / f"{key}{_ARTIFACT_SUFFIX}"

    def _disk_put(self, namespace: str, key: str, value: Any) -> bool:
        envelope = {
            "schema": STORE_SCHEMA,
            "namespace": namespace,
            "key": key,
            "value": value,
        }
        try:
            payload = pickle.dumps(envelope, protocol=4)
        except Exception:
            # Unpicklable values degrade to memory-only silently —
            # the store must never make a cacheable result an error.
            metrics.count(f"store.{namespace}.unpicklable")
            return False
        blob = (
            _MAGIC
            + hashlib.sha256(payload).hexdigest().encode("ascii")
            + b"\n"
            + payload
        )
        path = self._artifact_path(namespace, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, blob)
        except OSError:
            metrics.count(f"store.{namespace}.write_errors")
            return False
        metrics.count(f"store.{namespace}.writes")
        metrics.count(f"store.{namespace}.bytes_written", len(blob))
        return True

    def _disk_get(self, namespace: str, key: str) -> Any:
        path = self._artifact_path(namespace, key)
        try:
            data = path.read_bytes()
        except OSError:
            return _MISS
        try:
            return self._decode(data, namespace, key)
        except Exception:
            # Truncated write, bit rot, or a foreign file: quarantine
            # it and report a miss — the caller recomputes.
            metrics.count(f"store.{namespace}.corrupt")
            self._quarantine(path, namespace)
            return _MISS

    @staticmethod
    def _decode(data: bytes, namespace: str, key: str) -> Any:
        if not data.startswith(_MAGIC):
            raise StoreError("bad magic")
        digest, sep, payload = data[len(_MAGIC):].partition(b"\n")
        if sep != b"\n" or len(digest) != 64:
            raise StoreError("bad header")
        if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
            raise StoreError("digest mismatch (torn or corrupted write)")
        envelope = pickle.loads(payload)
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != STORE_SCHEMA
            or envelope.get("namespace") != namespace
            or envelope.get("key") != key
        ):
            raise StoreError("envelope mismatch")
        return envelope["value"]

    def _quarantine(self, path: Path, namespace: str) -> None:
        qdir = self.root / _QUARANTINE_DIR
        target = qdir / (
            f"{namespace}-{path.stem}-{os.getpid()}-"
            f"{uuid.uuid4().hex[:6]}.corrupt"
        )
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            pass

    # -- maintenance --------------------------------------------------------

    def _disk_namespaces(self) -> List[str]:
        if self.root is None:
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and entry.name != _QUARANTINE_DIR
        )

    def ls(self, namespace: Optional[str] = None) -> List[Dict[str, Any]]:
        """Disk artifacts as ``{namespace, key, bytes, mtime}`` rows."""
        rows: List[Dict[str, Any]] = []
        for ns in [namespace] if namespace else self._disk_namespaces():
            ns_dir = self.root / ns if self.root is not None else None
            if ns_dir is None or not ns_dir.is_dir():
                continue
            for path in sorted(ns_dir.glob(f"*{_ARTIFACT_SUFFIX}")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                rows.append(
                    {
                        "namespace": ns,
                        "key": path.name[: -len(_ARTIFACT_SUFFIX)],
                        "bytes": stat.st_size,
                        "mtime": stat.st_mtime,
                    }
                )
        return rows

    def stats(self) -> Dict[str, Any]:
        """Machine-readable store summary (the ``cache stats`` body)."""
        disk: Dict[str, Dict[str, Any]] = {}
        total_bytes = 0
        for row in self.ls():
            entry = disk.setdefault(
                row["namespace"], {"artifacts": 0, "bytes": 0}
            )
            entry["artifacts"] += 1
            entry["bytes"] += row["bytes"]
            total_bytes += row["bytes"]
        quarantined = 0
        if self.root is not None:
            qdir = self.root / _QUARANTINE_DIR
            if qdir.is_dir():
                quarantined = sum(1 for _ in qdir.iterdir())
        return {
            "schema": STORE_SCHEMA,
            "root": str(self.root) if self.root is not None else None,
            "memory": {
                ns: {
                    "entries": len(tier),
                    "capacity": self.capacity_of(ns),
                }
                for ns, tier in sorted(self._memory.items())
            },
            "disk": disk,
            "disk_bytes": total_bytes,
            "quarantined": quarantined,
        }

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        clear_quarantine: bool = True,
    ) -> Dict[str, Any]:
        """Bound the disk tier: drop expired artifacts, oldest first.

        ``max_age_s`` removes artifacts older than the cutoff;
        ``max_bytes`` then removes oldest-first until the remainder
        fits.  Stray ``*.tmp`` files older than an hour (writers that
        died mid-write) and quarantined corpses are swept as well.
        Memory tiers are untouched.
        """
        removed = 0
        freed = 0
        if self.root is not None:
            now = time.time()
            rows = sorted(self.ls(), key=lambda r: r["mtime"])
            survivors: List[Dict[str, Any]] = []
            for row in rows:
                if max_age_s is not None and now - row["mtime"] > max_age_s:
                    if self._remove_artifact(row):
                        removed += 1
                        freed += row["bytes"]
                    continue
                survivors.append(row)
            if max_bytes is not None:
                remaining = sum(r["bytes"] for r in survivors)
                for row in list(survivors):
                    if remaining <= max_bytes:
                        break
                    if self._remove_artifact(row):
                        removed += 1
                        freed += row["bytes"]
                        remaining -= row["bytes"]
                        survivors.remove(row)
            for tmp in self.root.rglob("*.tmp"):
                try:
                    if now - tmp.stat().st_mtime > 3600:
                        tmp.unlink()
                except OSError:
                    pass
            if clear_quarantine:
                qdir = self.root / _QUARANTINE_DIR
                if qdir.is_dir():
                    for corpse in qdir.iterdir():
                        try:
                            corpse.unlink()
                        except OSError:
                            pass
        left = self.ls()
        return {
            "removed": removed,
            "freed_bytes": freed,
            "remaining": len(left),
            "remaining_bytes": sum(r["bytes"] for r in left),
        }

    def _remove_artifact(self, row: Mapping[str, Any]) -> bool:
        path = self._artifact_path(row["namespace"], row["key"])
        try:
            path.unlink()
        except OSError:
            return False
        return True

    def clear(self, namespace: Optional[str] = None) -> Dict[str, Any]:
        """Drop memory *and* disk artifacts (one namespace, or all)."""
        self.clear_memory(namespace)
        removed = 0
        for row in self.ls(namespace):
            if self._remove_artifact(row):
                removed += 1
        return {"removed": removed}


# -- ambient store ----------------------------------------------------------

#: The process-wide default: memory-only, so call sites behave exactly
#: like the legacy per-process LRUs until someone opts into a disk
#: root (``--store DIR`` / ``set_default_store``).
_PROCESS_DEFAULT = ArtifactStore()

_ACTIVE: "ContextVar[Optional[ArtifactStore]]" = ContextVar(
    "repro_store", default=None
)


def get_store() -> ArtifactStore:
    """The ambient store: the innermost :func:`use_store`, else the
    process default."""
    active = _ACTIVE.get()
    return active if active is not None else _PROCESS_DEFAULT


def set_default_store(store: Optional[ArtifactStore]) -> ArtifactStore:
    """Replace the process default (``None`` restores memory-only).

    Returns the previous default so callers can restore it.
    """
    global _PROCESS_DEFAULT
    previous = _PROCESS_DEFAULT
    _PROCESS_DEFAULT = store if store is not None else ArtifactStore()
    return previous


@contextmanager
def use_store(store: ArtifactStore) -> Iterator[ArtifactStore]:
    """Scope the ambient store (workers, ``run_flow(store=...)``)."""
    token = _ACTIVE.set(store)
    try:
        yield store
    finally:
        _ACTIVE.reset(token)


def open_store(
    spec: Union[ArtifactStore, str, Path, None],
    capacity: Optional[int] = None,
    capacities: Optional[Mapping[str, int]] = None,
) -> Optional[ArtifactStore]:
    """Resolve a ``store=`` argument: a store passes through, a path
    opens a persistent store, ``None`` stays ``None``."""
    if spec is None or isinstance(spec, ArtifactStore):
        return spec
    return ArtifactStore(
        root=spec,
        capacity=capacity if capacity is not None else DEFAULT_CAPACITY,
        capacities=capacities,
    )
