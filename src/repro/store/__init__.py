"""``repro.store``: canonical fingerprints + the two-tier artifact store.

The persistent half of the ROADMAP's retiming-as-a-service arc: one
sha256 recipe for every cache key (:mod:`repro.store.fingerprint`) and
one content-addressed store behind every result cache
(:mod:`repro.store.store`).  See DESIGN.md §15 for the architecture
and the namespace map.
"""

from repro.store.fingerprint import (
    ENGINE_VERSION,
    Fingerprint,
    arena_fingerprint,
    circuit_fingerprint,
    config_fingerprint,
    content_digest,
    decode_memo_cell_key,
    library_fingerprint,
    memo_cell_key,
    netlist_fingerprint,
)
from repro.store.store import (
    DEFAULT_CAPACITY,
    STORE_SCHEMA,
    ArtifactStore,
    StoreError,
    atomic_write_bytes,
    atomic_write_text,
    get_store,
    open_store,
    set_default_store,
    unique_tmp_name,
    use_store,
)

__all__ = [
    "ArtifactStore",
    "DEFAULT_CAPACITY",
    "ENGINE_VERSION",
    "Fingerprint",
    "STORE_SCHEMA",
    "StoreError",
    "arena_fingerprint",
    "atomic_write_bytes",
    "atomic_write_text",
    "circuit_fingerprint",
    "config_fingerprint",
    "content_digest",
    "decode_memo_cell_key",
    "get_store",
    "library_fingerprint",
    "memo_cell_key",
    "netlist_fingerprint",
    "open_store",
    "set_default_store",
    "unique_tmp_name",
    "use_store",
]
