"""The canonical fingerprint recipe: one sha256 for every cache key.

Before ``repro.store`` existed, three hand-rolled digests keyed the
result caches — ``retime.compile`` hashed circuits, ``core.arena``
hashed netlist/calculator pairs (salted with ``id(library)``, so the
key was only valid inside one process), and the scenario engine hashed
simulator end states.  This module replaces all of them with a single
recipe:

    sha256( kind \\x1f ENGINE_VERSION \\x1f part \\x1f part \\x1f ... )

Every part is rendered with ``str()`` and terminated by the ``\\x1f``
unit separator, so no concatenation of parts can collide with a
different split of the same bytes.  ``kind`` namespaces the digest
(two different artifact kinds can never share a key) and
:data:`ENGINE_VERSION` invalidates every persisted artifact at once
when the engines change in a result-affecting way.

The recipe is duck-typed on purpose: it reads only plain attributes
(gate lists, scheme phases, dataclass reprs), imports nothing outside
the standard library, and therefore sits below every other repro
module in the import graph.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ENGINE_VERSION",
    "Fingerprint",
    "arena_fingerprint",
    "circuit_fingerprint",
    "config_fingerprint",
    "content_digest",
    "decode_memo_cell_key",
    "library_fingerprint",
    "memo_cell_key",
    "netlist_fingerprint",
]

#: Bumped whenever a change to the retimer, the arena compiler, or the
#: delay models makes previously-persisted artifacts stale.  Part of
#: every fingerprint, so a bump is a whole-store invalidation.
ENGINE_VERSION = "1"

_SEP = b"\x1f"


class Fingerprint:
    """Incremental canonical digest builder.

    >>> Fingerprint("demo").feed("a", 1).hexdigest()  # doctest: +SKIP
    """

    def __init__(self, kind: str) -> None:
        self._digest = hashlib.sha256()
        self.feed(kind, ENGINE_VERSION)

    def feed(self, *parts: object) -> "Fingerprint":
        """Append parts (rendered via ``str``, ``\\x1f``-terminated)."""
        for part in parts:
            self._digest.update(str(part).encode("utf-8"))
            self._digest.update(_SEP)
        return self

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


def content_digest(text: str, length: Optional[int] = None) -> str:
    """Plain sha256 of ``text`` (optionally truncated).

    This is the *unversioned* digest for data that identifies itself —
    simulator end states, seed-derivation strings — where the bytes
    must stay stable across engine versions (reports and derived seeds
    are part of the byte-parity contract).
    """
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return digest[:length] if length else digest


def feed_netlist(fp: Fingerprint, netlist: Any) -> Fingerprint:
    """Feed a netlist by value: name plus every gate's identity.

    Covers gate names, types, cell bindings, and fanin order — the
    inputs every compiled representation (retiming skeletons, arena
    arrays) derives from.  Copies of a netlist collide; any resize or
    rewire changes the digest.
    """
    fp.feed("netlist", netlist.name)
    for gate in netlist:
        fp.feed(gate.name, gate.gtype.value, gate.cell or "", *gate.fanins)
    return fp


def netlist_fingerprint(netlist: Any) -> str:
    """Standalone content hash of one netlist."""
    return feed_netlist(Fingerprint("netlist"), netlist).hexdigest()


#: Library content digests are memoized per (object, cell count): the
#: cell reprs of a big library are not free, and libraries are built
#: once then shared.  Keyed by id *with a strong reference held*, so
#: an id can never be recycled while its memo entry is alive; the cell
#: count invalidates the memo if cells are added after fingerprinting.
_LIBRARY_MEMO: "Dict[Tuple[int, int], Tuple[Any, str]]" = {}
_LIBRARY_MEMO_MAX = 16


def library_fingerprint(library: Any) -> str:
    """Content hash of a cell library.

    Replaces the arena cache's ``id(library)`` salt: hashing the cells
    themselves (frozen dataclasses with value reprs) makes the digest
    valid *across* processes and runs — the property the on-disk store
    needs.
    """
    if library is None:
        return content_digest("library/none")
    memo_key_ = (id(library), len(library.cells))
    hit = _LIBRARY_MEMO.get(memo_key_)
    if hit is not None and hit[0] is library:
        return hit[1]
    fp = Fingerprint("library")
    fp.feed(library.name, len(library.cells))
    for name in sorted(library.cells):
        cell = library.cells[name]
        fp.feed(name, type(cell).__name__, repr(cell))
    for group in sorted(getattr(library, "latch_groups", {}) or {}):
        fp.feed("group", group, library.latch_groups[group])
    digest = fp.hexdigest()
    _LIBRARY_MEMO[memo_key_] = (library, digest)
    while len(_LIBRARY_MEMO) > _LIBRARY_MEMO_MAX:
        _LIBRARY_MEMO.pop(next(iter(_LIBRARY_MEMO)))
    return digest


def circuit_fingerprint(circuit: Any, conflict_policy: str = "error") -> str:
    """Key of a compiled G-RAR problem (``"compiled-grar"`` namespace).

    Hashes everything regions, cut sets, and the retiming-graph
    skeleton depend on: the netlist by value, the clock scheme, the
    latch timing, the delay-model class and its source offsets, the
    library content, and the region conflict policy.  The copies the
    flow pipeline makes of a pristine circuit collide — the point of
    the cache — while any resizing or restructuring changes the
    digest.
    """
    fp = Fingerprint("compiled-grar")
    feed_netlist(fp, circuit.netlist)
    scheme = circuit.scheme
    fp.feed("scheme", scheme.phi1, scheme.gamma1, scheme.phi2, scheme.gamma2)
    fp.feed("latch", circuit.latch_ck_q, circuit.latch_d_q, circuit.latch_area)
    engine = circuit.engine
    fp.feed("model", type(engine.calculator).__name__)
    for name in sorted(engine.source_offsets):
        fp.feed("offset", name, engine.source_offsets[name])
    if circuit.library is not None:
        fp.feed("library", library_fingerprint(circuit.library))
    fp.feed("conflict_policy", conflict_policy)
    return fp.hexdigest()


def arena_fingerprint(netlist: Any, calc: Any) -> str:
    """Key of a compiled flat-array arena (``"arena"`` namespace).

    Covers the calculator class, its load-model parameters, the
    library *content* (not its ``id`` — arenas persist across
    processes now), any fixed per-cell delay table, and the netlist by
    value.
    """
    fp = Fingerprint("arena")
    fp.feed(netlist.name, type(calc).__name__)
    lm = calc.load_model
    fp.feed(
        repr(lm.wire_cap_per_fanout),
        repr(lm.output_pin_cap),
        repr(lm.source_slew),
    )
    fp.feed("library", library_fingerprint(getattr(calc, "library", None)))
    delays = getattr(calc, "delays", None)
    if isinstance(delays, Mapping):
        for name in sorted(delays):
            fp.feed(name, repr(delays[name]))
    feed_netlist(fp, netlist)
    return fp.hexdigest()


def config_fingerprint(kind: str, config: Mapping[str, Any]) -> str:
    """Key of a memo namespace entry: a sorted-items config hash.

    The suite and scenario memos persist one artifact per run
    *configuration*; this derives that artifact's store key from the
    knobs that change results (anything bit-identical by contract —
    backends, STA engines — stays out of the config by the caller's
    choice).
    """
    fp = Fingerprint(kind)
    for key in sorted(config):
        fp.feed(key, config[key])
    return fp.hexdigest()


def memo_cell_key(parts: Sequence[Any]) -> str:
    """Injective per-cell memo key: a JSON array, immune to ``|`` in
    names, round-tripping float overheads exactly (repr semantics)."""
    return json.dumps(list(parts))


def decode_memo_cell_key(memo_key: str) -> Tuple[Any, ...]:
    """Decode a memo cell key, accepting the legacy ``|`` format.

    Legacy suite memos joined ``(circuit, method, overhead)`` with
    ``|``; they decode here and the next checkpoint rewrites them
    JSON-encoded.
    """
    if memo_key.startswith("["):
        try:
            parts = json.loads(memo_key)
        except ValueError:
            parts = None
        if isinstance(parts, list):
            return tuple(parts)
    return tuple(memo_key.rsplit("|", 2))
