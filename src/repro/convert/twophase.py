"""Flop-to-two-phase conversion: the external-netlist front end.

Ordinary edge-triggered netlists arrive from a synthesis tool (or from
:mod:`repro.netlist.bench` / :mod:`repro.netlist.verilog`); the paper's
pipeline converts them to two-phase non-overlapping latch-based form
before G-RAR/VL-RAR run.  The conversion is the master/slave split of
Section II-C made explicit:

* each DFF becomes a fixed **master** latch (its Q launches the cloud
  at t = 0, its D terminates the previous stage) plus a movable
  **slave** latch starting at the master's output — PIs get the same
  treatment as outputs of fixed environment masters;
* the clock scheme is derived from the flop design's critical path
  with the Table I recipe (the same one :func:`repro.flows.run.
  prepare_circuit` uses, so a converted design and a natively-prepared
  one see bit-identical clocks);
* slaves whose start position already violates constraint (7) are
  balanced forward through the mandatory region ``Vm`` — legal by
  construction, because ``D^b`` is predecessor-monotone
  (``D^b(u) ≥ d(u→v) + D^b(v)``) which makes ``Vm`` closed under
  predecessors, i.e. a valid retiming cut;
* the result is validated against the structural phase-legality
  invariants (:mod:`repro.convert.phases`) before anything downstream
  may consume it.

The converted netlist is *structurally* the same object — the DFF gate
is the master/slave carrier, exactly how the retimers model it — which
is what makes the export→convert→retime path reproduce the native flow
bit-identically.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, TextIO, Union

from repro.cells.library import Library
from repro.clocks import ClockScheme
from repro.convert.phases import (
    PhaseAssignment,
    PhaseLegalityReport,
    check_phase_legality,
)
from repro.errors import ConversionError
from repro.latches.conversion import ConversionReport
from repro.latches.placement import SlavePlacement
from repro.latches.resilient import TwoPhaseCircuit
from repro.netlist.netlist import Netlist


@dataclass
class ConvertedDesign:
    """A flop netlist converted to two-phase latch-based form.

    Everything a retiming flow needs: the (unchanged) netlist, the
    derived clock scheme, the two-phase circuit view, the initial
    balanced slave placement, the explicit phase assignment, and the
    Section VI-D accounting report.
    """

    netlist: Netlist
    scheme: ClockScheme
    circuit: TwoPhaseCircuit
    placement: SlavePlacement
    phases: PhaseAssignment
    legality: PhaseLegalityReport
    report: ConversionReport


def convert_to_two_phase(
    netlist: Netlist,
    library: Library,
    *,
    scheme: Optional[ClockScheme] = None,
    clock_margin: float = 1.05,
    model: str = "path",
    sta_mode: str = "incremental",
    sta_engine: str = "object",
    balance: bool = True,
) -> ConvertedDesign:
    """Convert a flop netlist into a legal two-phase latch-based design.

    ``scheme`` overrides the critical-path-derived clock (used when a
    design must run under a clock fixed elsewhere); ``balance=False``
    keeps every slave at its master's output, skipping the forward
    balancing — useful only for inspecting the raw conversion, since
    an unbalanced design may violate constraint (7).

    Raises :class:`~repro.errors.ConversionError` when the netlist has
    no sequential elements or timing paths, when the clock makes the
    ``Vm``/``Vn`` regions conflict (no legal slave position on some
    path), or when the converted design fails phase legality.
    """
    name = netlist.name
    n_flops = len(netlist.flops())
    n_endpoints = len(netlist.endpoints())
    if n_endpoints == 0:
        raise ConversionError(
            f"netlist {name!r} has no sequential elements or outputs: "
            f"nothing to phase",
            stage="convert",
            circuit=name,
        )

    # Clock derivation: the exact prepare_circuit recipe, so converted
    # and native flows share bit-identical schemes (imported lazily —
    # flows wires conversion in the other direction).
    from repro.flows.run import prepare_circuit

    try:
        scheme, circuit = prepare_circuit(
            netlist, library, model=model, clock_margin=clock_margin,
            scheme=scheme, sta_mode=sta_mode, sta_engine=sta_engine,
        )
    except ValueError as exc:
        raise ConversionError(
            f"netlist {name!r}: {exc}", stage="convert", circuit=name
        ) from exc

    conflicts = circuit.check_regions_feasible()
    if conflicts:
        raise ConversionError(
            f"netlist {name!r} has no legal slave position on "
            f"{len(conflicts)} node(s) under this clock; first: "
            f"{conflicts[0]!r} (both must-retime and must-not-retime)",
            stage="convert",
            circuit=name,
            payload={"conflicts": conflicts[:20]},
        )

    # Initial balanced placement: slaves start at their master outputs
    # and are pushed forward through the mandatory region Vm, which is
    # predecessor-closed and therefore a legal cut.
    if balance:
        placement = SlavePlacement(retimed=set(circuit.region_vm()))
    else:
        placement = SlavePlacement.initial()
    cut = circuit.check_legality(placement)
    if not cut.ok:
        raise ConversionError(
            f"netlist {name!r}: balanced initial placement is not a "
            f"legal cut: {cut.summary()}",
            stage="convert",
            circuit=name,
        )

    phases = PhaseAssignment.from_placement(netlist, placement)
    legality = check_phase_legality(netlist, placement, phases)
    if not legality.ok:
        raise ConversionError(
            f"netlist {name!r} failed phase legality: "
            f"{legality.summary()}",
            stage="convert",
            circuit=name,
            payload={"problems": legality.problems()},
        )

    latch_area = circuit.latch_area
    report = ConversionReport(
        name=name,
        n_flops=n_flops,
        n_inputs=len(netlist.inputs()),
        n_outputs=len(netlist.outputs()),
        n_masters=phases.n_masters,
        n_slaves=phases.n_slaves,
        n_balanced=len(placement.retimed),
        n_forced_edl=len(circuit.always_edl_endpoints()),
        period=scheme.period,
        window=scheme.resiliency_window,
        worst_arrival=circuit.engine.worst_arrival(),
        comb_area=netlist.comb_area(library),
        flop_area_before=netlist.flop_area(library),
        latch_area_after=(
            (phases.n_masters + phases.n_slaves) * latch_area
        ),
    )
    return ConvertedDesign(
        netlist=netlist,
        scheme=scheme,
        circuit=circuit,
        placement=placement,
        phases=phases,
        legality=legality,
        report=report,
    )


def load_netlist(
    path: Union[str, "os.PathLike[str]"],
    library: Library,
    fmt: str = "auto",
    name: Optional[str] = None,
) -> Netlist:
    """Read an external netlist file (``.bench`` or structural Verilog).

    ``fmt`` is ``"bench"``, ``"verilog"``, or ``"auto"`` (by file
    extension: ``.bench`` → bench, ``.v``/``.verilog``/``.sv`` →
    Verilog).  ``name`` overrides the netlist name (bench files carry
    none; the file stem is the default).
    """
    path = os.fspath(path)
    stem = os.path.splitext(os.path.basename(path))[0]
    if fmt == "auto":
        ext = os.path.splitext(path)[1].lower()
        if ext == ".bench":
            fmt = "bench"
        elif ext in (".v", ".verilog", ".sv"):
            fmt = "verilog"
        else:
            raise ConversionError(
                f"cannot infer netlist format from {path!r}; pass "
                f"fmt='bench' or fmt='verilog'",
                stage="convert",
            )
    try:
        with open(path, "r") as handle:
            return _parse(handle, library, fmt, name or stem)
    except OSError as exc:
        raise ConversionError(
            f"cannot read netlist file {path!r}: {exc}", stage="convert"
        ) from exc


def _parse(
    source: Union[str, TextIO], library: Library, fmt: str, name: str
) -> Netlist:
    if fmt == "bench":
        from repro.netlist.bench import parse_bench

        return parse_bench(source, library, name=name)
    if fmt == "verilog":
        from repro.netlist.verilog import parse_verilog

        netlist = parse_verilog(source, library)
        if name and netlist.name != name:
            netlist.name = name
        return netlist
    raise ConversionError(
        f"unknown netlist format {fmt!r}; use 'bench' or 'verilog'",
        stage="convert",
    )
