"""Clocking-conversion front ends (flop → two-phase latch-based).

The entry gate for conventional edge-triggered netlists: read them
(:func:`load_netlist`), split each flop into a master/slave latch pair
with an explicit phase assignment, derive the two-phase clock from the
critical path, balance the initial slave placement, and validate the
phase-legality invariants (:func:`convert_to_two_phase`) — after which
the design is an ordinary G-RAR/VL-RAR workload.
"""

from repro.convert.phases import (
    PHASE_MASTER,
    PHASE_SLAVE,
    PhaseAssignment,
    PhaseLegalityReport,
    check_phase_legality,
    phase_counts,
)
from repro.convert.twophase import (
    ConvertedDesign,
    convert_to_two_phase,
    load_netlist,
)

__all__ = [
    "PHASE_MASTER",
    "PHASE_SLAVE",
    "PhaseAssignment",
    "PhaseLegalityReport",
    "check_phase_legality",
    "phase_counts",
    "ConvertedDesign",
    "convert_to_two_phase",
    "load_netlist",
]
