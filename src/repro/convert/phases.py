"""Phase assignment and phase-legality checking for converted designs.

A two-phase non-overlapping design partitions its sequential elements
into the φ1 domain (masters: flop D/Q boundaries and the environment
masters behind PIs/POs) and the φ2 domain (the slave latches sitting
on cloud edges).  Legality is purely structural:

* every sequential element carries a phase;
* every master-to-master path crosses **exactly one** slave — zero
  would be a φ1→φ1 (master-to-master) path, two a φ2→φ2 (same-phase
  latch-to-latch) path, and both lose the non-overlap guarantee;
* reconverging paths agree on the count (a fanin joining a crossed
  path to an uncrossed one would clock the gate's inputs from
  different phases).

The check runs as a linear DP over the retiming labels
(:meth:`repro.latches.placement.SlavePlacement.phase_domains`), so it
is cheap enough for a strict guard checkpoint on every flow run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.latches.placement import SlavePlacement
from repro.netlist.netlist import GateType, Netlist

#: Phase labels used by :class:`PhaseAssignment`.
PHASE_MASTER = "phi1"
PHASE_SLAVE = "phi2"


@dataclass(frozen=True)
class PhaseAssignment:
    """Explicit phase of every sequential element of a converted design.

    ``masters`` are the φ1 elements (flops in their master role plus
    the PO environment masters); ``slave_sites`` the φ2 slave latches
    as ``(driver, fanout)`` pairs after fanout sharing — a driver name
    for shared cloud latches, a source name for the per-master host
    latches.
    """

    masters: Tuple[str, ...]
    slave_sites: Tuple[Tuple[str, int], ...]

    @property
    def phase_of(self) -> Dict[str, str]:
        """Element name → phase label (slaves keyed by driver name)."""
        mapping = {name: PHASE_MASTER for name in self.masters}
        for driver, _ in self.slave_sites:
            # A flop's own name can appear as both a master (D side)
            # and a slave driver (Q-side host latch); the slave entry
            # is keyed with a suffix so neither shadows the other.
            key = driver if driver not in mapping else f"{driver}__slave"
            mapping[key] = PHASE_SLAVE
        return mapping

    @property
    def n_masters(self) -> int:
        return len(self.masters)

    @property
    def n_slaves(self) -> int:
        return len(self.slave_sites)

    @staticmethod
    def from_placement(
        netlist: Netlist, placement: SlavePlacement
    ) -> "PhaseAssignment":
        """Derive the assignment a placement implies."""
        masters = tuple(
            sorted(g.name for g in netlist.endpoints())
        )
        return PhaseAssignment(
            masters=masters,
            slave_sites=tuple(placement.latch_sites(netlist)),
        )


@dataclass
class PhaseLegalityReport:
    """Outcome of the structural phase-legality check."""

    #: Nodes whose reconverging fanin paths disagree on slave count.
    conflicts: List[str] = field(default_factory=list)
    #: Cloud nodes past more than one slave (φ2→φ2 path upstream).
    stacked: List[str] = field(default_factory=list)
    #: Masters reached through ≥ 2 slaves (same-phase latch-to-latch).
    overlatched_endpoints: List[str] = field(default_factory=list)
    #: Masters reached through 0 slaves (master-to-master path).
    unlatched_endpoints: List[str] = field(default_factory=list)
    #: Sequential elements the assignment does not phase.
    unphased: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the design is phase-legal."""
        return not (
            self.conflicts
            or self.stacked
            or self.overlatched_endpoints
            or self.unlatched_endpoints
            or self.unphased
        )

    def problems(self) -> List[str]:
        """Human-readable problem list (empty when legal)."""
        out: List[str] = []
        if self.conflicts:
            out.append(
                f"{len(self.conflicts)} nodes with phase-inconsistent "
                f"reconvergence; first: {self.conflicts[0]!r}"
            )
        if self.stacked:
            out.append(
                f"{len(self.stacked)} nodes behind stacked slave "
                f"latches; first: {self.stacked[0]!r}"
            )
        if self.overlatched_endpoints:
            out.append(
                f"{len(self.overlatched_endpoints)} masters behind a "
                f"same-phase latch-to-latch path; first: "
                f"{self.overlatched_endpoints[0]!r}"
            )
        if self.unlatched_endpoints:
            out.append(
                f"{len(self.unlatched_endpoints)} masters on a "
                f"slave-free master-to-master path; first: "
                f"{self.unlatched_endpoints[0]!r}"
            )
        if self.unphased:
            out.append(
                f"{len(self.unphased)} sequential elements without a "
                f"phase; first: {self.unphased[0]!r}"
            )
        return out

    def summary(self) -> str:
        """One-line legality summary."""
        return "phase-legal" if self.ok else "; ".join(self.problems())


def check_phase_legality(
    netlist: Netlist,
    placement: SlavePlacement,
    phases: Optional["PhaseAssignment"] = None,
) -> PhaseLegalityReport:
    """Check a placement's implied phasing against the invariants.

    When ``phases`` is given, additionally verifies that every
    sequential element of the netlist is covered by the assignment
    (the "every sequential element phased" invariant).
    """
    report = PhaseLegalityReport()
    domain, endpoint_domain, conflicts = placement.phase_domains(netlist)
    report.conflicts = sorted(conflicts)
    report.stacked = sorted(
        name for name, count in domain.items() if count > 1
    )
    report.overlatched_endpoints = sorted(
        name for name, count in endpoint_domain.items() if count > 1
    )
    report.unlatched_endpoints = sorted(
        name for name, count in endpoint_domain.items() if count == 0
    )
    if phases is not None:
        phased = set(phases.masters)
        missing = [
            g.name
            for g in netlist.endpoints()
            if g.name not in phased
        ]
        want_sites = set(placement.latch_sites(netlist))
        have_sites = set(phases.slave_sites)
        missing.extend(
            f"slave@{driver}"
            for driver, _ in sorted(want_sites - have_sites)
        )
        report.unphased = missing
    return report


def phase_counts(
    netlist: Netlist, placement: SlavePlacement
) -> Dict[str, int]:
    """Masters/slaves per phase, for reports and tests."""
    n_masters = len(
        [g for g in netlist if g.gtype in (GateType.DFF, GateType.OUTPUT)]
    )
    return {
        PHASE_MASTER: n_masters,
        PHASE_SLAVE: placement.slave_count(netlist),
    }
