"""Builder for the default synthetic 28nm-flavoured library.

Calibration targets taken from the paper:

* latch area = 43% of flip-flop area (Section VI-D);
* latch D->Q delay differs from CK->Q by ~40% (Section III);
* EDL overhead ``c`` is a parameter swept over {0.5, 1.0, 2.0}.

Delay numbers give an FO4 inverter delay of ~42 ps so that the Table I
clock periods (0.4–2.1 ns) correspond to realistic logic depths.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.cells.cell import CombCell, FlipFlopCell, LatchCell
from repro.cells.library import LatchGroup, Library
from repro.cells.timing import DelayModel, SequentialTiming, TimingArc

#: (delay_factor, drive_factor, cap_factor, area_factor) per strength.
DRIVE_STRENGTHS: Dict[int, Tuple[float, float, float, float]] = {
    1: (1.00, 1.0, 1.0, 1.00),
    2: (1.05, 2.0, 1.8, 1.35),
    4: (1.12, 4.0, 3.2, 1.90),
}

#: name -> (function, n_inputs, area, intrinsic, resistance, input_cap)
_COMB_SPECS: Dict[str, Tuple[str, int, float, float, float, float]] = {
    "INV": ("INV", 1, 0.65, 0.010, 0.0080, 1.00),
    "BUF": ("BUF", 1, 0.98, 0.022, 0.0072, 1.00),
    "NAND2": ("NAND", 2, 0.98, 0.014, 0.0090, 1.20),
    "NAND3": ("NAND", 3, 1.31, 0.019, 0.0102, 1.35),
    "NOR2": ("NOR", 2, 0.98, 0.016, 0.0098, 1.25),
    "NOR3": ("NOR", 3, 1.31, 0.024, 0.0118, 1.45),
    "AND2": ("AND", 2, 1.31, 0.026, 0.0086, 1.10),
    "OR2": ("OR", 2, 1.31, 0.028, 0.0092, 1.10),
    "XOR2": ("XOR", 2, 1.96, 0.034, 0.0110, 1.60),
    "XNOR2": ("XNOR", 2, 1.96, 0.035, 0.0112, 1.60),
    "AOI21": ("AOI21", 3, 1.31, 0.020, 0.0104, 1.30),
    "OAI21": ("OAI21", 3, 1.31, 0.021, 0.0106, 1.30),
    "MUX2": ("MUX2", 3, 2.29, 0.038, 0.0096, 1.25),
}

_PIN_NAMES = ("A", "B", "C", "D", "E")

#: Flip-flop area; latch area is 43% of this (paper Section VI-D).
FF_AREA = 4.30
LATCH_AREA_RATIO = 0.43


#: Low-Vt flavour: faster transistors at a mild area (leakage) premium.
LVT_DELAY_FACTOR = 0.70
LVT_AREA_FACTOR = 1.12


def _comb_cell(base: str, drive: int, vt: str = "svt") -> CombCell:
    function, n_in, area, intrinsic, resistance, cap = _COMB_SPECS[base]
    delay_factor, drive_factor, cap_factor, area_factor = DRIVE_STRENGTHS[drive]
    if vt == "lvt":
        delay_factor *= LVT_DELAY_FACTOR
        drive_factor /= LVT_DELAY_FACTOR
        area_factor *= LVT_AREA_FACTOR
    pins = _PIN_NAMES[:n_in]
    # Later pins of a stack are slightly slower, as in real libraries.
    arcs = {}
    caps = {}
    unate = None if function in ("XOR", "XNOR", "MUX2") else function in (
        "BUF",
        "AND",
        "OR",
    )
    for index, pin in enumerate(pins):
        pin_penalty = 1.0 + 0.08 * index
        rise = DelayModel(
            intrinsic=intrinsic * pin_penalty,
            resistance=resistance,
            slew_impact=0.10,
            slew_intrinsic=0.018,
            slew_resistance=0.009,
        ).scaled(delay_factor, drive_factor)
        fall = DelayModel(
            intrinsic=intrinsic * pin_penalty * 0.92,
            resistance=resistance * 0.95,
            slew_impact=0.10,
            slew_intrinsic=0.016,
            slew_resistance=0.008,
        ).scaled(delay_factor, drive_factor)
        arcs[pin] = TimingArc(input_pin=pin, rise=rise, fall=fall, unate=unate)
        caps[pin] = cap * cap_factor
    suffix = "_LVT" if vt == "lvt" else ""
    return CombCell(
        name=f"{base}{suffix}_X{drive}",
        area=area * area_factor,
        function=function,
        inputs=pins,
        arcs=arcs,
        input_caps=caps,
        drive=drive,
        vt=vt,
    )


def _latch_cell(
    name: str,
    area: float,
    error_detecting: bool = False,
    overhead: float = 0.0,
    setup: float = 0.020,
) -> LatchCell:
    # D->Q is ~40% faster than CK->Q (paper Section III notes they can
    # differ by up to 40% in a modern library).
    return LatchCell(
        name=name,
        area=area,
        timing=SequentialTiming(
            setup=setup, hold=0.010, clock_to_q=0.048, data_to_q=0.034
        ),
        input_cap=1.4,
        error_detecting=error_detecting,
        overhead=overhead,
    )


def default_library(
    name: str = "repro28",
    edl_overhead: float = 1.0,
    drives: Sequence[int] = (1, 2, 4),
) -> Library:
    """Build the default library.

    Parameters
    ----------
    edl_overhead:
        The paper's ``c``: the error-detecting latch is created with
        area ``(1 + c) * latch_area``.
    drives:
        Drive strengths to generate for each combinational function.
    """
    if edl_overhead < 0:
        raise ValueError("edl_overhead must be non-negative")
    lib = Library(name=name)
    for base in _COMB_SPECS:
        for drive in drives:
            if drive not in DRIVE_STRENGTHS:
                raise ValueError(f"unsupported drive strength X{drive}")
            lib.add(_comb_cell(base, drive, vt="svt"))
            lib.add(_comb_cell(base, drive, vt="lvt"))

    latch_area = FF_AREA * LATCH_AREA_RATIO
    lib.add(_latch_cell("LATCH_X1", latch_area), group=LatchGroup.NORMAL)
    edl_latch = _latch_cell(
        "LATCH_ED_X1",
        latch_area * (1.0 + edl_overhead),
        error_detecting=True,
        overhead=edl_overhead,
    )
    # Same D-pin loading penalty as the error-detecting flop.
    from dataclasses import replace as _replace

    lib.add(_replace(edl_latch, input_cap=2.6), group=LatchGroup.NORMAL)
    lib.add(
        FlipFlopCell(
            name="DFF_X1",
            area=FF_AREA,
            timing=SequentialTiming(
                setup=0.028, hold=0.012, clock_to_q=0.062, data_to_q=0.062
            ),
            input_cap=1.6,
        )
    )
    lib.add(
        FlipFlopCell(
            name="DFF_ED_X1",
            area=FF_AREA * (1.0 + edl_overhead),
            timing=SequentialTiming(
                setup=0.028, hold=0.012, clock_to_q=0.062, data_to_q=0.062
            ),
            # The shadow sampler and transition detector hang off the
            # D pin (Fig. 2), roughly doubling its capacitance.
            input_cap=2.9,
            error_detecting=True,
            overhead=edl_overhead,
        )
    )
    return lib
