"""Synthetic standard-cell library substrate.

Models the subset of a liberty file that the paper's flows consume:
cell areas, pin capacitances, load/slew-dependent pin-to-pin delay
arcs, sequential-cell timing (setup, CK->Q, D->Q), and the
error-detecting latch variants of Fig. 2.  The :func:`default_library`
builder produces a 28nm-flavoured library in which a latch is ~43% of
a flip-flop's area, matching the ratio the paper reports for its
commercial library.
"""

from repro.cells.timing import TimingArc, DelayModel
from repro.cells.cell import (
    Cell,
    CombCell,
    SequentialCell,
    LatchCell,
    FlipFlopCell,
    FUNCTIONS,
    evaluate_function,
)
from repro.cells.library import Library, LatchGroup
from repro.cells.builder import default_library
from repro.cells.virtual import build_virtual_library, VirtualLibrary
from repro.cells.edl import (
    ShadowFlipFlopLatch,
    TransitionDetectingLatch,
    EdlEvent,
)

__all__ = [
    "TimingArc",
    "DelayModel",
    "Cell",
    "CombCell",
    "SequentialCell",
    "LatchCell",
    "FlipFlopCell",
    "FUNCTIONS",
    "evaluate_function",
    "Library",
    "LatchGroup",
    "default_library",
    "build_virtual_library",
    "VirtualLibrary",
    "ShadowFlipFlopLatch",
    "TransitionDetectingLatch",
    "EdlEvent",
]
