"""Cell definitions: combinational functions and sequential cells."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.cells.timing import SequentialTiming, TimingArc


def _inv(a: int) -> int:
    return a ^ 1


_FUNCTION_TABLE: Dict[str, Callable[..., int]] = {
    "BUF": lambda a: a,
    "INV": _inv,
    "AND": lambda *ins: int(all(ins)),
    "NAND": lambda *ins: _inv(int(all(ins))),
    "OR": lambda *ins: int(any(ins)),
    "NOR": lambda *ins: _inv(int(any(ins))),
    "XOR": lambda *ins: sum(ins) & 1,
    "XNOR": lambda *ins: _inv(sum(ins) & 1),
    # AOI21: !((a & b) | c)
    "AOI21": lambda a, b, c: _inv((a & b) | c),
    # OAI21: !((a | b) & c)
    "OAI21": lambda a, b, c: _inv((a | b) & c),
    # MUX2: s ? b : a
    "MUX2": lambda a, b, s: b if s else a,
}

#: Supported logic function names and their arity (None = variadic >= 2).
FUNCTIONS: Dict[str, Optional[int]] = {
    "BUF": 1,
    "INV": 1,
    "AND": None,
    "NAND": None,
    "OR": None,
    "NOR": None,
    "XOR": None,
    "XNOR": None,
    "AOI21": 3,
    "OAI21": 3,
    "MUX2": 3,
}


def evaluate_function(function: str, inputs: Sequence[int]) -> int:
    """Evaluate a named logic function on 0/1 inputs."""
    try:
        impl = _FUNCTION_TABLE[function]
    except KeyError:
        raise ValueError(f"unknown logic function {function!r}") from None
    arity = FUNCTIONS[function]
    if arity is not None and len(inputs) != arity:
        raise ValueError(
            f"{function} expects {arity} inputs, got {len(inputs)}"
        )
    if arity is None and len(inputs) < 1:
        raise ValueError(f"{function} expects at least one input")
    return impl(*[int(bool(v)) for v in inputs])


@dataclass(frozen=True)
class Cell:
    """Base class for library cells."""

    name: str
    area: float

    def __post_init__(self) -> None:
        if self.area < 0:
            raise ValueError(f"cell {self.name}: area must be non-negative")

    @property
    def is_sequential(self) -> bool:
        """True for latches and flip-flops."""
        return isinstance(self, SequentialCell)


@dataclass(frozen=True)
class CombCell(Cell):
    """A combinational cell.

    Attributes
    ----------
    function:
        Logic function name from :data:`FUNCTIONS`.
    inputs:
        Ordered input pin names.
    arcs:
        One timing arc per input pin, keyed by pin name.
    input_caps:
        Input pin capacitance (load contributed to the driving net).
    drive:
        Drive-strength index (1, 2, 4, ...), used by the sizing engine.
    """

    function: str = "BUF"
    inputs: Tuple[str, ...] = ("A",)
    output: str = "Z"
    arcs: Mapping[str, TimingArc] = field(default_factory=dict)
    input_caps: Mapping[str, float] = field(default_factory=dict)
    drive: int = 1
    #: Threshold-voltage flavour: "svt" (standard) or "lvt" (low-Vt,
    #: faster but larger/leakier — the sizing engine's other lever).
    vt: str = "svt"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.function not in FUNCTIONS:
            raise ValueError(
                f"cell {self.name}: unknown function {self.function!r}"
            )
        arity = FUNCTIONS[self.function]
        if arity is not None and len(self.inputs) != arity:
            raise ValueError(
                f"cell {self.name}: {self.function} needs {arity} inputs"
            )
        missing = [pin for pin in self.inputs if pin not in self.arcs]
        if missing:
            raise ValueError(
                f"cell {self.name}: missing timing arcs for pins {missing}"
            )

    def arc(self, pin: str) -> TimingArc:
        """The timing arc from input ``pin`` to the output."""
        return self.arcs[pin]

    def pin_cap(self, pin: str) -> float:
        """Input capacitance of ``pin`` (0.0 if unspecified)."""
        return self.input_caps.get(pin, 0.0)

    def evaluate(self, values: Sequence[int]) -> int:
        """Boolean output for 0/1 input ``values``."""
        return evaluate_function(self.function, values)

    def worst_delay(self, load: float = 0.0, slew: float = 0.0) -> float:
        """Worst pin-to-pin delay over all input pins (gate-based model)."""
        return max(self.arcs[p].max_delay(load, slew) for p in self.inputs)

    @property
    def base_name(self) -> str:
        """Cell name with drive-strength and Vt suffixes stripped."""
        name = self.name.rsplit("_X", 1)[0]
        if name.endswith("_LVT"):
            name = name[: -len("_LVT")]
        return name


@dataclass(frozen=True)
class SequentialCell(Cell):
    """Base for latches and flip-flops."""

    timing: SequentialTiming = field(
        default_factory=lambda: SequentialTiming(0.0, 0.0, 0.0)
    )
    data_pin: str = "D"
    clock_pin: str = "CK"
    output: str = "Q"
    input_cap: float = 0.0
    error_detecting: bool = False
    #: For EDL cells: amortized area overhead factor relative to the
    #: plain cell (paper's ``c``); 0 for normal cells.
    overhead: float = 0.0

    @property
    def base_name(self) -> str:
        """Cell name with drive-strength and Vt suffixes stripped."""
        return self.name.rsplit("_X", 1)[0]


@dataclass(frozen=True)
class LatchCell(SequentialCell):
    """A level-sensitive latch.

    A latch is transparent while its clock is high; ``data_to_q`` is
    the D->Q delay in transparency, ``clock_to_q`` the CK->Q delay at
    the opening edge.  The two can differ by up to ~40% in a modern
    library (paper Section III), which eq. (5) models explicitly.
    """

    @property
    def d_to_q(self) -> float:
        """Transparency (D->Q) propagation delay."""
        return self.timing.data_to_q

    @property
    def ck_to_q(self) -> float:
        """Opening-edge (CK->Q) propagation delay."""
        return self.timing.clock_to_q


@dataclass(frozen=True)
class FlipFlopCell(SequentialCell):
    """An edge-triggered master-slave flip-flop."""
