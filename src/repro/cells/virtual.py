"""Virtual resynthesis library for the VL-RAR flow (Section V).

Each latch of the base library is augmented with two new versions:

* a **non-error-detecting** version whose setup time is extended by the
  resiliency window, so the synthesis tool only uses it when the data
  arrives before the window opens;
* an **error-detecting** version whose area is enlarged by ``1 + c``;
  its arrivals may fall inside the window.

The untouched base latches form the third group and are used in
pipeline stages that are not error-detecting at all.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cells.cell import LatchCell
from repro.cells.library import LatchGroup, Library
from repro.clocks import ClockScheme


@dataclass(frozen=True)
class VirtualLibrary:
    """The merged library plus quick access to the three latch groups."""

    library: Library
    normal: LatchCell
    non_edl: LatchCell
    edl: LatchCell
    overhead: float
    scheme: ClockScheme

    def latch_for_group(self, group: LatchGroup) -> LatchCell:
        """The latch cell instantiated for ``group``."""
        if group is LatchGroup.NORMAL:
            return self.normal
        if group is LatchGroup.NON_EDL:
            return self.non_edl
        return self.edl

    def group_area(self, group: LatchGroup) -> float:
        """Area of the latch instantiated for ``group``."""
        return self.latch_for_group(group).area

    def arrival_limit(self, group: LatchGroup) -> float:
        """Latest legal data arrival at a master latch of this group.

        Non-EDL masters must receive data before the resiliency window
        opens (``Pi``); EDL masters may absorb arrivals up to the
        window close (``Pi + phi1``).  Group-three latches carry no
        resiliency constraint (their stage is not error-detecting) and
        are bounded by the window close as well.
        """
        if group is LatchGroup.NON_EDL:
            return self.scheme.window_open
        return self.scheme.window_close


def build_virtual_library(
    base: Library, scheme: ClockScheme, overhead: float
) -> VirtualLibrary:
    """Create the three-group virtual library from ``base``.

    The base library's plain latch is cloned twice: ``VLATCH_N``
    (extended setup = base setup + resiliency window) and ``VLATCH_E``
    (area scaled by ``1 + overhead`` and tagged error-detecting).
    """
    if overhead < 0:
        raise ValueError("overhead must be non-negative")
    normal = base.default_latch()
    vname = f"{base.name}_vl"
    vlib = Library(name=vname)
    vlib.cells.update(base.cells)
    vlib.latch_groups.update(base.latch_groups)

    non_edl = replace(
        normal,
        name="VLATCH_N_X1",
        timing=normal.timing.with_setup(
            normal.timing.setup + scheme.resiliency_window
        ),
    )
    edl = replace(
        normal,
        name="VLATCH_E_X1",
        area=normal.area * (1.0 + overhead),
        error_detecting=True,
        overhead=overhead,
    )
    vlib.add(non_edl, group=LatchGroup.NON_EDL)
    vlib.add(edl, group=LatchGroup.EDL)
    return VirtualLibrary(
        library=vlib,
        normal=normal,
        non_edl=non_edl,
        edl=edl,
        overhead=overhead,
        scheme=scheme,
    )
