"""Library container with drive-strength and latch-group queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional

from repro.cells.cell import Cell, CombCell, FlipFlopCell, LatchCell, SequentialCell


class LatchGroup(Enum):
    """Latch groups of the virtual-library approach (Section V).

    * ``NORMAL`` — unmodified standard-cell latches (group three), used
      in non-error-detecting pipeline stages.
    * ``NON_EDL`` — setup time extended by the resiliency window so the
      tool keeps arrivals out of the window (group one).
    * ``EDL`` — area enlarged by ``1 + c`` to reflect error-detection
      overhead; arrivals may fall inside the window (group two).
    """

    NORMAL = "normal"
    NON_EDL = "non_edl"
    EDL = "edl"


@dataclass
class Library:
    """A named collection of cells with convenience queries."""

    name: str
    cells: Dict[str, Cell] = field(default_factory=dict)
    #: Optional latch-group tagging used by the virtual-library flow.
    latch_groups: Dict[str, LatchGroup] = field(default_factory=dict)

    def add(self, cell: Cell, group: Optional[LatchGroup] = None) -> None:
        """Register ``cell``; optionally tag its virtual-library group."""
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell name {cell.name!r}")
        self.cells[cell.name] = cell
        if group is not None:
            self.latch_groups[cell.name] = group

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __getitem__(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(
                f"cell {name!r} not in library {self.name!r}"
            ) from None

    def __len__(self) -> int:
        return len(self.cells)

    def comb_cells(self) -> List[CombCell]:
        """All combinational cells."""
        return [c for c in self.cells.values() if isinstance(c, CombCell)]

    def latches(self) -> List[LatchCell]:
        """All latch cells."""
        return [c for c in self.cells.values() if isinstance(c, LatchCell)]

    def flip_flops(self) -> List[FlipFlopCell]:
        """All flip-flop cells."""
        return [c for c in self.cells.values() if isinstance(c, FlipFlopCell)]

    def group_of(self, name: str) -> LatchGroup:
        """Virtual-library group of a latch (NORMAL by default)."""
        return self.latch_groups.get(name, LatchGroup.NORMAL)

    def latches_in_group(self, group: LatchGroup) -> List[LatchCell]:
        """Latches tagged with ``group``."""
        return [
            cell
            for cell in self.latches()
            if self.group_of(cell.name) is group
        ]

    def drive_variants(self, cell: CombCell) -> List[CombCell]:
        """Drive strengths of ``cell``'s base at its Vt, weakest first."""
        variants = [
            c
            for c in self.comb_cells()
            if c.base_name == cell.base_name and c.vt == cell.vt
        ]
        return sorted(variants, key=lambda c: c.drive)

    def next_drive_up(self, cell: CombCell) -> Optional[CombCell]:
        """The next stronger variant of ``cell``, or None at the top."""
        variants = self.drive_variants(cell)
        for candidate in variants:
            if candidate.drive > cell.drive:
                return candidate
        return None

    def vt_variant(self, cell: CombCell, vt: str) -> Optional[CombCell]:
        """Same base function and drive at a different Vt flavour."""
        if cell.vt == vt:
            return cell
        for candidate in self.comb_cells():
            if (
                candidate.base_name == cell.base_name
                and candidate.drive == cell.drive
                and candidate.vt == vt
            ):
                return candidate
        return None

    def comb_by_function(
        self, function: str, n_inputs: int, vt: str = "svt"
    ) -> List[CombCell]:
        """Cells implementing ``function``/``n_inputs`` at one Vt.

        Technology mapping targets standard-Vt cells; the sizing
        engine swaps individual instances to LVT afterwards.
        """
        return sorted(
            (
                c
                for c in self.comb_cells()
                if c.function == function
                and len(c.inputs) == n_inputs
                and c.vt == vt
            ),
            key=lambda c: c.drive,
        )

    def pick_comb(
        self, function: str, n_inputs: int, drive: int = 1
    ) -> CombCell:
        """The cell for ``function``/``n_inputs`` at the given drive."""
        candidates = self.comb_by_function(function, n_inputs)
        if not candidates:
            raise KeyError(
                f"library {self.name!r} has no {function} cell with "
                f"{n_inputs} inputs"
            )
        for cell in candidates:
            if cell.drive == drive:
                return cell
        return candidates[0]

    def default_latch(self) -> LatchCell:
        """The weakest normal (non-error-detecting) latch."""
        normal = [
            c
            for c in self.latches()
            if not c.error_detecting
            and self.group_of(c.name) is LatchGroup.NORMAL
        ]
        if not normal:
            raise KeyError(f"library {self.name!r} has no normal latch")
        return min(normal, key=lambda c: c.area)

    def default_flip_flop(self) -> FlipFlopCell:
        """The smallest non-error-detecting flip-flop."""
        ffs = [c for c in self.flip_flops() if not c.error_detecting]
        if not ffs:
            raise KeyError(f"library {self.name!r} has no flip-flop")
        return min(ffs, key=lambda c: c.area)

    def edl_latch(self) -> LatchCell:
        """The error-detecting latch cell."""
        edls = [c for c in self.latches() if c.error_detecting]
        if not edls:
            raise KeyError(
                f"library {self.name!r} has no error-detecting latch"
            )
        return min(edls, key=lambda c: c.area)

    def sequential(self, name: str) -> SequentialCell:
        """Look up ``name`` and require it to be sequential."""
        cell = self[name]
        if not isinstance(cell, SequentialCell):
            raise TypeError(f"cell {name!r} is not sequential")
        return cell

    def stats(self) -> Dict[str, int]:
        """Cell counts by kind."""
        return {
            "cells": len(self.cells),
            "combinational": len(self.comb_cells()),
            "latches": len(self.latches()),
            "flip_flops": len(self.flip_flops()),
        }

    def merged_with(self, other: "Library", name: str) -> "Library":
        """A new library containing this library's cells plus ``other``'s.

        Cells in ``other`` shadow same-named cells here.
        """
        merged = Library(name=name)
        merged.cells.update(self.cells)
        merged.cells.update(other.cells)
        merged.latch_groups.update(self.latch_groups)
        merged.latch_groups.update(other.latch_groups)
        return merged

    @staticmethod
    def from_cells(name: str, cells: Iterable[Cell]) -> "Library":
        """Build a library from an iterable of cells."""
        lib = Library(name=name)
        for cell in cells:
            lib.add(cell)
        return lib
