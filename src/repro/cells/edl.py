"""Behavioural models of the two error-detecting latches of Fig. 2.

Both latches are time-borrowing: they pass late-arriving data through
while raising an error flag if the data was still changing inside the
timing-resiliency window.

* :class:`ShadowFlipFlopLatch` — a latch with a shadow master-slave
  flip-flop.  The shadow FF samples D at the opening edge of the
  resiliency window; an XOR continuously compares the sampled value
  with live data during the window and any mismatch is latched as an
  error.
* :class:`TransitionDetectingLatch` (TDTB) — a conventional latch, an
  XOR transition detector on D, and an asymmetric C-element that holds
  the error value: any D transition inside the window raises the error.

For clean input data (no glitches that cancel within the window
sampling), the two designs flag errors for exactly the same cycles;
they differ in their response to a glitch that returns to the sampled
value: the shadow-FF design sees a transient mismatch (latched by its
error C-element) and the TDTB sees two transitions — both still flag.
The benchmark ``test_fig2_edl_behaviour`` checks this equivalence.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: A (time, value) pair describing a transition on the data input.
EdlEvent = Tuple[float, int]


def _value_at(events: Sequence[EdlEvent], time: float, initial: int) -> int:
    """Value of a piecewise-constant waveform at ``time`` (inclusive)."""
    value = initial
    for when, new_value in events:
        if when <= time:
            value = new_value
        else:
            break
    return value


def _check_events(events: Sequence[EdlEvent]) -> List[EdlEvent]:
    ordered = list(events)
    for earlier, later in zip(ordered, ordered[1:]):
        if later[0] < earlier[0]:
            raise ValueError("data events must be sorted by time")
    for _, value in ordered:
        if value not in (0, 1):
            raise ValueError("data values must be 0 or 1")
    return ordered


@dataclass(frozen=True)
class EdlResult:
    """Outcome of one resiliency-window evaluation."""

    error: bool
    captured: int
    #: Time the error signal asserted (None when no error).
    error_time: float = float("nan")


class ShadowFlipFlopLatch:
    """Time-borrowing latch with a shadow MSFF comparator (Fig. 2a)."""

    name = "shadow_msff"

    def evaluate(
        self,
        events: Sequence[EdlEvent],
        window_open: float,
        window_close: float,
        initial: int = 0,
    ) -> EdlResult:
        """Evaluate one cycle.

        ``events`` are D transitions (sorted by time).  The shadow FF
        samples D at ``window_open``; the XOR flags any instant in
        ``(window_open, window_close]`` where live data differs from
        the sample, and the error C-element holds the first mismatch.
        """
        ordered = _check_events(events)
        if window_close < window_open:
            raise ValueError("window_close must be >= window_open")
        sampled = _value_at(ordered, window_open, initial)
        error_time = float("nan")
        for when, value in ordered:
            if window_open < when <= window_close and value != sampled:
                error_time = when
                break
        captured = _value_at(ordered, window_close, initial)
        has_error = error_time == error_time  # NaN check
        return EdlResult(error=has_error, captured=captured, error_time=error_time)


class TransitionDetectingLatch:
    """Transition-detecting time-borrowing latch, TDTB (Fig. 2b)."""

    name = "tdtb"

    def evaluate(
        self,
        events: Sequence[EdlEvent],
        window_open: float,
        window_close: float,
        initial: int = 0,
    ) -> EdlResult:
        """Flag an error on *any* D transition inside the window."""
        ordered = _check_events(events)
        if window_close < window_open:
            raise ValueError("window_close must be >= window_open")
        error_time = float("nan")
        previous = _value_at(ordered, window_open, initial)
        for when, value in ordered:
            if when <= window_open:
                continue
            if when > window_close:
                break
            if value != previous:
                error_time = when
                break
            previous = value
        captured = _value_at(ordered, window_close, initial)
        has_error = error_time == error_time
        return EdlResult(error=has_error, captured=captured, error_time=error_time)


def window_has_transition(
    transition_times: Sequence[float], window_open: float, window_close: float
) -> bool:
    """True when any transition time falls in ``(open, close]``.

    This is the abstract error condition both Fig. 2 latches implement;
    the error-rate estimator uses it directly on simulator traces.
    """
    times = sorted(transition_times)
    index = bisect_right(times, window_open)
    return index < len(times) and times[index] <= window_close


#: Amortized area overheads of published EDL schemes, relative to a
#: plain latch (the paper sweeps c over [0.5, 2] "similar to [12],
#: representing the fact that the amortized area of different proposed
#: EDL schemes can range from 50% to 2X larger than a normal latch").
#: The anchors below give the sweep physical reference points.
EDL_SCHEME_OVERHEADS = {
    # Transition-detecting time-borrowing latch (Fig. 2b): one XOR and
    # an asymmetric C-element amortized over the error tree.
    "tdtb": 0.5,
    # Razor-style shadow master-slave flip-flop (Fig. 2a).
    "shadow_msff": 1.0,
    # Low-power in-situ detector with clock gating support [14].
    "low_power": 0.75,
    # Metastability-hardened detector with synchronizer chain [8].
    "metastability_hardened": 2.0,
}


def scheme_overhead(name: str) -> float:
    """The amortized overhead ``c`` of a named EDL scheme.

    Hardening policies resolve their ``c`` through this accessor so a
    typo'd scheme name is a diagnosable error, not a silent KeyError
    deep inside a sweep.
    """
    try:
        return EDL_SCHEME_OVERHEADS[name]
    except KeyError:
        raise ValueError(
            f"unknown EDL scheme {name!r}; choose from "
            f"{sorted(EDL_SCHEME_OVERHEADS)}"
        ) from None
