"""Pin-to-pin delay arcs with a linear (NLDM-flavoured) delay model.

Commercial tools interpolate non-linear delay tables; for the path
shapes the paper's algorithms depend on, a first-order model

    delay = intrinsic + resistance * load + slew_impact * input_slew
    slew  = slew_intrinsic + slew_resistance * load

captures the load- and slew-dependence that distinguishes the
"path-based" delay model from the naive "gate-based" one (Table II),
while staying fully deterministic and dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DelayModel:
    """Linear delay/slew model for one transition direction of an arc."""

    intrinsic: float
    resistance: float = 0.0
    slew_impact: float = 0.0
    slew_intrinsic: float = 0.0
    slew_resistance: float = 0.0

    def delay(self, load: float = 0.0, input_slew: float = 0.0) -> float:
        """Propagation delay for a given output load and input slew."""
        return (
            self.intrinsic
            + self.resistance * load
            + self.slew_impact * input_slew
        )

    def output_slew(self, load: float = 0.0) -> float:
        """Output transition time for a given load."""
        return self.slew_intrinsic + self.slew_resistance * load

    def scaled(self, delay_factor: float, drive_factor: float) -> "DelayModel":
        """Derive a different drive strength of the same arc.

        ``drive_factor`` > 1 means a stronger driver: resistance terms
        shrink by that factor while intrinsic terms scale by
        ``delay_factor`` (strong cells are marginally slower unloaded).
        """
        return DelayModel(
            intrinsic=self.intrinsic * delay_factor,
            resistance=self.resistance / drive_factor,
            slew_impact=self.slew_impact,
            slew_intrinsic=self.slew_intrinsic * delay_factor,
            slew_resistance=self.slew_resistance / drive_factor,
        )


@dataclass(frozen=True)
class TimingArc:
    """A timing arc from an input pin to the output pin of a cell.

    ``rise``/``fall`` describe the output-rising and output-falling
    transitions.  ``positive_unate`` records whether an input rise
    produces an output rise (True) or an output fall (False); XOR-like
    arcs are non-unate and must set ``unate=None``.
    """

    input_pin: str
    rise: DelayModel
    fall: DelayModel
    unate: bool | None = False  # default: inverting (negative unate)

    def max_delay(self, load: float = 0.0, input_slew: float = 0.0) -> float:
        """Worst of the rise/fall delays (what max-delay STA uses)."""
        return max(
            self.rise.delay(load, input_slew),
            self.fall.delay(load, input_slew),
        )

    def min_delay(self, load: float = 0.0, input_slew: float = 0.0) -> float:
        """Best of the rise/fall delays (used by hold-style checks)."""
        return min(
            self.rise.delay(load, input_slew),
            self.fall.delay(load, input_slew),
        )

    def delay_for_output_edge(
        self, rising_output: bool, load: float = 0.0, input_slew: float = 0.0
    ) -> float:
        """Delay of the arc producing a specific output edge."""
        model = self.rise if rising_output else self.fall
        return model.delay(load, input_slew)

    def max_output_slew(self, load: float = 0.0) -> float:
        """Worst output transition time at ``load``."""
        return max(self.rise.output_slew(load), self.fall.output_slew(load))


@dataclass(frozen=True)
class SequentialTiming:
    """Timing parameters of a latch or flip-flop."""

    setup: float
    hold: float
    clock_to_q: float
    data_to_q: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.setup < 0 or self.clock_to_q < 0:
            raise ValueError("setup and clock_to_q must be non-negative")

    def with_setup(self, setup: float) -> "SequentialTiming":
        """Copy with the setup time replaced (virtual library)."""
        return SequentialTiming(
            setup=setup,
            hold=self.hold,
            clock_to_q=self.clock_to_q,
            data_to_q=self.data_to_q,
        )
