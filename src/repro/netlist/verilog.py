"""Structural Verilog netlist I/O.

The paper's flow moves netlists between the synthesis tool and the
retimer as gate-level structural Verilog; this module writes and parses
the subset such netlists use: one module, scalar wires, and cell
instances with named port connections::

    module s1196 (a, b, y);
      input a, b;
      output y;
      wire n1;
      NAND2_X1 g1 (.A(a), .B(b), .Z(n1));
      DFF_X1 f1 (.D(n1), .CK(clk), .Q(f1_q));
      ...
    endmodule

Writer and parser round-trip exactly (cell choices included), which is
what the tests pin down.
"""

from __future__ import annotations

import re
from typing import Dict, List, TextIO, Union

from repro.cells.cell import CombCell, SequentialCell
from repro.cells.library import Library
from repro.errors import NetlistError
from repro.netlist.netlist import Gate, GateType, Netlist


class VerilogError(NetlistError):
    """Raised on malformed structural Verilog."""


def write_verilog(
    netlist: Netlist, library: Library, stream: TextIO
) -> None:
    """Serialize a netlist as structural Verilog."""
    inputs = [g.name for g in netlist.inputs()]
    outputs = [g.name for g in netlist.outputs()]
    ports = inputs + outputs + ["clk"]

    stream.write(f"module {netlist.name} ({', '.join(ports)});\n")
    for name in inputs:
        stream.write(f"  input {name};\n")
    stream.write("  input clk;\n")
    for name in outputs:
        stream.write(f"  output {name};\n")

    wires = [
        g.name
        for g in netlist
        if g.gtype in (GateType.COMB, GateType.DFF)
    ]
    for name in wires:
        stream.write(f"  wire {name};\n")

    for gate in netlist:
        if gate.gtype is GateType.COMB:
            cell = library[gate.cell]
            if not isinstance(cell, CombCell):
                raise VerilogError(
                    f"gate {gate.name!r}: cell {gate.cell!r} is not "
                    f"combinational"
                )
            if len(gate.fanins) != len(cell.inputs):
                # A zip() here used to silently drop pins on mismatch,
                # emitting structurally wrong (yet legal-looking)
                # Verilog; the arity contract is the cell's.
                raise VerilogError(
                    f"gate {gate.name!r}: cell {cell.name!r} has "
                    f"{len(cell.inputs)} input pins but the gate has "
                    f"{len(gate.fanins)} fanins"
                )
            pins = ", ".join(
                f".{pin}({driver})"
                for pin, driver in zip(cell.inputs, gate.fanins)
            )
            stream.write(
                f"  {cell.name} u_{gate.name} ({pins}, "
                f".{cell.output}({gate.name}));\n"
            )
        elif gate.gtype is GateType.DFF:
            cell_name = gate.cell or library.default_flip_flop().name
            cell = library[cell_name]
            if not isinstance(cell, SequentialCell):
                raise VerilogError(
                    f"flop {gate.name!r}: cell {cell_name!r} is not "
                    f"sequential"
                )
            stream.write(
                f"  {cell.name} u_{gate.name} "
                f"(.{cell.data_pin}({gate.fanins[0]}), "
                f".{cell.clock_pin}(clk), "
                f".{cell.output}({gate.name}));\n"
            )
    for gate in netlist.outputs():
        stream.write(f"  assign {gate.name} = {gate.fanins[0]};\n")
    stream.write("endmodule\n")


def verilog_text(netlist: Netlist, library: Library) -> str:
    """Serialize to a structural-Verilog string."""
    import io

    buffer = io.StringIO()
    write_verilog(netlist, library, buffer)
    return buffer.getvalue()


_MODULE_RE = re.compile(
    r"module\s+(?P<name>\w+)\s*\((?P<ports>[^)]*)\)\s*;", re.S
)
_DECL_RE = re.compile(r"(input|output|wire)\s+([^;]+);")
_INSTANCE_RE = re.compile(
    r"(?P<cell>[A-Za-z_][\w]*)\s+(?P<inst>[\w]+)\s*\("
    r"(?P<conns>[^;]*?)\)\s*;",
    re.S,
)
_PIN_RE = re.compile(r"\.(?P<pin>\w+)\s*\(\s*(?P<net>\w+)\s*\)")
_ASSIGN_RE = re.compile(r"assign\s+(?P<lhs>\w+)\s*=\s*(?P<rhs>\w+)\s*;")


def parse_verilog(
    source: Union[str, TextIO], library: Library
) -> Netlist:
    """Parse structural Verilog produced by :func:`write_verilog`
    (or any netlist using the same subset)."""
    text = source.read() if hasattr(source, "read") else source
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)

    module = _MODULE_RE.search(text)
    if not module:
        raise VerilogError("no module declaration found")
    name = module.group("name")
    body = text[module.end():]
    end = body.find("endmodule")
    if end < 0:
        raise VerilogError("missing endmodule")
    body = body[:end]

    inputs: List[str] = []
    outputs: List[str] = []
    for kind, names in _DECL_RE.findall(body):
        nets = [n.strip() for n in names.split(",") if n.strip()]
        if kind == "input":
            for net in nets:
                if net in inputs:
                    raise VerilogError(f"input {net!r} declared twice")
                inputs.append(net)
        elif kind == "output":
            for net in nets:
                if net in outputs:
                    raise VerilogError(f"output {net!r} declared twice")
                outputs.append(net)

    assigns: Dict[str, str] = {}
    for match in _ASSIGN_RE.finditer(body):
        if match.group("lhs") in assigns:
            raise VerilogError(
                f"net {match.group('lhs')!r} has two assign drivers"
            )
        assigns[match.group("lhs")] = match.group("rhs")

    netlist = Netlist(name)
    for net in inputs:
        if net == "clk":
            continue
        if net in netlist:
            raise VerilogError(f"input {net!r} declared twice")
        netlist.add(Gate(net, GateType.INPUT))

    #: Which instance drives each net, for duplicate-driver diagnostics.
    driver_of: Dict[str, str] = {net: "input port" for net in inputs}

    def _claim_net(out_net: str, inst: str) -> None:
        if out_net in driver_of:
            raise VerilogError(
                f"instance {inst!r} drives net {out_net!r}, already "
                f"driven by {driver_of[out_net]}"
            )
        driver_of[out_net] = f"instance {inst!r}"

    body_wo_assigns = _ASSIGN_RE.sub("", body)
    body_wo_decls = _DECL_RE.sub("", body_wo_assigns)
    instance_of: Dict[str, str] = {}
    for match in _INSTANCE_RE.finditer(body_wo_decls):
        cell_name = match.group("cell")
        inst = match.group("inst")
        if cell_name not in library:
            raise VerilogError(f"unknown cell {cell_name!r}")
        cell = library[cell_name]
        pins = dict(_PIN_RE.findall(match.group("conns")))
        if isinstance(cell, CombCell):
            known = set(cell.inputs) | {cell.output}
            try:
                fanins = tuple(pins[pin] for pin in cell.inputs)
                out_net = pins[cell.output]
            except KeyError as exc:
                raise VerilogError(
                    f"instance {inst!r}: missing pin {exc}"
                ) from None
            unknown = sorted(set(pins) - known)
            if unknown:
                raise VerilogError(
                    f"instance {inst!r}: cell {cell.name!r} has no pin "
                    f"{unknown[0]!r}"
                )
            _claim_net(out_net, inst)
            netlist.add(
                Gate(out_net, GateType.COMB, fanins, cell=cell.name)
            )
        elif isinstance(cell, SequentialCell):
            known = {cell.data_pin, cell.clock_pin, cell.output}
            try:
                data = pins[cell.data_pin]
                out_net = pins[cell.output]
            except KeyError as exc:
                raise VerilogError(
                    f"instance {inst!r}: missing pin {exc}"
                ) from None
            unknown = sorted(set(pins) - known)
            if unknown:
                raise VerilogError(
                    f"instance {inst!r}: cell {cell.name!r} has no pin "
                    f"{unknown[0]!r}"
                )
            _claim_net(out_net, inst)
            netlist.add(
                Gate(out_net, GateType.DFF, (data,), cell=cell.name)
            )
        else:  # pragma: no cover - library has only these kinds
            raise VerilogError(f"unsupported cell kind {cell_name!r}")
        instance_of[out_net] = inst

    for net in outputs:
        driver = assigns.get(net, net)
        if driver == net:
            raise VerilogError(f"output {net!r} has no assign driver")
        if net in netlist:
            raise VerilogError(
                f"output {net!r} is already driven by "
                f"{driver_of.get(net, 'another gate')}"
            )
        netlist.add(Gate(net, GateType.OUTPUT, (driver,)))

    # Resolve every reference before handing the netlist out: a raw
    # KeyError from deep inside the topological rebuild names neither
    # the instance nor the file, this does.
    for gate in netlist:
        for fanin in gate.fanins:
            if fanin not in netlist:
                where = (
                    f"instance {instance_of[gate.name]!r}"
                    if gate.name in instance_of
                    else f"output {gate.name!r}"
                )
                raise VerilogError(
                    f"{where} reads net {fanin!r}, which nothing drives"
                )
    netlist.topo_order()  # validate connectivity (cycles)
    return netlist
