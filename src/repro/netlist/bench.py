"""ISCAS89 ``.bench`` format parser and writer.

Format reference (pld.ttu.ee benchmark distribution)::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G11 = NAND(G0, G10)
    G12 = NOT(G11)

Gates are mapped onto library cells through
:class:`~repro.netlist.builder.NetlistBuilder`, so wide gates are
decomposed into trees exactly as a technology mapper would.

Parsing is *declare-then-resolve*: the first pass collects every
declaration (with its source line) and rejects duplicates and
conflicts; the second pass resolves every reference against the
declared names before any gate is built.  Distribution ISCAS89 files
are neither topologically sorted nor single-line (wide gates wrap
their fanin lists across physical lines), so the parser accepts any
line order and joins continuation lines until the parentheses balance.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, TextIO, Tuple, Union

from repro.cells.library import Library
from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist

_LINE_RE = re.compile(
    r"^\s*(?:(?P<io>INPUT|OUTPUT)\s*\(\s*(?P<io_name>[^)\s]+)\s*\)"
    r"|(?P<lhs>[^=\s]+)\s*=\s*(?P<func>[A-Za-z01]+)\s*"
    r"\(\s*(?P<args>[^)]*)\)"
    r")\s*$"
)

_FUNC_MAP = {
    "AND": "AND",
    "NAND": "NAND",
    "OR": "OR",
    "NOR": "NOR",
    "XOR": "XOR",
    "XNOR": "XNOR",
    "NOT": "INV",
    "INV": "INV",
    "BUF": "BUF",
    "BUFF": "BUF",
    "DFF": "DFF",
}


class BenchParseError(NetlistError):
    """Raised on malformed ``.bench`` input."""


def _logical_lines(text: str) -> Iterator[Tuple[int, str]]:
    """Comment-stripped logical lines with their starting line number.

    A gate whose fanin list wraps across physical lines (standard in
    the distributed ISCAS89 files) is joined until its parentheses
    balance; the reported line number is where the statement started.
    """
    pending = ""
    pending_no = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if pending:
            pending = f"{pending} {line}"
        else:
            pending = line
            pending_no = line_no
        if pending.count("(") <= pending.count(")"):
            yield pending_no, pending
            pending = ""
    if pending:
        # Unbalanced at EOF; surface it through the normal line error.
        yield pending_no, pending


def parse_bench(
    source: Union[str, TextIO], library: Library, name: str = "bench"
) -> Netlist:
    """Parse ``.bench`` text (string or file object) into a netlist.

    ``OUTPUT(x)`` markers become OUTPUT gates named ``x__po`` driven by
    gate ``x`` (so a net can be both an output and an internal driver).

    Raises :class:`BenchParseError` — with the offending source line —
    on syntax errors, duplicate or conflicting declarations (a net
    defined twice, an ``INPUT`` redefined as a gate, a repeated
    ``OUTPUT`` marker), and references to names never defined.
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = source

    # -- pass 1: declare ----------------------------------------------
    inputs: Dict[str, int] = {}
    outputs: Dict[str, int] = {}
    output_order: List[str] = []
    gate_lines: Dict[str, Tuple[int, str, List[str]]] = {}
    gate_order: List[str] = []

    for line_no, line in _logical_lines(text):
        match = _LINE_RE.match(line)
        if not match:
            raise BenchParseError(f"line {line_no}: cannot parse {line!r}")
        if match.group("io"):
            io_name = match.group("io_name")
            if match.group("io") == "INPUT":
                if io_name in inputs:
                    raise BenchParseError(
                        f"line {line_no}: INPUT({io_name}) already "
                        f"declared at line {inputs[io_name]}"
                    )
                if io_name in gate_lines:
                    raise BenchParseError(
                        f"line {line_no}: INPUT({io_name}) conflicts with "
                        f"the gate defined at line {gate_lines[io_name][0]}"
                    )
                inputs[io_name] = line_no
            else:
                if io_name in outputs:
                    raise BenchParseError(
                        f"line {line_no}: OUTPUT({io_name}) already "
                        f"declared at line {outputs[io_name]}"
                    )
                outputs[io_name] = line_no
                output_order.append(io_name)
            continue
        lhs = match.group("lhs")
        func = match.group("func").upper()
        if func not in _FUNC_MAP:
            raise BenchParseError(
                f"line {line_no}: unknown function {func!r}"
            )
        if lhs in gate_lines:
            raise BenchParseError(
                f"line {line_no}: gate {lhs!r} already defined at line "
                f"{gate_lines[lhs][0]}"
            )
        if lhs in inputs:
            raise BenchParseError(
                f"line {line_no}: gate {lhs!r} redefines the INPUT "
                f"declared at line {inputs[lhs]}"
            )
        args = [a.strip() for a in match.group("args").split(",") if a.strip()]
        if not args:
            raise BenchParseError(f"line {line_no}: gate {lhs!r} has no fanin")
        if _FUNC_MAP[func] == "DFF" and len(args) != 1:
            raise BenchParseError(
                f"line {line_no}: flop {lhs!r} needs one fanin, "
                f"got {len(args)}"
            )
        gate_lines[lhs] = (line_no, _FUNC_MAP[func], args)
        gate_order.append(lhs)

    # -- pass 2: resolve ----------------------------------------------
    defined = set(inputs) | set(gate_lines)
    for lhs in gate_order:
        line_no, _, args = gate_lines[lhs]
        for arg in args:
            if arg not in defined:
                raise BenchParseError(
                    f"line {line_no}: gate {lhs!r} reads {arg!r}, "
                    f"which is never defined"
                )
    for po, line_no in outputs.items():
        if po not in defined:
            raise BenchParseError(
                f"line {line_no}: OUTPUT({po}) names a net that is "
                f"never defined"
            )

    builder = NetlistBuilder(name, library)
    for pi in inputs:
        builder.input(pi)
    # Flops first, then combinational gates, both in declaration order
    # (fanins are by-name, so the builder needs no topological sort).
    for lhs in gate_order:
        _, func, args = gate_lines[lhs]
        if func == "DFF":
            builder.flop(lhs, args[0])
    for lhs in gate_order:
        _, func, args = gate_lines[lhs]
        if func != "DFF":
            builder.gate(lhs, func, args)
    for po in output_order:
        builder.output(f"{po}__po", po)
    return builder.build()


def write_bench(netlist: Netlist, stream: TextIO) -> None:
    """Serialize a netlist to ``.bench`` text.

    Cell-level gates are written with their generic function; tree
    helper gates (``__t``) are preserved as separate lines, which
    round-trips exactly.
    """
    stream.write(f"# {netlist.name} — written by repro\n")
    for gate in netlist.inputs():
        stream.write(f"INPUT({gate.name})\n")
    for gate in netlist.outputs():
        stream.write(f"OUTPUT({gate.fanins[0]})\n")
    for gate in netlist.flops():
        stream.write(f"{gate.name} = DFF({gate.fanins[0]})\n")
    for gate in netlist.comb_gates():
        base = gate.cell.rsplit("_X", 1)[0] if gate.cell else "BUF"
        func = {
            "INV": "NOT",
            "BUF": "BUFF",
            "NAND2": "NAND",
            "NAND3": "NAND",
            "NOR2": "NOR",
            "NOR3": "NOR",
            "AND2": "AND",
            "OR2": "OR",
            "XOR2": "XOR",
            "XNOR2": "XNOR",
        }.get(base)
        if func is None:
            raise ValueError(
                f"gate {gate.name!r} uses cell {gate.cell!r} with no "
                f".bench equivalent"
            )
        args = ", ".join(gate.fanins)
        stream.write(f"{gate.name} = {func}({args})\n")


def bench_text(netlist: Netlist) -> str:
    """Convenience: serialize to a string."""
    import io

    buffer = io.StringIO()
    write_bench(netlist, buffer)
    return buffer.getvalue()
