"""ISCAS89 ``.bench`` format parser and writer.

Format reference (pld.ttu.ee benchmark distribution)::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G11 = NAND(G0, G10)
    G12 = NOT(G11)

Gates are mapped onto library cells through
:class:`~repro.netlist.builder.NetlistBuilder`, so wide gates are
decomposed into trees exactly as a technology mapper would.
"""

from __future__ import annotations

import re
from typing import List, TextIO, Tuple, Union

from repro.cells.library import Library
from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist

_LINE_RE = re.compile(
    r"^\s*(?:(?P<io>INPUT|OUTPUT)\s*\(\s*(?P<io_name>[^)\s]+)\s*\)"
    r"|(?P<lhs>[^=\s]+)\s*=\s*(?P<func>[A-Za-z01]+)\s*"
    r"\(\s*(?P<args>[^)]*)\)"
    r")\s*$"
)

_FUNC_MAP = {
    "AND": "AND",
    "NAND": "NAND",
    "OR": "OR",
    "NOR": "NOR",
    "XOR": "XOR",
    "XNOR": "XNOR",
    "NOT": "INV",
    "INV": "INV",
    "BUF": "BUF",
    "BUFF": "BUF",
    "DFF": "DFF",
}


class BenchParseError(NetlistError):
    """Raised on malformed ``.bench`` input."""


def parse_bench(
    source: Union[str, TextIO], library: Library, name: str = "bench"
) -> Netlist:
    """Parse ``.bench`` text (string or file object) into a netlist.

    ``OUTPUT(x)`` markers become OUTPUT gates named ``x__po`` driven by
    gate ``x`` (so a net can be both an output and an internal driver).
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = source

    inputs: List[str] = []
    output_nets: List[str] = []
    gate_lines: List[Tuple[str, str, List[str]]] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if not match:
            raise BenchParseError(f"line {line_no}: cannot parse {raw!r}")
        if match.group("io"):
            target = inputs if match.group("io") == "INPUT" else output_nets
            target.append(match.group("io_name"))
            continue
        lhs = match.group("lhs")
        func = match.group("func").upper()
        if func not in _FUNC_MAP:
            raise BenchParseError(
                f"line {line_no}: unknown function {func!r}"
            )
        args = [a.strip() for a in match.group("args").split(",") if a.strip()]
        if not args:
            raise BenchParseError(f"line {line_no}: gate {lhs!r} has no fanin")
        gate_lines.append((lhs, _FUNC_MAP[func], args))

    builder = NetlistBuilder(name, library)
    for pi in inputs:
        builder.input(pi)
    # Flops must exist before gates that read their Q; declare them
    # first (their D drivers are resolved after all gates exist, which
    # the Gate tuple model handles since fanins are by-name).
    for lhs, func, args in gate_lines:
        if func == "DFF":
            if len(args) != 1:
                raise BenchParseError(f"flop {lhs!r} needs one fanin")
            builder.flop(lhs, args[0])
    for lhs, func, args in gate_lines:
        if func != "DFF":
            builder.gate(lhs, func, args)
    for po in output_nets:
        builder.output(f"{po}__po", po)
    return builder.build()


def write_bench(netlist: Netlist, stream: TextIO) -> None:
    """Serialize a netlist to ``.bench`` text.

    Cell-level gates are written with their generic function; tree
    helper gates (``__t``) are preserved as separate lines, which
    round-trips exactly.
    """
    stream.write(f"# {netlist.name} — written by repro\n")
    for gate in netlist.inputs():
        stream.write(f"INPUT({gate.name})\n")
    for gate in netlist.outputs():
        stream.write(f"OUTPUT({gate.fanins[0]})\n")
    for gate in netlist.flops():
        stream.write(f"{gate.name} = DFF({gate.fanins[0]})\n")
    for gate in netlist.comb_gates():
        base = gate.cell.rsplit("_X", 1)[0] if gate.cell else "BUF"
        func = {
            "INV": "NOT",
            "BUF": "BUFF",
            "NAND2": "NAND",
            "NAND3": "NAND",
            "NOR2": "NOR",
            "NOR3": "NOR",
            "AND2": "AND",
            "OR2": "OR",
            "XOR2": "XOR",
            "XNOR2": "XNOR",
        }.get(base)
        if func is None:
            raise ValueError(
                f"gate {gate.name!r} uses cell {gate.cell!r} with no "
                f".bench equivalent"
            )
        args = ", ".join(gate.fanins)
        stream.write(f"{gate.name} = {func}({args})\n")


def bench_text(netlist: Netlist) -> str:
    """Convenience: serialize to a string."""
    import io

    buffer = io.StringIO()
    write_bench(netlist, buffer)
    return buffer.getvalue()
