"""Core gate-level netlist model.

The model follows the ISCAS89 ``.bench`` convention: every gate drives
a single net named after the gate, so connectivity is expressed as an
ordered tuple of driver names per gate.  Four gate types exist:

* ``INPUT`` — primary input (no fanin);
* ``OUTPUT`` — primary output marker (one fanin, no fanout, no logic);
* ``DFF`` — a flip-flop: its single fanin is the D input, its name is
  the Q net (a combinational source);
* ``COMB`` — a combinational gate mapped to a library cell.

The retiming flows view the netlist *cut at its flops*: every DFF/PI
drives the combinational cloud and every DFF-D/PO terminates it.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace
from enum import Enum

from repro import metrics
from typing import (
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.cells.library import Library


class GateType(Enum):
    """The four gate roles: INPUT, OUTPUT, DFF, COMB."""
    INPUT = "input"
    OUTPUT = "output"
    DFF = "dff"
    COMB = "comb"


@dataclass(frozen=True)
class Gate:
    """One gate (and the net it drives, which shares its name)."""

    name: str
    gtype: GateType
    fanins: Tuple[str, ...] = ()
    #: Library cell name; required for COMB, optional for DFF.
    cell: Optional[str] = None

    def __post_init__(self) -> None:
        if self.gtype is GateType.INPUT and self.fanins:
            raise ValueError(f"input {self.name!r} cannot have fanins")
        if self.gtype is GateType.OUTPUT and len(self.fanins) != 1:
            raise ValueError(f"output {self.name!r} needs exactly one fanin")
        if self.gtype is GateType.DFF and len(self.fanins) != 1:
            raise ValueError(f"flop {self.name!r} needs exactly one fanin")
        if self.gtype is GateType.COMB and not self.fanins:
            raise ValueError(f"comb gate {self.name!r} needs fanins")
        if self.gtype is GateType.COMB and self.cell is None:
            raise ValueError(f"comb gate {self.name!r} needs a cell")

    @property
    def is_comb(self) -> bool:
        """True for combinational gates."""
        return self.gtype is GateType.COMB

    @property
    def is_flop(self) -> bool:
        """True for flip-flops."""
        return self.gtype is GateType.DFF

    @property
    def is_source(self) -> bool:
        """True when the gate launches data into the comb cloud."""
        return self.gtype in (GateType.INPUT, GateType.DFF)

    def with_cell(self, cell: str) -> "Gate":
        """Copy of the gate with a different library cell."""
        return replace(self, cell=cell)


# -- change events ----------------------------------------------------------
#
# Every mutator emits one typed event *after* the netlist reflects the
# change.  Subscribers (the timing engine, the delay calculators, the
# min-delay analysis) translate events into scoped cache repair instead
# of whole-engine invalidation; anything the new netlist state cannot
# answer anymore (the old cell, a removed gate's drivers) rides in the
# event itself.


@dataclass(frozen=True)
class NetlistEvent:
    """Base class of the typed netlist change events."""

    #: True when the event changes connectivity (and hence the
    #: topological order); cell swaps keep the structure intact.
    structural: ClassVar[bool] = True

    def dirty_gates(self, netlist: "Netlist") -> Set[str]:
        """Surviving gates whose electrical context the event changed.

        "Electrical context" means anything the STA caches derive from:
        the gate's cell, its fanin pin mapping, the load it drives, or
        its output slew.  Resolved against the *post-mutation* netlist,
        so subscribers must call this at delivery time.
        """
        raise NotImplementedError

    def removed_gates(self) -> Tuple[str, ...]:
        """Gates the event deleted (empty for non-removal events)."""
        return ()


@dataclass(frozen=True)
class CellSwapped(NetlistEvent):
    """A gate changed library cell (sizing / Vt swap / master typing)."""

    gate: str
    old_cell: Optional[str]
    new_cell: Optional[str]

    structural: ClassVar[bool] = False

    def dirty_gates(self, netlist: "Netlist") -> Set[str]:
        # The swapped gate's arcs, load-dependent slew, and every
        # driver whose load includes its (changed) input pin caps.
        return {self.gate, *netlist[self.gate].fanins}


@dataclass(frozen=True)
class FaninRewired(NetlistEvent):
    """A sink's fanin moved from one driver to another (buffering)."""

    sink: str
    old_driver: str
    new_driver: str

    def dirty_gates(self, netlist: "Netlist") -> Set[str]:
        # Both drivers gained/lost a connection (load change); the sink
        # itself has a new pin mapping.
        return {self.sink, self.old_driver, self.new_driver}


@dataclass(frozen=True)
class GateAdded(NetlistEvent):
    """A new gate was inserted (e.g. a hold buffer)."""

    gate: str

    def dirty_gates(self, netlist: "Netlist") -> Set[str]:
        # The new gate needs fresh caches; its drivers see extra load.
        return {self.gate, *netlist[self.gate].fanins}


@dataclass(frozen=True)
class GateRemoved(NetlistEvent):
    """One or more fanout-free gates were deleted."""

    gates: Tuple[str, ...]
    #: Surviving drivers of the removed gates — their loads shrank.
    #: Recorded here because the removed gates are gone from the
    #: netlist by the time subscribers see the event.
    fanins: Tuple[str, ...]

    def dirty_gates(self, netlist: "Netlist") -> Set[str]:
        return {name for name in self.fanins if name in netlist}

    def removed_gates(self) -> Tuple[str, ...]:
        return self.gates


class ChangeLog:
    """A subscriber that simply records every event, in order.

    Useful for tests, debugging, and replay tooling::

        log = ChangeLog()
        netlist.subscribe(log)
        netlist.replace_cell("g1", "NAND2_X2")
        assert isinstance(log.events[-1], CellSwapped)
    """

    def __init__(self) -> None:
        self.events: List[NetlistEvent] = []

    def on_netlist_event(self, event: NetlistEvent) -> None:
        """Record one event (the subscriber protocol hook)."""
        self.events.append(event)

    def clear(self) -> None:
        """Forget all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class Netlist:
    """A named collection of gates with derived connectivity queries.

    Gates are stored in insertion order.  Mutation is limited to
    :meth:`add`, :meth:`replace_cell` and :meth:`remove` so that the
    cached fanout map and topological order can be invalidated
    reliably.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._gates: Dict[str, Gate] = {}
        self._dirty = True
        self._fanouts: Dict[str, Tuple[str, ...]] = {}
        self._topo: Tuple[str, ...] = ()
        #: Weak references to subscribers (see :meth:`subscribe`); weak
        #: so a netlist outliving its timing engines never pins them.
        self._subscribers: List["weakref.ref"] = []

    # -- change notification ------------------------------------------

    def subscribe(self, subscriber: object) -> None:
        """Register an object to receive change events.

        ``subscriber`` must expose ``on_netlist_event(event)``; it is
        held weakly, so subscribers need no explicit unsubscribe when
        they go out of scope.
        """
        if not hasattr(subscriber, "on_netlist_event"):
            raise TypeError(
                f"subscriber {subscriber!r} has no on_netlist_event()"
            )
        ref = weakref.ref(subscriber)
        if all(existing() is not subscriber for existing in self._subscribers):
            self._subscribers.append(ref)

    def unsubscribe(self, subscriber: object) -> None:
        """Remove a subscriber (no-op when not registered)."""
        self._subscribers = [
            ref
            for ref in self._subscribers
            if ref() is not None and ref() is not subscriber
        ]

    def _emit(self, event: NetlistEvent) -> None:
        """Deliver ``event`` to live subscribers, pruning dead refs."""
        if not self._subscribers:
            return
        live: List["weakref.ref"] = []
        for ref in self._subscribers:
            subscriber = ref()
            if subscriber is None:
                continue
            live.append(ref)
            subscriber.on_netlist_event(event)
        self._subscribers = live

    def __getstate__(self) -> Dict[str, object]:
        # Subscribers are weakrefs (unpicklable) and process-local by
        # nature: a netlist shipped to a worker starts with none.
        state = self.__dict__.copy()
        state["_subscribers"] = []
        return state

    # -- construction -------------------------------------------------

    def add(self, gate: Gate) -> None:
        """Insert a gate (names must be unique)."""
        if gate.name in self._gates:
            raise ValueError(f"duplicate gate name {gate.name!r}")
        self._gates[gate.name] = gate
        self._dirty = True
        self._emit(GateAdded(gate.name))

    def replace_cell(self, name: str, cell: str) -> None:
        """Swap the library cell of a gate (sizing); keeps connectivity."""
        gate = self[name]
        self._gates[name] = gate.with_cell(cell)
        # Connectivity unchanged; topo/fanout caches stay valid.
        self._emit(CellSwapped(name, gate.cell, cell))

    def rewire_fanin(
        self, sink: str, old_driver: str, new_driver: str
    ) -> None:
        """Replace every ``old_driver`` fanin of ``sink`` (buffering)."""
        gate = self[sink]
        if old_driver not in gate.fanins:
            raise ValueError(
                f"{old_driver!r} does not drive {sink!r}"
            )
        if new_driver not in self._gates:
            raise KeyError(f"no gate {new_driver!r}")
        fanins = tuple(
            new_driver if fanin == old_driver else fanin
            for fanin in gate.fanins
        )
        self._gates[sink] = replace(gate, fanins=fanins)
        self._dirty = True
        self._emit(FaninRewired(sink, old_driver, new_driver))

    def remove(self, name: str) -> None:
        """Delete a gate that drives nothing."""
        gate = self[name]
        users = self.fanouts(name)
        if users:
            raise ValueError(
                f"cannot remove {name!r}: still drives {sorted(users)}"
            )
        del self._gates[gate.name]
        self._dirty = True
        self._emit(GateRemoved((gate.name,), tuple(gate.fanins)))

    def remove_many(self, names: Iterable[str]) -> None:
        """Remove a closed set of gates in one shot.

        Every remaining gate must keep all of its drivers; the check is
        done once after the bulk delete (O(E)), which is what makes
        dead-logic sweeps linear instead of quadratic.
        """
        doomed = set(names)
        for name in doomed:
            if name not in self._gates:
                raise KeyError(f"no gate {name!r} in netlist {self.name!r}")
        for gate in self._gates.values():
            if gate.name in doomed:
                continue
            broken = [d for d in gate.fanins if d in doomed]
            if broken:
                raise ValueError(
                    f"cannot remove {sorted(broken)}: gate {gate.name!r} "
                    f"still reads them"
                )
        survivors: Set[str] = set()
        for name in doomed:
            for driver in self._gates[name].fanins:
                if driver not in doomed:
                    survivors.add(driver)
        for name in doomed:
            del self._gates[name]
        self._dirty = True
        self._emit(
            GateRemoved(tuple(sorted(doomed)), tuple(sorted(survivors)))
        )

    # -- access -------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._gates

    def __getitem__(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise KeyError(f"no gate {name!r} in netlist {self.name!r}") from None

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates.values())

    def __len__(self) -> int:
        return len(self._gates)

    @property
    def gates(self) -> Dict[str, Gate]:
        """Name-to-gate mapping (a copy)."""
        return dict(self._gates)

    def names(self) -> List[str]:
        """Gate names in insertion order."""
        return list(self._gates)

    def inputs(self) -> List[Gate]:
        """Primary-input gates."""
        return [g for g in self if g.gtype is GateType.INPUT]

    def outputs(self) -> List[Gate]:
        """Primary-output marker gates."""
        return [g for g in self if g.gtype is GateType.OUTPUT]

    def flops(self) -> List[Gate]:
        """Flip-flop gates."""
        return [g for g in self if g.gtype is GateType.DFF]

    def comb_gates(self) -> List[Gate]:
        """Combinational gates."""
        return [g for g in self if g.gtype is GateType.COMB]

    def sources(self) -> List[Gate]:
        """Gates launching data into the comb cloud (PIs and flops)."""
        return [g for g in self if g.is_source]

    def endpoints(self) -> List[Gate]:
        """Gates terminating the comb cloud (POs and flop D pins)."""
        return [g for g in self if g.gtype in (GateType.OUTPUT, GateType.DFF)]

    # -- derived connectivity ------------------------------------------

    def _rebuild(self) -> None:
        fanouts: Dict[str, List[str]] = {name: [] for name in self._gates}
        for gate in self:
            for driver in gate.fanins:
                if driver not in self._gates:
                    raise KeyError(
                        f"gate {gate.name!r} references missing driver "
                        f"{driver!r}"
                    )
                fanouts[driver].append(gate.name)
        self._fanouts = {k: tuple(v) for k, v in fanouts.items()}
        self._topo = tuple(self._levelize())
        self._dirty = False

    def _levelize(self) -> List[str]:
        """Topological order of the combinational cloud.

        Sources (PIs, flop Qs) come first; DFF fanins do not create
        edges (the cloud is cut at flops), so any cycle detected is a
        genuine combinational loop.
        """
        indeg: Dict[str, int] = {}
        for gate in self:
            if gate.is_source:
                indeg[gate.name] = 0
            else:
                indeg[gate.name] = len(gate.fanins)
        order: List[str] = [g.name for g in self if g.is_source]
        head = 0
        while head < len(order):
            current = order[head]
            head += 1
            for user_name in self._fanouts[current]:
                user = self._gates[user_name]
                if user.is_source:
                    continue  # flop D input: edge cut here
                indeg[user_name] -= 1
                if indeg[user_name] == 0:
                    order.append(user_name)
        remaining = [n for n, d in indeg.items() if d > 0]
        if remaining:
            raise ValueError(
                f"netlist {self.name!r} has a combinational cycle through "
                f"{sorted(remaining)[:8]}"
            )
        return order

    def _ensure(self) -> None:
        if self._dirty:
            self._rebuild()

    def fanouts(self, name: str) -> Tuple[str, ...]:
        """Names of gates whose fanin includes ``name``."""
        self._ensure()
        return self._fanouts[name]

    def topo_order(self) -> Tuple[str, ...]:
        """Sources first, then comb gates/outputs in dependency order.

        Returns the cached immutable tuple directly: this is called
        inside the DP/repair loops, and the historical per-call
        ``list(...)`` copy was pure overhead (no caller mutates the
        order — it is consumed by iteration, ``reversed`` and
        indexing only).
        """
        self._ensure()
        metrics.count("netlist.topo.copies_avoided")
        return self._topo

    def comb_edges(self) -> Iterator[Tuple[str, str]]:
        """All (driver, sink) edges of the combinational cloud.

        Edges into flop D pins and output markers are included (they
        terminate paths); edges out of flop Q / PIs are included (they
        launch paths).
        """
        for gate in self:
            for driver in gate.fanins:
                yield (driver, gate.name)

    def fanin_cone(self, name: str) -> Set[str]:
        """All gates with a combinational path to ``name`` (inclusive)."""
        cone: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            gate = self[current]
            if gate.is_source and current != name:
                continue  # stop at stage boundary
            for driver in gate.fanins:
                stack.append(driver)
        return cone

    def fanout_cone(self, name: str) -> Set[str]:
        """All gates reachable from ``name`` without crossing a flop."""
        cone: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            for user in self.fanouts(current):
                if not self[user].is_source:
                    stack.append(user)
                else:
                    cone.add(user)
        return cone

    # -- metrics -------------------------------------------------------

    def comb_area(self, library: Library) -> float:
        """Sum of combinational cell areas."""
        total = 0.0
        for gate in self.comb_gates():
            total += library[gate.cell].area
        return total

    def flop_area(self, library: Library) -> float:
        """Sum of flop cell areas."""
        ff = library.default_flip_flop()
        total = 0.0
        for gate in self.flops():
            cell = library[gate.cell] if gate.cell else ff
            total += cell.area
        return total

    def total_area(self, library: Library) -> float:
        """Combinational plus flop area."""
        return self.comb_area(library) + self.flop_area(library)

    def stats(self) -> Dict[str, int]:
        """Gate counts by kind."""
        return {
            "inputs": len(self.inputs()),
            "outputs": len(self.outputs()),
            "flops": len(self.flops()),
            "comb_gates": len(self.comb_gates()),
            "gates": len(self),
        }

    def copy(self, name: Optional[str] = None) -> "Netlist":
        """A structural copy sharing immutable gates."""
        dup = Netlist(name or self.name)
        dup._gates = dict(self._gates)
        dup._dirty = True
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"Netlist({self.name!r}, gates={s['gates']}, "
            f"flops={s['flops']}, pi={s['inputs']}, po={s['outputs']})"
        )
