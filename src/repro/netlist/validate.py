"""Structural validation of netlists against a library."""

from __future__ import annotations

from typing import List

from repro.cells.cell import CombCell
from repro.cells.library import Library
from repro.errors import NetlistError
from repro.netlist.netlist import GateType, Netlist

__all__ = ["NetlistError", "validate", "dangling_gates"]


def validate(netlist: Netlist, library: Library) -> None:
    """Check structure: connectivity, cell existence, pin arity.

    Raises :class:`NetlistError` listing every problem found.  The
    combinational-cycle check happens implicitly via
    :meth:`Netlist.topo_order`.
    """
    problems: List[str] = []

    for gate in netlist:
        for driver in gate.fanins:
            if driver not in netlist:
                problems.append(
                    f"gate {gate.name!r}: missing driver {driver!r}"
                )
            elif netlist[driver].gtype is GateType.OUTPUT:
                problems.append(
                    f"gate {gate.name!r}: driven by output marker {driver!r}"
                )
        if gate.gtype is GateType.COMB:
            if gate.cell not in library:
                problems.append(
                    f"gate {gate.name!r}: cell {gate.cell!r} not in library"
                )
                continue
            cell = library[gate.cell]
            if not isinstance(cell, CombCell):
                problems.append(
                    f"gate {gate.name!r}: cell {gate.cell!r} is not "
                    f"combinational"
                )
            elif len(cell.inputs) != len(gate.fanins):
                problems.append(
                    f"gate {gate.name!r}: cell {gate.cell!r} has "
                    f"{len(cell.inputs)} pins but {len(gate.fanins)} fanins"
                )
        if gate.gtype is GateType.DFF and gate.cell is not None:
            if gate.cell not in library:
                problems.append(
                    f"flop {gate.name!r}: cell {gate.cell!r} not in library"
                )

    if problems:
        raise NetlistError(problems, circuit=netlist.name)

    try:
        netlist.topo_order()
    except NetlistError:
        raise
    except (ValueError, KeyError) as exc:
        raise NetlistError([str(exc)], circuit=netlist.name) from exc


def dangling_gates(netlist: Netlist) -> List[str]:
    """Comb gates that drive nothing (dead logic)."""
    return [
        gate.name
        for gate in netlist.comb_gates()
        if not netlist.fanouts(gate.name)
    ]
