"""Programmatic netlist construction with automatic cell selection."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.cells.library import Library
from repro.netlist.netlist import Gate, GateType, Netlist

#: Generic function -> candidate base-cell names (tried in order).
_GENERIC_CELLS: Dict[str, Sequence[str]] = {
    "BUF": ("BUF",),
    "NOT": ("INV",),
    "INV": ("INV",),
    "AND": ("AND2", "NAND2"),
    "NAND": ("NAND2", "NAND3"),
    "OR": ("OR2", "NOR2"),
    "NOR": ("NOR2", "NOR3"),
    "XOR": ("XOR2",),
    "XNOR": ("XNOR2",),
    "AOI21": ("AOI21",),
    "OAI21": ("OAI21",),
    "MUX2": ("MUX2",),
}


class NetlistBuilder:
    """Fluent builder that maps generic functions onto library cells.

    >>> from repro.cells import default_library
    >>> b = NetlistBuilder("demo", default_library())
    >>> _ = b.input("a"); _ = b.input("b")
    >>> _ = b.gate("g", "NAND", ["a", "b"])
    >>> _ = b.output("y", "g")
    >>> netlist = b.build()
    """

    def __init__(self, name: str, library: Library) -> None:
        self.library = library
        self._netlist = Netlist(name)
        self._built = False

    def _check_open(self) -> None:
        if self._built:
            raise RuntimeError("builder already produced its netlist")

    def input(self, name: str) -> str:
        """Declare a primary input."""
        self._check_open()
        self._netlist.add(Gate(name=name, gtype=GateType.INPUT))
        return name

    def output(self, name: str, driver: str) -> str:
        """Declare a primary-output marker driven by ``driver``."""
        self._check_open()
        self._netlist.add(
            Gate(name=name, gtype=GateType.OUTPUT, fanins=(driver,))
        )
        return name

    def flop(self, name: str, data: str, cell: Optional[str] = None) -> str:
        """Declare a flip-flop named ``name`` with D from ``data``."""
        self._check_open()
        if cell is None:
            cell = self.library.default_flip_flop().name
        self._netlist.add(
            Gate(name=name, gtype=GateType.DFF, fanins=(data,), cell=cell)
        )
        return name

    def gate(
        self,
        name: str,
        function: str,
        fanins: Sequence[str],
        drive: int = 1,
    ) -> str:
        """Add a combinational gate, picking a cell for ``function``.

        Variadic functions (AND/NAND/OR/NOR/XOR) with more than the
        widest available cell are decomposed into a balanced tree of
        2/3-input cells, adding helper gates named ``{name}__t{i}``.
        """
        self._check_open()
        function = function.upper()
        if function == "NOT":
            function = "INV"
        if function not in _GENERIC_CELLS:
            raise ValueError(f"unsupported generic function {function!r}")
        fanins = list(fanins)
        if function in ("BUF", "INV") and len(fanins) != 1:
            raise ValueError(f"{function} takes one input")

        if function in ("AND", "OR", "XOR", "XNOR", "NAND", "NOR"):
            return self._tree_gate(name, function, fanins, drive)
        cell = self._pick(function, len(fanins), drive)
        self._netlist.add(
            Gate(name=name, gtype=GateType.COMB, fanins=tuple(fanins), cell=cell)
        )
        return name

    def buffer(self, name: str, fanin: str, drive: int = 1) -> str:
        """Insert a buffer gate."""
        return self.gate(name, "BUF", [fanin], drive)

    # -- internals ------------------------------------------------------

    def _pick(self, function: str, n_inputs: int, drive: int) -> str:
        generic = {
            "AND": "AND",
            "NAND": "NAND",
            "OR": "OR",
            "NOR": "NOR",
            "XOR": "XOR",
            "XNOR": "XNOR",
            "INV": "INV",
            "BUF": "BUF",
            "AOI21": "AOI21",
            "OAI21": "OAI21",
            "MUX2": "MUX2",
        }[function]
        cells = self.library.comb_by_function(generic, n_inputs)
        if not cells:
            raise KeyError(
                f"no {function} cell with {n_inputs} inputs in "
                f"{self.library.name!r}"
            )
        for cell in cells:
            if cell.drive == drive:
                return cell.name
        return cells[0].name

    def _widths(self, function: str) -> Sequence[int]:
        """Available input widths for ``function``, widest first."""
        widths = sorted(
            {
                len(c.inputs)
                for c in self.library.comb_cells()
                if c.function == function
            },
            reverse=True,
        )
        return widths

    def _tree_gate(
        self, name: str, function: str, fanins: Sequence[str], drive: int
    ) -> str:
        """Decompose a wide variadic gate into a tree of library cells."""
        if len(fanins) == 1:
            return self.buffer(name, fanins[0], drive)
        top = function
        # NAND(a,b,c,d) == NAND(AND(a,b), AND(c,d)): inner reductions
        # use the non-inverting companion of the top function.
        inner = {"NAND": "AND", "NOR": "OR", "XNOR": "XOR"}.get(
            function, function
        )
        top_widths = self._widths(top)
        if not top_widths:
            raise KeyError(f"library has no {top} cell at any width")
        max_top = max(top_widths)

        level = list(fanins)
        counter = 0
        while len(level) > max_top:
            # Reduce pairwise with inner cells until the top can finish.
            next_level = []
            for index in range(0, len(level), 2):
                chunk = level[index : index + 2]
                if len(chunk) == 1:
                    next_level.append(chunk[0])
                    continue
                helper = f"{name}__t{counter}"
                counter += 1
                cell = self._pick(inner, len(chunk), drive)
                self._netlist.add(
                    Gate(
                        name=helper,
                        gtype=GateType.COMB,
                        fanins=tuple(chunk),
                        cell=cell,
                    )
                )
                next_level.append(helper)
            level = next_level
        width = len(level)
        if width not in top_widths:
            width = min(w for w in top_widths if w >= width)
            # Pad by duplicating the last operand (idempotent for
            # AND/OR family; never needed for XOR which is width 2).
            level = level + [level[-1]] * (width - len(level))
        cell = self._pick(top, len(level), drive)
        self._netlist.add(
            Gate(name=name, gtype=GateType.COMB, fanins=tuple(level), cell=cell)
        )
        return name

    def build(self) -> Netlist:
        """Finalize and validate the netlist; the builder closes."""
        self._built = True
        netlist = self._netlist
        netlist.topo_order()  # force validation of connectivity/cycles
        return netlist
