"""Gate-level netlist model and ISCAS89 ``.bench`` I/O."""

from repro.netlist.netlist import (
    CellSwapped,
    ChangeLog,
    FaninRewired,
    Gate,
    GateAdded,
    GateRemoved,
    GateType,
    Netlist,
    NetlistEvent,
)
from repro.netlist.builder import NetlistBuilder
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.verilog import parse_verilog, write_verilog, verilog_text
from repro.netlist.validate import NetlistError, validate

__all__ = [
    "Gate",
    "GateType",
    "Netlist",
    "NetlistEvent",
    "CellSwapped",
    "FaninRewired",
    "GateAdded",
    "GateRemoved",
    "ChangeLog",
    "NetlistBuilder",
    "parse_bench",
    "write_bench",
    "parse_verilog",
    "write_verilog",
    "verilog_text",
    "NetlistError",
    "validate",
]
