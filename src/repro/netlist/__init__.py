"""Gate-level netlist model and ISCAS89 ``.bench`` I/O."""

from repro.netlist.netlist import Gate, GateType, Netlist
from repro.netlist.builder import NetlistBuilder
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.verilog import parse_verilog, write_verilog, verilog_text
from repro.netlist.validate import NetlistError, validate

__all__ = [
    "Gate",
    "GateType",
    "Netlist",
    "NetlistBuilder",
    "parse_bench",
    "write_bench",
    "parse_verilog",
    "write_verilog",
    "verilog_text",
    "NetlistError",
    "validate",
]
