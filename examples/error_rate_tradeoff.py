#!/usr/bin/env python3
"""Sweep the area / error-rate trade-off (Section VI-D).

Scaling G-RAR's cost-aware rescue budget buys lower error rates with
combinational area — the paper's observation that ~5% extra area can
drive error rates to zero.

Run:  python examples/error_rate_tradeoff.py [circuit] [overhead]
"""

import sys

from repro.cells import default_library
from repro.circuits import build_benchmark
from repro.flows.tradeoff import error_rate_tradeoff


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s1423"
    overhead = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    library = default_library()
    netlist = build_benchmark(circuit, library)
    points = error_rate_tradeoff(
        netlist, library, overhead,
        budget_scales=(0.0, 0.25, 0.5, 1.0, 2.0, 4.0),
        cycles=160,
    )
    baseline = points[0].total_area
    print(f"{circuit} at c={overhead}: rescue-budget sweep")
    print(f"{'scale':>6s} {'total':>9s} {'dArea%':>7s} "
          f"{'EDL#':>5s} {'err%':>7s}")
    for point in points:
        delta = 100 * (point.total_area - baseline) / baseline
        print(
            f"{point.budget_scale:6.2f} {point.total_area:9.1f} "
            f"{delta:+7.2f} {point.n_edl:5d} {point.error_rate:7.2f}"
        )
    print("\nmore rescue budget -> fewer error-detecting masters and a")
    print("lower dynamic error rate, at a small combinational premium.")


if __name__ == "__main__":
    main()
