#!/usr/bin/env python3
"""Quickstart: retime one benchmark circuit with all three approaches.

Builds an ISCAS89-profile circuit, converts it to the two-phase
latch-based resilient form, and compares the paper's three retiming
approaches (resiliency-unaware base, virtual-library RVL-RAR, and
graph-based G-RAR) at a medium error-detection overhead.

Run:  python examples/quickstart.py [circuit] [overhead]
"""

import sys

from repro.analysis import area_breakdown
from repro.cells import default_library
from repro.circuits import build_benchmark
from repro.flows import prepare_circuit, run_flow


def main() -> None:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "s1196"
    overhead = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0

    library = default_library()
    netlist = build_benchmark(circuit_name, library)
    print(f"circuit {circuit_name}: {netlist.stats()}")

    # One clock scheme for every method: the Table I recipe derived
    # from the measured worst path (phi1 = 0.3 P, Pi = 0.7 P).
    scheme, _ = prepare_circuit(netlist, library)
    print(
        f"clock: P = {scheme.max_path_delay:.3f} ns, "
        f"Pi = {scheme.period:.3f} ns, "
        f"resiliency window = {scheme.resiliency_window:.3f} ns"
    )

    base = None
    for method in ("base", "rvl", "grar"):
        outcome = run_flow(
            method, netlist, library, overhead, scheme=scheme
        )
        breakdown = area_breakdown(outcome)
        line = (
            f"{method:>5s}: total {outcome.total_area:8.1f}  "
            f"seq {outcome.sequential_area:7.1f}  "
            f"slaves {outcome.n_slaves:4d}  EDL {outcome.n_edl:3d}  "
            f"comb {breakdown.comb:7.1f}"
        )
        if base is None:
            base = outcome
        else:
            saving = 100 * (base.total_area - outcome.total_area)
            saving /= base.total_area
            line += f"  ({saving:+.1f}% vs base)"
        print(line)


if __name__ == "__main__":
    main()
