#!/usr/bin/env python3
"""Quantify the paper's hold-margin claim (Section II-A).

"Latch-based resilient circuits have higher hold margins": an
error-detecting master samples until ``phi1`` past its capture edge,
so next-cycle data racing through a short path can corrupt the window.

* In a *flop-based* resilient design the racing data launches at the
  capture edge itself: every path shorter than ``phi1`` (+hold) is a
  violation that needs buffer padding.
* In the *two-phase latch-based* design the slave latch gates the
  launch until ``phi1 + gamma1`` — at the recipe's ``gamma1 = 0`` the
  race can never win: the margin is the entire slave-to-master path.

Run:  python examples/hold_margins.py [circuit]
"""

import sys

from repro.cells import default_library
from repro.circuits import build_benchmark
from repro.flows import prepare_circuit
from repro.sta.min_delay import MinDelayAnalysis
from repro.synth.hold_fix import fix_hold


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s1196"
    library = default_library()
    netlist = build_benchmark(name, library)
    scheme, _ = prepare_circuit(netlist, library)
    hold = library.default_latch().timing.hold
    bound = scheme.resiliency_window + hold

    analysis = MinDelayAnalysis(netlist, library)
    violations = analysis.hold_violations(bound)
    shortest = min(
        analysis.min_endpoint_arrival(g.name)
        for g in netlist.endpoints()
    )
    print(f"{name}: resiliency window = {scheme.resiliency_window:.4f}, "
          f"hold bound = {bound:.4f}")
    print(f"flop-based resilient design:")
    print(f"  shortest master-to-master path: {shortest:.4f}")
    print(f"  endpoints violating the window hold: "
          f"{len(violations)} of {len(netlist.endpoints())}")

    padded = netlist.copy()
    report = fix_hold(padded, library, bound)
    print(f"  buffers inserted to fix: {report.n_buffers} "
          f"(+{report.area_delta:.1f} area)")

    # Latch-based design: data launches from the slave's opening edge.
    launch = scheme.slave_open
    margin = launch + shortest - bound
    print(f"two-phase latch-based design:")
    print(f"  earliest launch (slave opening): {launch:.4f}")
    print(f"  hold margin: {margin:+.4f} "
          f"(>= 0 for any placement: the slave gates the race)")
    print("\nconclusion: the latch-based conversion buys the hold "
          "margin structurally,")
    print("where the flop-based design pays "
          f"{report.n_buffers} hold buffers.")


if __name__ == "__main__":
    main()
