#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables.

Runs the experiment harness over a chosen circuit set and prints every
table (I-IX plus the Section VI-D comparison) in the paper's layout.

Run:  python examples/full_suite.py [circuit ...]
      python examples/full_suite.py --full        # all 12 circuits
"""

import sys
import time

from repro.circuits import suite_names
from repro.harness import ExperimentSuite


def main() -> None:
    args = sys.argv[1:]
    if "--full" in args:
        circuits = suite_names()
    elif args:
        circuits = args
    else:
        circuits = ["s1196", "s1238", "s1423", "s1488"]

    print(f"running the experiment suite on: {', '.join(circuits)}")
    suite = ExperimentSuite(circuits=circuits, error_rate_cycles=160)
    started = time.perf_counter()
    for table in suite.all_tables():
        print()
        print(table.render())
    print(f"\ntotal wall time: {time.perf_counter() - started:.1f}s")


if __name__ == "__main__":
    main()
