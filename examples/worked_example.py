#!/usr/bin/env python3
"""The paper's Fig. 4/5 worked example, step by step.

Reconstructs the illustrative circuit with the published delays and
walks the whole G-RAR pipeline: timing analysis, retiming regions, the
cut set g(O9), the modified retiming graph, the min-cost-flow solve,
and the final Cut1-vs-Cut2 comparison (5 vs 4 area units at c = 2).

Run:  python examples/worked_example.py
"""

from repro.circuits.fig4 import FIG4_DELAYS, fig4_circuit
from repro.latches import HOST, SlavePlacement
from repro.retime import (
    build_retiming_graph,
    compute_cut_sets,
    compute_regions,
    grar_retime,
    solve_retiming_flow,
)


def main() -> None:
    circuit = fig4_circuit()
    netlist = circuit.netlist
    scheme = circuit.scheme

    print("=== Fig. 4: the illustrative circuit ===")
    print(f"clock: phi1=gamma1=phi2=gamma2=2.5, Pi={scheme.period}, "
          f"P={scheme.max_path_delay}")
    print(f"{'gate':>5s} {'d':>3s} {'D^f':>4s} {'D^b(.,O9)':>9s}")
    for name in ("I1", "I2", "G3", "G4", "G5", "G6", "G7", "G8"):
        db = circuit.db(name, "O9")
        db_text = f"{db:.0f}" if db != float("-inf") else "-"
        print(f"{name:>5s} {FIG4_DELAYS[name]:3.0f} "
              f"{circuit.df(name):4.0f} {db_text:>9s}")

    print("\n=== Retiming regions (Section IV-B) ===")
    regions = compute_regions(circuit)
    print(f"Vm (must retime through) : {sorted(regions.vm)}")
    print(f"Vn (must not)            : {sorted(regions.vn)}")
    print(f"Vr (free)                : {sorted(regions.vr)}")

    print("\n=== Cut sets g(t) (Section IV-A) ===")
    cuts = compute_cut_sets(circuit, regions)
    for endpoint, cut in sorted(cuts.items()):
        print(f"g({endpoint}) -> {cut.kind.value:7s} {sorted(cut.gates)}")
    print("key A(u,v,t) values:")
    for u, v in (("G6", "G7"), ("G3", "G6"), ("G5", "G7"), ("I2", "G5")):
        print(f"  A({u},{v},O9) = {circuit.arrival_through(u, v, 'O9'):.0f}")

    print("\n=== The modified retiming graph (Fig. 5) ===")
    graph = build_retiming_graph(circuit, regions, cuts, overhead=2.0)
    print(f"stats: {graph.stats()}")

    print("\n=== Min-cost-flow solve (eq. 14) ===")
    solution = solve_retiming_flow(graph)
    moved = sorted(
        name for name, value in solution.r_values.items()
        if value == -1 and "##" not in name and name != HOST
    )
    print(f"r = -1 for: {moved}")
    print(f"objective: {solution.objective} "
          f"({solution.iterations} simplex pivots)")

    print("\n=== Cut1 vs Cut2 (the paper's comparison, c = 2) ===")
    cut1 = SlavePlacement(retimed={"I1", "I2", "G3"})
    result = grar_retime(circuit, overhead=2.0)
    for label, placement in (("Cut1", cut1), ("Cut2", result.placement)):
        cost = circuit.sequential_cost(placement, overhead=2.0)
        arrival = circuit.endpoint_arrival(placement, "O9")
        edl = "EDL" if circuit.is_edl(placement, "O9") else "non-EDL"
        print(
            f"{label}: {cost.n_slaves} slaves, O9 arrival {arrival:.0f} "
            f"({edl}), sequential cost {cost.latch_units:.0f} units"
        )
    print("\nG-RAR picks Cut2, exactly as the paper's ILP does.")


if __name__ == "__main__":
    main()
