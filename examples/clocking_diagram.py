#!/usr/bin/env python3
"""Render the Fig. 1 two-phase resilient clocking scheme as ASCII art.

Shows the phase-1/phase-2 transparency windows, the timing-resiliency
window of the next master stage, and the derived constraint bounds.

Run:  python examples/clocking_diagram.py [max_path_delay]
"""

import sys

from repro.clocks import scheme_from_period


def band(samples, width):
    return "".join("#" if value else "." for value in samples[:width])


def main() -> None:
    period = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    scheme = scheme_from_period(period)
    width = 72
    waves = scheme.waveforms(cycles=2, resolution=width // 2)

    print(f"two-phase resilient clock for P = {period} "
          f"(phi1={scheme.phi1:.3f} gamma1={scheme.gamma1:.3f} "
          f"phi2={scheme.phi2:.3f} gamma2={scheme.gamma2:.3f})")
    print()
    print(f"clk1 (masters) {band(waves['clk1'], width)}")
    print(f"clk2 (slaves)  {band(waves['clk2'], width)}")
    print(f"res. window    {band(waves['window'], width)}")
    ruler = [" "] * width
    per_sample = 2 * scheme.period / width
    for cycle in range(3):
        index = int(cycle * scheme.period / per_sample)
        if index < width:
            ruler[index] = "|"
    print(f"               {''.join(ruler)}")
    print(f"               0{'':<{width // 2 - 2}}Pi")
    print()
    print("derived bounds (Sections II-III):")
    print(f"  Pi (clock period)            = {scheme.period:.4f}")
    print(f"  window opens / closes        = {scheme.window_open:.4f}"
          f" / {scheme.window_close:.4f}")
    print(f"  max master-to-master delay P = {scheme.max_path_delay:.4f}")
    print(f"  slave transparency           = [{scheme.slave_open:.4f}, "
          f"{scheme.slave_close:.4f}]")
    print(f"  constraint (6) bound D^f     <= {scheme.forward_limit:.4f}")
    print(f"  constraint (7) bound D^b     <= {scheme.backward_limit:.4f}")


if __name__ == "__main__":
    main()
